//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the workspace's `#[bench]`-style harnesses compiling and
//! runnable: each `bench_function` runs a short warmup, then a fixed
//! sample of timed iterations, and prints the mean time per iteration
//! (plus throughput when configured). There is no statistical analysis,
//! no plotting, and no baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warmup: one iteration to page everything in.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed;

    // Pick an iteration count aiming at roughly 0.2 s of total work,
    // bounded by the sample size, so slow benches stay responsive.
    let target = Duration::from_millis(200);
    let iters = if per_iter.is_zero() {
        sample_size as u64
    } else {
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, sample_size as u128) as u64
    };

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if iters > 0 {
        b.elapsed / iters as u32
    } else {
        Duration::ZERO
    };

    match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {name:<48} {mean:>12.3?}/iter  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {name:<48} {mean:>12.3?}/iter  ({rate:.0} B/s)");
        }
        _ => println!("bench {name:<48} {mean:>12.3?}/iter"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
