//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of the proptest API the workspace uses:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! - range strategies over the primitive numeric types, `any::<T>()`,
//!   [`collection::vec`], [`option::of`], `Just`, and
//!   `Strategy::{prop_map, prop_filter}`.
//!
//! Cases are generated from a deterministic per-test seed (hash of the
//! test name), so failures are reproducible run-to-run. There is **no
//! shrinking**: a failing case reports the generated inputs verbatim.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Defines property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(16).saturating_add(256) {
                        panic!(
                            "proptest '{}': too many rejected cases ({} attempts for {} target cases)",
                            stringify!($name), attempts, config.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = {
                        $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                        (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            { $body }
                            ::std::result::Result::Ok(())
                        })()
                    };
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed: {}\n  inputs: {:?}",
                                stringify!($name),
                                msg,
                                ($((stringify!($arg), &$arg)),+ ,)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (it counts as neither pass nor failure)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
