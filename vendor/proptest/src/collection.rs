//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy yielding `Vec`s whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Vectors of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into().0,
    }
}

/// A length specification: a `usize` (exact) or a `Range<usize>`.
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty vec length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
