//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `f` returns false, retrying (bounded) —
    /// the `whence` label appears in the error if the filter starves.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Uniformly random values over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite doubles only: tests over `any::<f64>()` virtually always
        // want ordinary magnitudes, so sample a bounded uniform range.
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A constant strategy: always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}
