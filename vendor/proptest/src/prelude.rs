//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::strategy::{any, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// Namespace alias so `prop::collection::vec(..)` style paths work.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}
