//! Deterministic per-test RNG and runner configuration.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; 128 keeps event-driven
        // simulator properties fast in debug builds while still covering
        // the operand space well.
        ProptestConfig { cases: 128 }
    }
}

/// How a single generated case ended, other than passing.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — does not count as run.
    Reject(&'static str),
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

/// Deterministic xoshiro256++ generator seeded from the test name, so a
/// given test sees the same case sequence every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from the test's name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    /// Seeds via SplitMix64 expansion of a 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)` (multiply-shift reduction).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform double in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
