//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so this
//! vendored crate reimplements the small slice of the `rand` 0.8 API the
//! workspace actually uses: [`rngs::SmallRng`] / [`rngs::StdRng`] (both
//! xoshiro256++ here), [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] methods.
//!
//! The generators are deterministic, seedable, and of adequate
//! statistical quality for workload synthesis (xoshiro256++ is exactly
//! what upstream `SmallRng` uses on 64-bit targets), but this crate makes
//! no API-compatibility promises beyond what the workspace exercises.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next `u32` from the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a generator (the subset of
/// `rand`'s `Standard` distribution the workspace needs).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream `rand` behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Maps a uniform `u64` onto `[0, span)` by multiply-shift (Lemire).
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`, matching upstream behaviour.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed via SplitMix64
    /// expansion, like upstream `rand`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm upstream `SmallRng` uses on 64-bit
    /// platforms. Seeded from SplitMix64 per the xoshiro authors'
    /// recommendation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix_next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix_next(&mut sm),
                Self::splitmix_next(&mut sm),
                Self::splitmix_next(&mut sm),
                Self::splitmix_next(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias for [`SmallRng`]: this stand-in does not carry a CSPRNG, and
    /// nothing in the workspace needs one.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(0u64..10);
            assert!(v < 10);
            let w: u64 = r.gen_range(0u64..=5);
            assert!(w <= 5);
            let i: i32 = r.gen_range(-99..100);
            assert!((-99..100).contains(&i));
            let f: f64 = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn uniform_bits_balance() {
        let mut r = SmallRng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| r.gen::<u64>().count_ones()).sum();
        // 64_000 bits, expect ~32_000 ones.
        assert!((30_000..34_000).contains(&ones), "got {ones}");
    }
}
