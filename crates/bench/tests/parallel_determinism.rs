//! The experiment harness under the parallel runner must emit exactly
//! the serial outputs, in registry order, for any thread count.

use lowvolt_bench::{all_experiments, run_experiments_with, Experiment};
use lowvolt_exec::ExecPolicy;

fn cheap_subset() -> Vec<Experiment> {
    // The fast closed-form experiments; the heavyweight simulations have
    // their own coverage and would slow the suite.
    all_experiments()
        .into_iter()
        .filter(|e| ["fig1", "fig2", "fig6"].contains(&e.id))
        .collect()
}

#[test]
fn experiments_identical_for_any_thread_count() {
    let selected = cheap_subset();
    assert_eq!(selected.len(), 3, "expected registry ids present");
    let serial = run_experiments_with(&ExecPolicy::serial(), &selected);
    for threads in [2, 3, 8] {
        let parallel = run_experiments_with(&ExecPolicy::with_threads(threads), &selected);
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    for (e, out) in selected.iter().zip(&serial) {
        let text = out.as_ref().expect("experiment runs");
        assert!(text.len() > 100, "{} output too small", e.id);
    }
}

#[test]
fn results_land_at_input_indices() {
    // Order the subset differently and check outputs follow the inputs,
    // not the registry.
    let mut selected = cheap_subset();
    selected.reverse();
    let out = run_experiments_with(&ExecPolicy::with_threads(4), &selected);
    let direct: Vec<_> = selected.iter().map(|e| (e.run)()).collect();
    assert_eq!(out, direct);
}
