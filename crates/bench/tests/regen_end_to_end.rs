//! End-to-end test of the `regen` binary: every registered experiment
//! must run to completion through the real executable, and the CSV export
//! must produce parseable files.

use std::process::Command;

fn regen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regen"))
}

#[test]
fn list_names_every_experiment() {
    let out = regen().arg("list").output().expect("regen runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in [
        "fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "table1",
        "table2", "table3",
    ] {
        assert!(text.contains(id), "missing {id} in `regen list`");
    }
}

#[test]
fn unknown_experiment_is_a_clean_error() {
    let out = regen().arg("figure-nine-hundred").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("figure-nine-hundred"));
}

#[test]
fn cheap_experiments_run_through_the_binary() {
    // The full set is exercised (in release) by the recorded regen runs;
    // here the *binary path* is validated on the fast experiments so the
    // debug-mode test stays quick.
    let out = regen()
        .args(["fig1", "fig2", "fig6", "ablation-stack"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Fig. 1"));
    assert!(text.contains("decades"));
    assert!(text.contains("DIBL"));
}

#[test]
fn csv_export_writes_parseable_series() {
    let dir = std::env::temp_dir().join("lowvolt_regen_csv_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = regen()
        .args([
            "--csv",
            dir.to_str().expect("utf-8 temp path"),
            "fig1",
            "fig6",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    for id in ["fig1", "fig6"] {
        let csv = std::fs::read_to_string(dir.join(format!("{id}.csv"))).expect("csv written");
        let mut lines = csv.lines();
        let header = lines.next().expect("header row");
        let columns = header.split(',').count();
        assert!(columns >= 3, "{id}: header `{header}`");
        let mut rows = 0;
        for line in lines {
            assert_eq!(
                line.split(',').count(),
                columns,
                "{id}: ragged row `{line}`"
            );
            rows += 1;
        }
        assert!(rows >= 20, "{id}: only {rows} data rows");
    }
}
