//! Measures the observability layer's cost on the event-simulator hot
//! loop: the same fixed-seed activity-extraction workload with no
//! recorder attached (the `NoopRecorder` default), with a live
//! `MetricsRegistry`, and — as a floor reference — the raw loop before
//! this instrumentation existed is the `noop` case itself, since a
//! disabled recorder compiles to a branch on a constant and the hot
//! paths only flush at settle boundaries.
//!
//! The acceptance bar from the observability design: `noop` and the
//! uninstrumented baseline are indistinguishable, and even `registry`
//! stays within a few percent (one span + four atomic adds per settle).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lowvolt_circuit::adder::ripple_carry_adder;
use lowvolt_circuit::netlist::Netlist;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_obs::MetricsRegistry;

fn bench_recorder_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    let cycles = 200usize;
    g.throughput(Throughput::Elements(cycles as u64));

    let mut n = Netlist::new();
    let adder = ripple_carry_adder(&mut n, 8).expect("valid width");
    let inputs = adder.input_nodes();

    g.bench_function("sim_noop_recorder", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&n);
            let mut src = PatternSource::random(inputs.len(), 3).expect("valid width");
            black_box(sim.measure_activity(&mut src, &inputs, cycles, 8))
        })
    });

    g.bench_function("sim_metrics_registry", |b| {
        b.iter(|| {
            let registry = MetricsRegistry::new();
            let mut sim = Simulator::new(&n);
            sim.set_recorder(&registry);
            let mut src = PatternSource::random(inputs.len(), 3).expect("valid width");
            let out = sim.measure_activity(&mut src, &inputs, cycles, 8);
            black_box((out, registry.snapshot().counter("sim.events.processed")))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);
