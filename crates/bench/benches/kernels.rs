//! Criterion benches for the simulation kernels underneath the
//! experiments: gate-level event simulation, the guest-program
//! interpreter, and the device-model hot paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lowvolt_circuit::adder::ripple_carry_adder;
use lowvolt_circuit::multiplier::array_multiplier;
use lowvolt_circuit::netlist::Netlist;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_device::mosfet::Mosfet;
use lowvolt_device::units::Volts;
use lowvolt_isa::asm::assemble;
use lowvolt_isa::cpu::Cpu;
use lowvolt_isa::profile::Profiler;
use lowvolt_workloads::idea;

fn bench_gate_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("gate_sim");
    let cycles = 200u64;
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("rca8_random_cycles", |b| {
        let mut n = Netlist::new();
        let adder = ripple_carry_adder(&mut n, 8).expect("valid width");
        let inputs = adder.input_nodes();
        b.iter(|| {
            let mut sim = Simulator::new(&n);
            let mut src = PatternSource::random(inputs.len(), 3).expect("valid width");
            black_box(sim.measure_activity(&mut src, &inputs, cycles as usize, 8))
        })
    });
    g.bench_function("mult8x8_random_cycles", |b| {
        let mut n = Netlist::new();
        let mult = array_multiplier(&mut n, 8).expect("valid width");
        let inputs = mult.input_nodes();
        b.iter(|| {
            let mut sim = Simulator::new(&n);
            let mut src = PatternSource::random(inputs.len(), 3).expect("valid width");
            black_box(sim.measure_activity(&mut src, &inputs, cycles as usize, 8))
        })
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    let program = assemble(&idea::program(10)).expect("assembles");
    // Instruction count of one run, for throughput reporting.
    let mut probe = Cpu::new(program.clone());
    probe.run(100_000_000).expect("runs");
    g.throughput(Throughput::Elements(probe.steps()));
    g.bench_function("idea_10_blocks", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(program.clone());
            cpu.run(100_000_000).expect("runs");
            black_box(cpu.steps())
        })
    });
    g.bench_function("idea_10_blocks_profiled", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(program.clone());
            let mut profiler = Profiler::standard();
            cpu.run_profiled(100_000_000, &mut profiler).expect("runs");
            black_box(profiler.report().total)
        })
    });
    g.finish();
}

fn bench_switch_level(c: &mut Criterion) {
    use lowvolt_circuit::switch_registers::{static_tg_register, switched_cap_per_cycle};
    use lowvolt_circuit::switchlevel::SwitchNetlist;
    let mut g = c.benchmark_group("switch_level");
    g.bench_function("static_tg_register_16_cycles", |b| {
        let mut n = SwitchNetlist::new();
        let p = static_tg_register(&mut n).expect("builds");
        b.iter(|| black_box(switched_cap_per_cycle(&n, p, 16)))
    });
    g.finish();
}

fn bench_device_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("device");
    let m = Mosfet::nmos_with_vt(Volts(0.25));
    g.bench_function("drain_current_sweep_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                let vgs = Volts(f64::from(i) * 0.003);
                acc += m.drain_current(vgs, Volts(1.0)).0;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gate_sim,
    bench_interpreter,
    bench_switch_level,
    bench_device_models
);
criterion_main!(benches);
