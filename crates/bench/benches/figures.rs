//! Criterion benches: one per paper table/figure (generation cost of each
//! experiment) plus the core simulation kernels they exercise.
//!
//! Run with `cargo bench -p lowvolt-bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowvolt_bench::experiments;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_register_capacitance", |b| {
        b.iter(|| black_box(experiments::fig1::series().unwrap()))
    });
    g.bench_function("fig2_subthreshold_iv", |b| {
        b.iter(|| black_box(experiments::fig2::series().unwrap()))
    });
    g.bench_function("fig3_iso_delay_curves", |b| {
        b.iter(|| black_box(experiments::fig3::series().unwrap()))
    });
    g.bench_function("fig4_energy_optimum", |b| {
        b.iter(|| black_box(experiments::fig4::run()))
    });
    g.bench_function("fig6_soias_iv", |b| {
        b.iter(|| black_box(experiments::fig6::series().unwrap()))
    });
    g.bench_function("fig8_random_activity", |b| {
        b.iter(|| black_box(experiments::fig8::measure()))
    });
    g.bench_function("fig9_correlated_activity", |b| {
        b.iter(|| black_box(experiments::fig9::measure()))
    });
    g.bench_function("fig10_tradeoff_surface", |b| {
        b.iter(|| black_box(experiments::fig10::surface()))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_espresso_profile", |b| {
        b.iter(|| black_box(experiments::tables::profile_espresso()))
    });
    g.bench_function("table2_li_profile", |b| {
        b.iter(|| black_box(experiments::tables::profile_li()))
    });
    g.bench_function("table3_idea_profile", |b| {
        b.iter(|| black_box(experiments::tables::profile_idea()))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("leakage_blind", |b| {
        b.iter(|| black_box(experiments::ablations::leakage_blind()))
    });
    g.bench_function("activity_dependence", |b| {
        b.iter(|| black_box(experiments::ablations::activity_dependence()))
    });
    g.bench_function("granularity", |b| {
        b.iter(|| black_box(experiments::ablations::granularity()))
    });
    g.bench_function("technology_four_way", |b| {
        b.iter(|| black_box(experiments::ablations::technology_four_way()))
    });
    g.bench_function("capacitance_nonlinearity", |b| {
        b.iter(|| black_box(experiments::ablations::capacitance_nonlinearity()))
    });
    g.bench_function("adder_glitch", |b| {
        b.iter(|| black_box(experiments::ablations::adder_glitch()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_tables, bench_ablations);
criterion_main!(benches);
