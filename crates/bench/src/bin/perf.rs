//! `perf` — the persisted benchmark baseline for the parallel engine.
//!
//! Times the parallelised hot paths — fault campaign, experiment
//! regeneration, the (V_DD, V_T) optimisation sweep, and the static
//! timing sweep over the standard datapaths — once under the serial
//! policy and once under the requested thread count, verifies the
//! outputs are identical, and writes `BENCH_sim.json`. Three further
//! stages exercise the netlist-interchange subsystem at scale: a BLIF
//! round-trip parse, a packed fault campaign on a seeded generated
//! netlist, and static timing analysis of a 10⁵-gate generated netlist.
//!
//! Usage:
//!
//! ```text
//! perf                      # full run, BENCH_sim.json in the cwd
//! perf --quick              # smaller workloads (CI smoke)
//! perf --threads 4          # explicit worker count for the parallel leg
//! perf --out path/to.json   # alternative output path
//! ```
//!
//! The workloads are fixed-seed and deterministic, so successive runs
//! measure the same work; `identical: true` in every stage certifies
//! that the parallel leg reproduced the serial output bit for bit.

use lowvolt_bench::{all_experiments, run_experiments_with, BenchError};
use lowvolt_circuit::compiled::run_campaign_packed;
use lowvolt_circuit::faults::{
    run_campaign_recorded, standard_targets, stuck_at_universe, CampaignOptions, FaultTarget,
};
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_core::optimizer::FixedThroughputOptimizer;
use lowvolt_core::sensitivity::{analyse_with, DesignPoint};
use lowvolt_device::units::Seconds;
use lowvolt_exec::ExecPolicy;
use lowvolt_io::{
    circuits_equivalent, generate, parse_str, write_blif, Format, GeneratorConfig, ImportedCircuit,
};
use lowvolt_obs::{names, MetricsRegistry, Recorder};
use lowvolt_sta::{analyze, StaConfig, NOMINAL_VDD, NOMINAL_VT};
use std::time::Instant;

/// One stage's measurements. Counters come from the serial leg's
/// metrics registry — the same `lowvolt_obs::names` catalog the CLI's
/// `--metrics-json` emits, so the two outputs cannot drift apart.
struct StageResult {
    name: &'static str,
    /// Which simulation engine the stage exercised; `None` for stages
    /// that are not engine-selectable (regen, optimize).
    engine: Option<&'static str>,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    identical: bool,
    counters: Vec<(&'static str, u64)>,
}

impl StageResult {
    fn speedup(&self) -> f64 {
        if self.parallel_wall_ms > 0.0 {
            self.serial_wall_ms / self.parallel_wall_ms
        } else {
            1.0
        }
    }

    /// Campaign throughput: completed injections per second of serial
    /// wall clock (the engine-to-engine comparison, independent of
    /// thread count). `None` when the stage recorded no injections.
    fn injections_per_sec(&self) -> Option<f64> {
        let injections = self
            .counters
            .iter()
            .find(|(name, _)| *name == names::CAMPAIGN_INJECTIONS)
            .map(|&(_, v)| v)?;
        if self.serial_wall_ms > 0.0 {
            Some(injections as f64 / (self.serial_wall_ms / 1e3))
        } else {
            None
        }
    }
}

/// Times one closure invocation in milliseconds, returning its output.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs both legs of a stage and compares their outputs. The serial leg
/// carries a metrics registry; its nonzero counters become the stage's
/// counter columns. The parallel leg runs unrecorded, so the timing
/// comparison is not skewed by collection overhead on one side only.
fn stage<R: PartialEq>(
    name: &'static str,
    engine: Option<&'static str>,
    policy: &ExecPolicy,
    run: impl Fn(&ExecPolicy, &dyn Recorder) -> Result<R, String>,
) -> Result<StageResult, String> {
    let serial = ExecPolicy::serial();
    let registry = MetricsRegistry::new();
    let (serial_out, serial_wall_ms) = timed(|| run(&serial, &registry));
    let (parallel_out, parallel_wall_ms) = timed(|| run(policy, lowvolt_obs::noop()));
    let identical = serial_out? == parallel_out?;
    let counters = registry
        .snapshot()
        .counters()
        .iter()
        .filter(|&&(_, v)| v > 0)
        .copied()
        .collect();
    Ok(StageResult {
        name,
        engine,
        serial_wall_ms,
        parallel_wall_ms,
        identical,
        counters,
    })
}

/// The campaign stage: the full stuck-at universe over every standard
/// datapath target, fixed-seed random vectors. `compiled` switches the
/// bit-parallel levelized engine in for the event-driven one; the
/// rendered reports are byte-identical between the two, so the
/// event/compiled rows in `BENCH_sim.json` time the same classification
/// work.
fn campaign_leg(
    policy: &ExecPolicy,
    rec: &dyn Recorder,
    width: usize,
    vectors: usize,
    compiled: bool,
) -> Result<String, String> {
    let targets = standard_targets(width).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (i, target) in targets.iter().enumerate() {
        let faults = stuck_at_universe(&target.netlist);
        let mut stimulus = PatternSource::random(target.inputs.len(), 0xC0FFEE + i as u64)
            .map_err(|e| e.to_string())?;
        if compiled {
            let res = run_campaign_packed(
                policy,
                rec,
                target,
                &faults,
                &mut stimulus,
                vectors,
                CampaignOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            let report = res
                .report()
                .ok_or_else(|| "compiled campaign left injections unresolved".to_string())?;
            out.push_str(&report.to_string());
        } else {
            let report =
                run_campaign_recorded(policy, rec, target, &faults, &mut stimulus, vectors)
                    .map_err(|e| e.to_string())?;
            out.push_str(&report.to_string());
        }
    }
    Ok(out)
}

/// The regen stage: a fixed slice of the experiment registry, one
/// experiment per work item.
fn regen_leg(policy: &ExecPolicy, ids: &[&str]) -> Result<String, String> {
    let registry = all_experiments();
    let selected: Vec<_> = registry
        .into_iter()
        .filter(|e| ids.contains(&e.id))
        .collect();
    if selected.len() != ids.len() {
        return Err(format!(
            "regen stage resolved {}/{} ids",
            selected.len(),
            ids.len()
        ));
    }
    let outputs: Result<Vec<String>, BenchError> = run_experiments_with(policy, &selected)
        .into_iter()
        .collect();
    Ok(outputs.map_err(|e| e.to_string())?.join("\n"))
}

/// The optimize stage: the Fig. 4 coarse grid + refinement, plus the
/// sensitivity analysis (seven further optimisations).
fn optimize_leg(policy: &ExecPolicy, quick: bool) -> Result<String, String> {
    let opt = FixedThroughputOptimizer::paper_ring(Seconds::from_nanos(2.0))
        .map_err(|e| e.to_string())?;
    let best = opt
        .optimum_with(policy, Seconds(1e-6))
        .map_err(|e| e.to_string())?;
    let mut out = format!("optimum vt={:.6} vdd={:.6}\n", best.vt.0, best.vdd.0);
    if !quick {
        let point = DesignPoint::paper_nominal().map_err(|e| e.to_string())?;
        let report = analyse_with(policy, point, 0.2).map_err(|e| e.to_string())?;
        for e in &report.entries {
            out.push_str(&format!(
                "sensitivity {} swing={:.6}\n",
                e.parameter, e.energy_swing
            ));
        }
    }
    Ok(out)
}

/// The STA stage: full text reports (critical path, endpoints, node
/// slack) for every standard datapath at the nominal operating point —
/// the endpoint summaries parallelise through the policy.
fn sta_leg(policy: &ExecPolicy, rec: &dyn Recorder, width: usize) -> Result<String, String> {
    let targets = standard_targets(width).map_err(|e| e.to_string())?;
    let config = StaConfig::at(NOMINAL_VDD, NOMINAL_VT);
    let mut out = String::new();
    for target in &targets {
        let report = analyze(
            policy,
            rec,
            &target.name,
            &target.netlist,
            &target.outputs,
            config,
        )
        .map_err(|e| e.to_string())?;
        out.push_str(&report.to_string());
        out.push('\n');
    }
    Ok(out)
}

/// The parse stage: a seeded generated netlist is rendered to BLIF once
/// up front; each leg re-parses the text and checks structural
/// equivalence against the source, timing the streaming parser end to
/// end. Parsing is inherently serial, so this row is a throughput
/// baseline, not a speedup measurement.
fn parse_leg(source: &ImportedCircuit, text: &str) -> Result<String, String> {
    let parsed = parse_str(Format::Blif, &source.name, text).map_err(|e| e.to_string())?;
    circuits_equivalent(source, &parsed)?;
    Ok(format!(
        "parsed {} nodes {} gates hash {:016x}",
        parsed.netlist.node_count(),
        parsed.netlist.gate_count(),
        parsed.netlist.structural_hash()
    ))
}

/// Adapts a generated circuit to the fault-campaign target shape.
fn fault_target(c: &ImportedCircuit) -> FaultTarget {
    FaultTarget {
        name: c.name.clone(),
        netlist: c.netlist.clone(),
        inputs: c.inputs.clone(),
        outputs: c.outputs.clone(),
        clock: c.clock,
    }
}

/// The generated-campaign stage: the full stuck-at universe of a large
/// seeded random netlist under the compiled bit-parallel engine — the
/// scale row the interchange subsystem exists for.
fn generated_campaign_leg(
    policy: &ExecPolicy,
    rec: &dyn Recorder,
    target: &FaultTarget,
    vectors: usize,
) -> Result<String, String> {
    let faults = stuck_at_universe(&target.netlist);
    let mut stimulus =
        PatternSource::wide_random(target.inputs.len(), 0xD1CE).map_err(|e| e.to_string())?;
    let res = run_campaign_packed(
        policy,
        rec,
        target,
        &faults,
        &mut stimulus,
        vectors,
        CampaignOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let report = res
        .report()
        .ok_or_else(|| "generated campaign left injections unresolved".to_string())?;
    Ok(report.to_string())
}

/// The generated-STA stage: one full static timing report over a
/// 10⁵-gate seeded netlist at the nominal operating point.
fn generated_sta_leg(
    policy: &ExecPolicy,
    rec: &dyn Recorder,
    c: &ImportedCircuit,
) -> Result<String, String> {
    let config = StaConfig::at(NOMINAL_VDD, NOMINAL_VT);
    let report =
        analyze(policy, rec, &c.name, &c.netlist, &c.outputs, config).map_err(|e| e.to_string())?;
    Ok(report.to_string())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(threads: usize, parallelism: usize, quick: bool, stages: &[StageResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"parallelism_available\": {parallelism},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        let counters = s
            .counters
            .iter()
            .map(|(name, v)| format!("\"{}\": {v}", json_escape(name)))
            .collect::<Vec<_>>()
            .join(", ");
        let engine = s
            .engine
            .map(|e| format!("\"engine\": \"{}\", ", json_escape(e)))
            .unwrap_or_default();
        let throughput = s
            .injections_per_sec()
            .map(|r| format!("\"injections_per_sec\": {r:.1}, "))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", {engine}\"serial_wall_ms\": {:.3}, \"parallel_wall_ms\": {:.3}, \"speedup\": {:.3}, {throughput}\"identical\": {}, \"counters\": {{{counters}}}}}{}\n",
            json_escape(s.name),
            s.serial_wall_ms,
            s.parallel_wall_ms,
            s.speedup(),
            s.identical,
            if i + 1 < stages.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    if let Some(pos) = args.iter().position(|a| a == "--quick") {
        args.remove(pos);
        quick = true;
    }
    let mut take_value = |flag: &str| -> Result<Option<String>, String> {
        match args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(pos) if pos + 1 < args.len() => {
                let v = args.remove(pos + 1);
                args.remove(pos);
                Ok(Some(v))
            }
            Some(_) => Err(format!("{flag} needs a value")),
        }
    };
    let out_path = take_value("--out")?.unwrap_or_else(|| "BENCH_sim.json".to_string());
    let policy = match take_value("--threads")? {
        None => ExecPolicy::from_env(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) => ExecPolicy::with_threads(n),
            Err(_) => return Err(format!("--threads needs a number, got `{v}`")),
        },
    };
    if let Some(unknown) = args.first() {
        return Err(format!("unknown argument `{unknown}`"));
    }

    let parallelism = ExecPolicy::max_parallel().threads();
    eprintln!(
        "perf: {} worker thread(s), {} available, {} workload",
        policy.threads(),
        parallelism,
        if quick { "quick" } else { "full" }
    );

    let (width, vectors) = if quick { (4, 8) } else { (8, 32) };
    let regen_ids: &[&str] = if quick {
        &["fig1", "fig2", "fig6"]
    } else {
        &[
            "fig1", "fig2", "fig3", "fig6", "fig7", "table1", "table2", "table3",
        ]
    };

    // Generated-netlist workloads, seeded so every run measures the
    // same circuits. The campaign and STA sizes mirror the CLI
    // acceptance invocations (`--generate N --seed 42`).
    let (parse_gates, gen_gates, gen_vectors, sta_gates) = if quick {
        (2_000, 1_500, 8, 10_000)
    } else {
        (20_000, 10_000, 32, 100_000)
    };
    let parse_circuit =
        generate(&GeneratorConfig::new(parse_gates, 0xB11F)).map_err(|e| e.to_string())?;
    let parse_text = write_blif(&parse_circuit).map_err(|e| e.to_string())?;
    let gen_target =
        fault_target(&generate(&GeneratorConfig::new(gen_gates, 42)).map_err(|e| e.to_string())?);
    let sta_circuit = generate(&GeneratorConfig::new(sta_gates, 42)).map_err(|e| e.to_string())?;

    let stages = vec![
        stage(names::STAGE_CAMPAIGN, Some("event"), &policy, |p, rec| {
            campaign_leg(p, rec, width, vectors, false)
        })?,
        stage(
            names::STAGE_CAMPAIGN,
            Some("compiled"),
            &policy,
            |p, rec| campaign_leg(p, rec, width, vectors, true),
        )?,
        stage(names::STAGE_REGEN, None, &policy, |p, _| {
            regen_leg(p, regen_ids)
        })?,
        stage(names::STAGE_OPTIMIZE, None, &policy, |p, _| {
            optimize_leg(p, quick)
        })?,
        stage(names::STAGE_STA, None, &policy, |p, rec| {
            sta_leg(p, rec, width)
        })?,
        stage(names::STAGE_PARSE, None, &policy, |_, _| {
            parse_leg(&parse_circuit, &parse_text)
        })?,
        stage(
            names::STAGE_CAMPAIGN_GENERATED,
            Some("compiled"),
            &policy,
            |p, rec| generated_campaign_leg(p, rec, &gen_target, gen_vectors),
        )?,
        stage(names::STAGE_STA_GENERATED, None, &policy, |p, rec| {
            generated_sta_leg(p, rec, &sta_circuit)
        })?,
    ];

    for s in &stages {
        let label = match s.engine {
            Some(e) => format!("{}[{e}]", s.name),
            None => s.name.to_string(),
        };
        let throughput = s
            .injections_per_sec()
            .map(|r| format!("  {r:.0} inj/s"))
            .unwrap_or_default();
        eprintln!(
            "perf: {label:28} serial {:8.1} ms  parallel {:8.1} ms  speedup {:.2}x  identical {}{throughput}",
            s.serial_wall_ms,
            s.parallel_wall_ms,
            s.speedup(),
            s.identical
        );
    }
    if let Some(bad) = stages.iter().find(|s| !s.identical) {
        return Err(format!(
            "stage `{}` parallel output diverged from serial",
            bad.name
        ));
    }

    let json = render_json(policy.threads(), parallelism, quick, &stages);
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("perf: wrote {out_path}");
    Ok(())
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("perf: error: {msg}");
        std::process::exit(1);
    }
}
