//! `regen` — regenerates every table and figure of the paper as text.
//!
//! Usage:
//!
//! ```text
//! regen                   # run every experiment
//! regen list              # list experiment ids
//! regen fig4 table3       # run selected experiments
//! regen --csv out/ fig1   # additionally write plottable series as CSV
//! regen --threads 4       # run experiments on 4 worker threads
//! ```
//!
//! Experiments run in parallel under `--threads N` (default: the
//! `LOWVOLT_THREADS` environment variable, else all available cores),
//! but outputs are printed in registry order, so the emitted text is
//! identical for any thread count.

use lowvolt_bench::{all_experiments, run_experiments_with};
use lowvolt_exec::ExecPolicy;

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(pos) if pos + 1 < args.len() => {
            let value = args.remove(pos + 1);
            args.remove(pos);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir = match take_flag_value(&mut args, "--csv") {
        Ok(dir) => dir,
        Err(msg) => {
            eprintln!("{msg} (a directory)");
            std::process::exit(2);
        }
    };
    let policy = match take_flag_value(&mut args, "--threads") {
        Ok(None) => ExecPolicy::from_env(),
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) => ExecPolicy::with_threads(n),
            Err(_) => {
                eprintln!("--threads needs a number, got `{v}`");
                std::process::exit(2);
            }
        },
        Err(msg) => {
            eprintln!("{msg} (a worker count)");
            std::process::exit(2);
        }
    };
    let experiments = all_experiments();
    if args.first().is_some_and(|a| a == "list") {
        for e in &experiments {
            println!("{:22} {}", e.id, e.title);
        }
        return;
    }
    let selected: Vec<_> = if args.is_empty() {
        experiments.clone()
    } else {
        let mut picked = Vec::new();
        for arg in &args {
            match experiments.iter().find(|e| e.id == *arg) {
                Some(e) => picked.push(*e),
                None => {
                    eprintln!("unknown experiment `{arg}`; try `regen list`");
                    std::process::exit(2);
                }
            }
        }
        picked
    };
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }
    // Generate every output in parallel, then print serially in input
    // order so stdout matches the serial run byte for byte.
    let outputs = run_experiments_with(&policy, &selected);
    let mut failures = 0;
    for (e, result) in selected.iter().zip(outputs) {
        println!("==================================================================");
        println!("{} — {}", e.id, e.title);
        println!("==================================================================");
        match result {
            Ok(out) => println!("{out}"),
            Err(err) => {
                eprintln!("error: {} failed: {err}", e.id);
                failures += 1;
                continue;
            }
        }
        if let (Some(dir), Some(series)) = (&csv_dir, e.series) {
            let path = format!("{dir}/{}.csv", e.id);
            match series() {
                Ok(table) => match std::fs::write(&path, table.to_csv()) {
                    Ok(()) => println!("(series written to {path})"),
                    Err(err) => {
                        eprintln!("cannot write {path}: {err}");
                        failures += 1;
                    }
                },
                Err(err) => {
                    eprintln!("error: {} series failed: {err}", e.id);
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
