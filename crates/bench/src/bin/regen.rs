//! `regen` — regenerates every table and figure of the paper as text.
//!
//! Usage:
//!
//! ```text
//! regen                   # run every experiment
//! regen list              # list experiment ids
//! regen fig4 table3       # run selected experiments
//! regen --csv out/ fig1   # additionally write plottable series as CSV
//! ```

use lowvolt_bench::all_experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            eprintln!("--csv needs a directory");
            std::process::exit(2);
        }
        csv_dir = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let experiments = all_experiments();
    if args.first().is_some_and(|a| a == "list") {
        for e in &experiments {
            println!("{:22} {}", e.id, e.title);
        }
        return;
    }
    let selected: Vec<_> = if args.is_empty() {
        experiments.iter().collect()
    } else {
        let mut picked = Vec::new();
        for arg in &args {
            match experiments.iter().find(|e| e.id == *arg) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("unknown experiment `{arg}`; try `regen list`");
                    std::process::exit(2);
                }
            }
        }
        picked
    };
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }
    let mut failures = 0;
    for e in selected {
        println!("==================================================================");
        println!("{} — {}", e.id, e.title);
        println!("==================================================================");
        match (e.run)() {
            Ok(out) => println!("{out}"),
            Err(err) => {
                eprintln!("error: {} failed: {err}", e.id);
                failures += 1;
                continue;
            }
        }
        if let (Some(dir), Some(series)) = (&csv_dir, e.series) {
            let path = format!("{dir}/{}.csv", e.id);
            match series() {
                Ok(table) => match std::fs::write(&path, table.to_csv()) {
                    Ok(()) => println!("(series written to {path})"),
                    Err(err) => {
                        eprintln!("cannot write {path}: {err}");
                        failures += 1;
                    }
                },
                Err(err) => {
                    eprintln!("error: {} series failed: {err}", e.id);
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
