//! Fig. 4: "Experimentally derived optimum V_DD/V_T point" — energy per
//! operation along the iso-delay locus for two throughputs, with the
//! leakage/switching compromise marked.

use super::BenchError;
use lowvolt_circuit::ring::RingOscillator;
use lowvolt_core::optimizer::FixedThroughputOptimizer;
use lowvolt_core::report::{fmt_sig, Table};
use lowvolt_device::units::{Seconds, Volts};

/// The two throughput periods (the paper plots 1 MHz and 0.8 MHz).
pub const PERIODS_US: [f64; 2] = [1.0, 1.25];

fn optimizer() -> Result<FixedThroughputOptimizer, BenchError> {
    let ring = RingOscillator::paper_default()?;
    let target = ring.stage_delay(Volts(1.5), Volts(0.45));
    Ok(FixedThroughputOptimizer::new(ring, target, 1.0)?)
}

/// The plotted series for one throughput period.
///
/// # Errors
///
/// Returns [`BenchError`] if the optimiser fails to construct.
pub fn series(t_op: Seconds) -> Result<Table, BenchError> {
    let opt = optimizer()?;
    let vts: Vec<Volts> = (1..=24).map(|i| Volts(0.02 * f64::from(i))).collect();
    let mut table = Table::new([
        "V_T (V)",
        "V_DD (V)",
        "E_switch (J)",
        "E_leak (J)",
        "E_total (J)",
    ]);
    for p in opt.energy_curve(&vts, t_op) {
        table.push_row([
            format!("{:.2}", p.vt.0),
            format!("{:.3}", p.vdd.0),
            fmt_sig(p.switching.0, 3),
            fmt_sig(p.leakage.0, 3),
            fmt_sig(p.total().0, 3),
        ]);
    }
    Ok(table)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if the optimiser fails or no optimum exists.
pub fn run() -> Result<String, BenchError> {
    let opt = optimizer()?;
    let mut out = String::new();
    for us in PERIODS_US {
        let t_op = Seconds(us * 1e-6);
        out.push_str(&format!(
            "throughput {:.2} MHz:\n{}",
            1.0 / us,
            series(t_op)?
        ));
        let best = opt.optimum(t_op)?;
        out.push_str(&format!(
            "optimum: V_T = {:.3} V, V_DD = {:.3} V, E = {} J (supply well below 1 V)\n\n",
            best.vt.0,
            best.vdd.0,
            fmt_sig(best.total().0, 3)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_reported_below_one_volt() {
        let out = run().unwrap();
        assert!(out.contains("optimum"));
        // Both optima printed; extract the vdd values and check < 1.
        for line in out.lines().filter(|l| l.contains("optimum")) {
            let vdd: f64 = line
                .split("V_DD = ")
                .nth(1)
                .and_then(|s| s.split(' ').next())
                .and_then(|s| s.parse().ok())
                .expect("vdd parses");
            assert!(vdd < 1.0, "{line}");
        }
    }
}
