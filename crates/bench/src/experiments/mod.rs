//! Experiment registry: every paper table/figure plus ablations.

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod tables;

use lowvolt_core::energy::BurstEnergyModel;
use lowvolt_device::soias::SoiasDevice;
use lowvolt_device::technology::Technology;
use lowvolt_device::units::{Hertz, Volts};
use lowvolt_exec::{parallel_map_isolated, ExecPolicy, FaultPolicy, ItemStatus};
use std::fmt;

/// An experiment failed to produce its output: carries the message
/// shown to the user. Every underlying typed error converts into it so
/// experiment code propagates with `?` instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError(pub String);

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for BenchError {}

macro_rules! bench_error_from {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for BenchError {
            fn from(e: $t) -> BenchError {
                BenchError(e.to_string())
            }
        }
    )*};
}

bench_error_from!(
    lowvolt_circuit::CircuitError,
    lowvolt_core::error::CoreError,
    lowvolt_device::error::DeviceError,
    lowvolt_workloads::error::WorkloadError,
    lowvolt_isa::error::AssembleError,
    lowvolt_isa::error::ExecError,
);

impl From<String> for BenchError {
    fn from(s: String) -> BenchError {
        BenchError(s)
    }
}

/// One runnable experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Short id used on the `regen` command line (`fig1`, `table3`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Produces the experiment's full text output.
    pub run: fn() -> Result<String, BenchError>,
    /// For figure experiments with a plottable series: produces the series
    /// as a table for CSV export (`regen --csv DIR`).
    pub series: Option<fn() -> Result<lowvolt_core::report::Table, BenchError>>,
}

/// All experiments, in paper order followed by the ablations.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Fig. 1: switched capacitance vs V_DD for three registers",
            run: fig1::run,
            series: Some(fig1::series),
        },
        Experiment {
            id: "fig2",
            title: "Fig. 2: sub-threshold I_D vs V_gs for two thresholds",
            run: fig2::run,
            series: Some(fig2::series),
        },
        Experiment {
            id: "fig3",
            title: "Fig. 3: iso-delay V_DD vs V_T (ring oscillator)",
            run: fig3::run,
            series: Some(fig3::series),
        },
        Experiment {
            id: "fig4",
            title: "Fig. 4: energy vs V_T at fixed throughput (optimum V_DD/V_T)",
            run: fig4::run,
            series: None,
        },
        Experiment {
            id: "fig6",
            title: "Fig. 6: SOIAS I-V under back-gate control",
            run: fig6::run,
            series: Some(fig6::series),
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7: activity variables demonstrated on a gated-clock module",
            run: fig7::run,
            series: None,
        },
        Experiment {
            id: "fig8",
            title: "Fig. 8: adder transition histogram, random inputs",
            run: fig8::run,
            series: None,
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9: adder transition histogram, correlated inputs",
            run: fig9::run,
            series: None,
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10: log(E_SOIAS/E_SOI) surface, breakeven, app points",
            run: fig10::run,
            series: None,
        },
        Experiment {
            id: "table1",
            title: "Table 1: profiling results for espresso",
            run: tables::table1,
            series: None,
        },
        Experiment {
            id: "table2",
            title: "Table 2: profiling results for li",
            run: tables::table2,
            series: None,
        },
        Experiment {
            id: "table3",
            title: "Table 3: profiling results for IDEA",
            run: tables::table3,
            series: None,
        },
        Experiment {
            id: "ablation-leakage",
            title: "Ablation: leakage-aware vs leakage-blind V_T optimisation",
            run: ablations::leakage_blind,
            series: None,
        },
        Experiment {
            id: "ablation-activity",
            title: "Ablation: optimum (V_DD, V_T) vs switching activity",
            run: ablations::activity_dependence,
            series: None,
        },
        Experiment {
            id: "ablation-granularity",
            title: "Ablation: V_T control granularity (chip/block/transistor)",
            run: ablations::granularity,
            series: None,
        },
        Experiment {
            id: "ablation-technology",
            title: "Ablation: four leakage-control technologies head to head",
            run: ablations::technology_four_way,
            series: None,
        },
        Experiment {
            id: "ablation-capnonlin",
            title: "Ablation: constant-C vs voltage-dependent capacitance",
            run: ablations::capacitance_nonlinearity,
            series: None,
        },
        Experiment {
            id: "ablation-glitch",
            title: "Ablation: ripple-carry vs carry-lookahead glitch energy",
            run: ablations::adder_glitch,
            series: None,
        },
        Experiment {
            id: "ablation-parallelism",
            title: "Ablation: architectural voltage scaling with leakage",
            run: ablations::parallelism,
            series: None,
        },
        Experiment {
            id: "ablation-corners",
            title: "Ablation: process-corner and temperature spread",
            run: ablations::corners,
            series: None,
        },
        Experiment {
            id: "ablation-stack",
            title: "Ablation: transistor-stack leakage effect",
            run: ablations::stack_effect,
            series: None,
        },
        Experiment {
            id: "fig1-switchlevel",
            title: "Fig. 1 cross-check: transistor-level register switched capacitance",
            run: ablations::switchlevel_registers,
            series: None,
        },
        Experiment {
            id: "ablation-sensitivity",
            title: "Ablation: sensitivity of the optimum to design parameters",
            run: ablations::sensitivity,
            series: None,
        },
        Experiment {
            id: "fir-profile",
            title: "Extension: FIR filter profile (continuous DSP class)",
            run: ablations::fir_profile,
            series: None,
        },
    ]
}

/// Runs `selected` experiments under `policy`, one experiment per work
/// item, returning each experiment's output (or failure) **at its input
/// index** — callers print the results in order, so the emitted text is
/// identical whatever the thread count. Each experiment runs under
/// panic isolation: a panicking experiment becomes a [`BenchError`] at
/// its slot while every other experiment still completes.
#[must_use]
pub fn run_experiments_with(
    policy: &ExecPolicy,
    selected: &[Experiment],
) -> Vec<Result<String, BenchError>> {
    parallel_map_isolated(
        policy,
        &FaultPolicy::default(),
        lowvolt_obs::noop(),
        selected,
        |_, e, _| ItemStatus::Done((e.run)()),
    )
    .into_iter()
    .map(|slot| match slot {
        Ok(result) => result,
        Err(e) => Err(BenchError(e.to_string())),
    })
    .collect()
}

/// The shared Fig. 10-style operating point: 1 V supply, 1 MHz clock,
/// SOIAS vs a fixed-low-V_T SOI baseline built from the *same* device.
///
/// # Errors
///
/// Returns [`BenchError`] if the shipped constants are rejected by the
/// model constructors (they never are as shipped).
pub fn paper_operating_point() -> Result<(BurstEnergyModel, Technology, Technology), BenchError> {
    let model = BurstEnergyModel::new(Volts(1.0), Hertz(1e6))?;
    let device = SoiasDevice::paper_fig6();
    let soi = Technology::soi_fixed_vt_device(device.front_device(Volts(3.0)));
    let soias = Technology::soias(device, Volts(3.0))?;
    Ok((model, soias, soi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let all = all_experiments();
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        assert_eq!(all.len(), 24);
    }

    #[test]
    fn every_experiment_produces_output() {
        // Smoke-run the cheap ones here; heavy ones have their own tests.
        for e in all_experiments() {
            if ["fig1", "fig2", "fig6"].contains(&e.id) {
                let out = (e.run)().unwrap();
                assert!(out.len() > 100, "{} output too small", e.id);
            }
        }
    }
}
