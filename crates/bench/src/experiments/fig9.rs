//! Fig. 9: the same adder "with one of the inputs fixed at 0 and the
//! other input increments from 0 to 255" — dramatically lower activity.

use super::BenchError;
use lowvolt_circuit::activity::ActivityReport;
use lowvolt_circuit::adder::ripple_carry_adder;
use lowvolt_circuit::netlist::Netlist;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;

/// One full 0..255 count plus warm-up, as in the paper.
pub const CYCLES: usize = 296;

/// Warm-up vectors excluded from counting.
pub const WARMUP: usize = 40;

/// Runs the measurement.
///
/// # Errors
///
/// Returns [`BenchError`] if netlist generation or simulation fails.
pub fn measure() -> Result<ActivityReport, BenchError> {
    let mut n = Netlist::new();
    let adder = ripple_carry_adder(&mut n, 8)?;
    let inputs = adder.input_nodes();
    let mut sim = Simulator::new(&n);
    let mut source = PatternSource::concat(vec![
        PatternSource::zeros(8)?,       // input a fixed at 0
        PatternSource::counting(8, 0)?, // input b increments
        PatternSource::zeros(1)?,       // carry-in
    ])?;
    Ok(sim.measure_activity(&mut source, &inputs, CYCLES, WARMUP)?)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if either measurement fails.
pub fn run() -> Result<String, BenchError> {
    let fig9 = measure()?;
    let fig8 = super::fig8::measure()?;
    Ok(format!(
        "{}\nmean alpha = {:.3} (random-input mean was {:.3}: {:.1}x lower)\nswitched capacitance = {:.1} fF/cycle\n",
        fig9.histogram(15)?,
        fig9.mean_transition_probability(),
        fig8.mean_transition_probability(),
        fig8.mean_transition_probability() / fig9.mean_transition_probability(),
        fig9.switched_capacitance_per_cycle().to_femtofarads(),
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn correlated_inputs_are_quieter() {
        let r9 = super::measure().unwrap();
        let r8 = super::super::fig8::measure().unwrap();
        assert!(r8.mean_transition_probability() > 3.0 * r9.mean_transition_probability());
    }
}
