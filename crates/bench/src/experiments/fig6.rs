//! Fig. 6: "Measured I-V for a dynamically variable SOI NMOS" — drain
//! current vs front-gate voltage at V_ds = 0.1 V for back-gate biases of
//! 0 V (V_T = 0.448 V) and 3 V (V_T = 0.084 V).

use super::BenchError;
use lowvolt_core::report::{fmt_sig, Table};
use lowvolt_device::soias::SoiasDevice;
use lowvolt_device::units::Volts;

/// The plotted series.
///
/// # Errors
///
/// Infallible today; typed for registry uniformity.
pub fn series() -> Result<Table, BenchError> {
    let device = SoiasDevice::paper_fig6();
    let standby = device.front_device(Volts(0.0));
    let active = device.front_device(Volts(3.0));
    let mut table = Table::new(["V_gf (V)", "I_D @ V_gb=0 (A/um)", "I_D @ V_gb=3 (A/um)"]);
    for i in 0..=20 {
        let vgf = Volts(0.05 * f64::from(i));
        let per_um =
            |d: &lowvolt_device::mosfet::Mosfet| d.drain_current(vgf, Volts(0.1)).0 / d.width().0;
        table.push_row([
            format!("{:.2}", vgf.0),
            fmt_sig(per_um(&standby), 3),
            fmt_sig(per_um(&active), 3),
        ]);
    }
    Ok(table)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if the series fails to evaluate.
pub fn run() -> Result<String, BenchError> {
    let device = SoiasDevice::paper_fig6();
    let standby = device.front_device(Volts(0.0));
    let active = device.front_device(Volts(3.0));
    let decades = (active.off_current(Volts(1.0)).0 / standby.off_current(Volts(1.0)).0).log10();
    let boost = active.drain_current(Volts(1.0), Volts(0.1)).0
        / standby.drain_current(Volts(1.0), Volts(0.1)).0;
    Ok(format!(
        "{}\nV_T(V_gb=0) = {:.3} V, V_T(V_gb=3) = {:.3} V (paper: 0.448 / 0.084)\noff-current change: {:.1} decades (paper: ~4)\non-current boost at 1 V: {:.2}x (paper: ~1.8x)\n",
        series()?,
        device.vt(Volts(0.0)).0,
        device.vt(Volts(3.0)).0,
        decades,
        boost,
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn anchors_reported() {
        let out = super::run().unwrap();
        assert!(out.contains("decades"));
        assert!(out.contains("boost"));
    }
}
