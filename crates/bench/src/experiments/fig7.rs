//! Fig. 7: "Activity variables for SOIAS" — demonstrated in circuit
//! simulation rather than as a timing diagram.
//!
//! A clock-gated registered adder module is driven with different enable
//! duty cycles; the measured internal switching tracks the duty (`fga`),
//! confirming that "when the module is inactive, gated clocks can be
//! used to shut down the unit to eliminate switching".

use super::BenchError;
use lowvolt_circuit::sequential::measure_gated_activity;
use lowvolt_core::report::Table;

/// Enable duty cycles swept.
pub const DUTIES: [f64; 5] = [1.0, 0.5, 0.2, 0.1, 0.05];

/// The measured series.
///
/// # Errors
///
/// Returns [`BenchError`] if a gated-activity measurement fails.
pub fn series() -> Result<Table, BenchError> {
    let mut table = Table::new([
        "enable duty",
        "measured fga",
        "transitions/cycle",
        "vs always-on",
    ]);
    let baseline = measure_gated_activity(8, 400, 1.0, 1996)?;
    for duty in DUTIES {
        let m = measure_gated_activity(8, 400, duty, 1996)?;
        table.push_row([
            format!("{duty:.2}"),
            format!("{:.3}", m.fga),
            format!("{:.2}", m.transitions_per_cycle),
            format!(
                "{:.0}%",
                m.transitions_per_cycle / baseline.transitions_per_cycle * 100.0
            ),
        ]);
    }
    Ok(table)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if the series fails to evaluate.
pub fn run() -> Result<String, BenchError> {
    Ok(format!(
        "{}\ninternal switching tracks the gated-clock duty: fga is a physical knob, not\njust a bookkeeping variable. (Register clock pins keep a small duty-independent\nresidue — the free-running clock net itself.)\n",
        series()?
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn switching_falls_with_duty() {
        let out = super::run().unwrap();
        assert!(out.contains("enable duty"));
        let t = super::series().unwrap();
        assert_eq!(t.row_count(), super::DUTIES.len());
    }
}
