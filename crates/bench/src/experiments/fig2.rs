//! Fig. 2: "Sub-threshold conduction in CMOS circuits" — log I_D vs V_gs
//! for V_T = 0.25 V and V_T = 0.4 V at V_ds = 1 V.

use super::BenchError;
use lowvolt_core::report::{fmt_sig, Table};
use lowvolt_device::mosfet::Mosfet;
use lowvolt_device::units::Volts;

/// The plotted series.
///
/// # Errors
///
/// Infallible today; typed for registry uniformity.
pub fn series() -> Result<Table, BenchError> {
    let lo = Mosfet::nmos_with_vt(Volts(0.25));
    let hi = Mosfet::nmos_with_vt(Volts(0.4));
    let mut table = Table::new(["V_gs (V)", "I_D @ V_T=0.25 (A)", "I_D @ V_T=0.4 (A)"]);
    for i in 0..=20 {
        let vgs = Volts(0.05 * f64::from(i));
        table.push_row([
            format!("{:.2}", vgs.0),
            fmt_sig(lo.drain_current(vgs, Volts(1.0)).0, 3),
            fmt_sig(hi.drain_current(vgs, Volts(1.0)).0, 3),
        ]);
    }
    Ok(table)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if the series fails to evaluate.
pub fn run() -> Result<String, BenchError> {
    let lo = Mosfet::nmos_with_vt(Volts(0.25));
    let hi = Mosfet::nmos_with_vt(Volts(0.4));
    let off_lo = lo.off_current(Volts(1.0)).0;
    let off_hi = hi.off_current(Volts(1.0)).0;
    Ok(format!(
        "{}\noff-current (V_gs = 0): {} A at V_T=0.25 vs {} A at V_T=0.4 ({:.0}x, {:.1} decades)\nsub-threshold slope: {:.1} mV/dec\n",
        series()?,
        fmt_sig(off_lo, 3),
        fmt_sig(off_hi, 3),
        off_lo / off_hi,
        (off_lo / off_hi).log10(),
        lo.subthreshold_slope().0 * 1e3,
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn off_current_contrast_present() {
        let out = super::run().unwrap();
        assert!(out.contains("decades"));
    }
}
