//! Fig. 8: "Histogram of transition activity for an 8-bit ripple carry
//! adder with random inputs."

use super::BenchError;
use lowvolt_circuit::activity::ActivityReport;
use lowvolt_circuit::adder::ripple_carry_adder;
use lowvolt_circuit::netlist::Netlist;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;

/// Number of random vectors applied (matching the paper's methodology of
/// a long random stream).
pub const CYCLES: usize = 1064;

/// Warm-up vectors excluded from counting.
pub const WARMUP: usize = 40;

/// Runs the measurement.
///
/// # Errors
///
/// Returns [`BenchError`] if netlist generation or simulation fails.
pub fn measure() -> Result<ActivityReport, BenchError> {
    let mut n = Netlist::new();
    let adder = ripple_carry_adder(&mut n, 8)?;
    let inputs = adder.input_nodes();
    let mut sim = Simulator::new(&n);
    let mut source = PatternSource::random(inputs.len(), 42)?;
    Ok(sim.measure_activity(&mut source, &inputs, CYCLES, WARMUP)?)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if the measurement fails.
pub fn run() -> Result<String, BenchError> {
    let report = measure()?;
    Ok(format!
        ("number of internal nodes: {}\n{}\nmean alpha = {:.3}, switched capacitance = {:.1} fF/cycle\n",
        report.internal_entries().count(),
        report.histogram(15)?,
        report.mean_transition_probability(),
        report.switched_capacitance_per_cycle().to_femtofarads(),
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn random_inputs_produce_broad_activity() {
        let report = super::measure().unwrap();
        assert!(report.mean_transition_probability() > 0.2);
    }
}
