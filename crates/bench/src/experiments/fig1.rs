//! Fig. 1: "Non-linear dependence of C_L on V_DD" — switched capacitance
//! of the LCLR, TSPC-R and C²MOS registers as the supply sweeps 1 → 3 V.

use super::BenchError;
use lowvolt_circuit::registers::{RegisterCapModel, RegisterStyle};
use lowvolt_core::report::Table;
use lowvolt_device::units::Volts;

/// The plotted series.
///
/// # Errors
///
/// Returns [`BenchError`] if a capacitance evaluation fails.
pub fn series() -> Result<Table, BenchError> {
    let models: Vec<RegisterCapModel> = RegisterStyle::ALL
        .iter()
        .map(|&s| RegisterCapModel::new(s, Volts(0.5)))
        .collect();
    let mut table = Table::new(["V_DD (V)", "LCLR (fF)", "TSPCR (fF)", "C2MOS (fF)"]);
    for i in 0..=20 {
        let vdd = Volts(1.0 + 0.1 * f64::from(i));
        let mut cells = Vec::new();
        for m in &models {
            cells.push(format!(
                "{:.2}",
                m.switched_capacitance(vdd, 1.0)?.to_femtofarads()
            ));
        }
        table.push_row([
            format!("{:.1}", vdd.0),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    Ok(table)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if a capacitance evaluation fails.
pub fn run() -> Result<String, BenchError> {
    let table = series()?;
    let rise = |style: RegisterStyle| -> Result<String, BenchError> {
        let m = RegisterCapModel::new(style, Volts(0.5));
        let c1 = m.switched_capacitance(Volts(1.0), 1.0)?.to_femtofarads();
        let c3 = m.switched_capacitance(Volts(3.0), 1.0)?.to_femtofarads();
        Ok(format!(
            "{style}: {c1:.1} fF @1V -> {c3:.1} fF @3V (+{:.0}%)",
            (c3 / c1 - 1.0) * 100.0
        ))
    };
    Ok(format!(
        "{table}\nshape check (capacitance must rise with V_DD):\n  {}\n  {}\n  {}\n",
        rise(RegisterStyle::Lclr)?,
        rise(RegisterStyle::Tspc)?,
        rise(RegisterStyle::C2mos)?,
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn series_has_full_sweep() {
        let t = super::series().unwrap();
        assert_eq!(t.row_count(), 21);
        let csv = t.to_csv();
        assert!(csv.starts_with("V_DD (V),LCLR"));
    }
}
