//! Fig. 3: "Experimental V_DD vs V_T for a fixed delay" — the iso-delay
//! locus of a ring oscillator at three delay targets.

use super::BenchError;
use lowvolt_circuit::ring::RingOscillator;
use lowvolt_core::optimizer::FixedThroughputOptimizer;
use lowvolt_core::report::Table;
use lowvolt_device::units::{Seconds, Volts};

/// The three stage-delay targets; the paper annotates 42 ps and 645 ps
/// points plus a slow curve.
pub const TARGETS_PS: [f64; 3] = [42.0, 150.0, 645.0];

/// The plotted series.
///
/// # Errors
///
/// Returns [`BenchError`] if an optimiser fails to construct.
pub fn series() -> Result<Table, BenchError> {
    let mut table = Table::new([
        "V_T (V)",
        "V_DD @ 42 ps (V)",
        "V_DD @ 150 ps (V)",
        "V_DD @ 645 ps (V)",
    ]);
    let mut opts: Vec<FixedThroughputOptimizer> = Vec::new();
    for ps in TARGETS_PS {
        opts.push(FixedThroughputOptimizer::new(
            RingOscillator::paper_default()?,
            Seconds::from_picos(ps),
            1.0,
        )?);
    }
    for i in 0..=11 {
        let vt = Volts(0.05 * f64::from(i));
        let cells: Vec<String> = opts
            .iter()
            .map(|o| match o.iso_delay_supply(vt) {
                Ok(vdd) => format!("{:.3}", vdd.0),
                Err(_) => "-".to_string(),
            })
            .collect();
        table.push_row([
            format!("{:.2}", vt.0),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    Ok(table)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if the series fails to evaluate.
pub fn run() -> Result<String, BenchError> {
    Ok(format!(
        "{}\nslower targets admit lower supplies at every threshold; all curves rise with V_T.\n",
        series()?
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_targets_feasible_at_low_vt() {
        let t = super::series().unwrap();
        assert_eq!(t.row_count(), 12);
        let csv = t.to_csv();
        let second_line = csv.lines().nth(1).expect("data row");
        assert!(!second_line.contains('-'), "low V_T rows all feasible");
    }
}
