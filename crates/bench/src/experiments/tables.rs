//! Tables 1–3: ATOM-style profiling of the three workloads.
//!
//! The original tables' absolute counts come from SPEC binaries on DEC
//! hardware; ours come from the guest reimplementations. The qualitative
//! contrasts the paper builds on — adder-dominated integer code,
//! near-zero multiplication in espresso/li, multiplication-dense IDEA,
//! and `bga ≤ fga` everywhere — are the reproduction targets.

use super::BenchError;
use lowvolt_isa::profile::ProfileReport;
use lowvolt_workloads::{espresso, idea, li, run_profiled};

/// Workload sizes: large enough for stable statistics, small enough for
/// quick regeneration.
pub const ESPRESSO_MINTERMS: u32 = 150;
/// Seed for the espresso PLA generator.
pub const ESPRESSO_SEED: u32 = 42;
/// li expression-tree depth.
pub const LI_DEPTH: usize = 10;
/// li tree seed.
pub const LI_SEED: u64 = 42;
/// li evaluation repetitions.
pub const LI_REPS: u32 = 10;
/// IDEA block count.
pub const IDEA_BLOCKS: u32 = 100;

/// Profiles the espresso-like workload.
///
/// # Errors
///
/// Returns [`BenchError`] if program generation, assembly, or execution
/// fails.
pub fn profile_espresso() -> Result<ProfileReport, BenchError> {
    let src = espresso::program(ESPRESSO_MINTERMS, ESPRESSO_SEED)?;
    Ok(run_profiled(&src, 2_000_000_000)?.1)
}

/// Profiles the li-like workload.
///
/// # Errors
///
/// Returns [`BenchError`] if assembly or execution fails.
pub fn profile_li() -> Result<ProfileReport, BenchError> {
    Ok(run_profiled(&li::program(LI_DEPTH, LI_SEED, LI_REPS), 2_000_000_000)?.1)
}

/// Profiles the IDEA workload.
///
/// # Errors
///
/// Returns [`BenchError`] if assembly or execution fails.
pub fn profile_idea() -> Result<ProfileReport, BenchError> {
    Ok(run_profiled(&idea::program(IDEA_BLOCKS), 2_000_000_000)?.1)
}

/// Table 1 (espresso).
///
/// # Errors
///
/// Returns [`BenchError`] if the profile fails.
pub fn table1() -> Result<String, BenchError> {
    Ok(format!(
        "workload: espresso-like cube minimiser\n{}",
        profile_espresso()?
    ))
}

/// Table 2 (li).
///
/// # Errors
///
/// Returns [`BenchError`] if the profile fails.
pub fn table2() -> Result<String, BenchError> {
    Ok(format!(
        "workload: li-like expression interpreter\n{}",
        profile_li()?
    ))
}

/// Table 3 (IDEA).
///
/// # Errors
///
/// Returns [`BenchError`] if the profile fails.
pub fn table3() -> Result<String, BenchError> {
    Ok(format!(
        "workload: IDEA data encryption\n{}",
        profile_idea()?
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_isa::FunctionalUnit;

    #[test]
    fn instruction_mix_contrasts() {
        let esp = profile_espresso().unwrap();
        let li = profile_li().unwrap();
        let idea = profile_idea().unwrap();
        let m = FunctionalUnit::Multiplier;
        assert!(idea.unit(m).fga > 10.0 * esp.unit(m).fga);
        assert!(idea.unit(m).fga > 10.0 * li.unit(m).fga);
        for p in [&esp, &li, &idea] {
            assert!(p.unit(FunctionalUnit::Adder).fga > 0.3);
        }
    }
}
