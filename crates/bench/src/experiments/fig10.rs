//! Fig. 10: "Log(E_SOIAS / E_SOI) as a function of activity variables" —
//! the trade-off surface, its breakeven contour, and the application
//! operating points (continuous vs X-server).

use super::{paper_operating_point, BenchError};
use lowvolt_core::activity::ActivityVars;
use lowvolt_core::energy::BlockParams;
use lowvolt_core::report::Table;
use lowvolt_core::tradeoff::{place_point, OperatingPoint, TradeoffSurface};

/// The paper's §5.4 operating points: `(name, fga, bga)` — top set for
/// the continuously-active processor, bottom set for the 20 %-active X
/// server, with the printed X-server numbers used verbatim.
pub const PAPER_POINTS: [(&str, f64, f64); 6] = [
    ("adder (continuous)", 0.697, 0.115),
    ("shifter (continuous)", 0.545, 0.435),
    ("multiplier (continuous)", 0.0415, 0.0415),
    ("adder (x-server)", 0.697 * 0.2, 0.023),
    ("shifter (x-server)", 0.109, 0.087),
    ("multiplier (x-server)", 0.0083, 0.0083),
];

fn block_for(name: &str) -> Result<BlockParams, BenchError> {
    Ok(if name.starts_with("shifter") {
        BlockParams::shifter_8bit()?
    } else if name.starts_with("multiplier") {
        BlockParams::multiplier_8x8()?
    } else {
        BlockParams::adder_8bit()?
    })
}

/// Places every paper point on the surface.
///
/// # Errors
///
/// Returns [`BenchError`] if a paper point is rejected by the activity
/// model (the shipped constants never are).
pub fn operating_points() -> Result<Vec<OperatingPoint>, BenchError> {
    let (model, soias, soi) = paper_operating_point()?;
    let mut points = Vec::new();
    for &(name, fga, bga) in &PAPER_POINTS {
        let activity = ActivityVars::new(fga, bga, 0.5)?;
        points.push(place_point(
            &model,
            &soias,
            &soi,
            &block_for(name)?,
            name,
            activity,
        ));
    }
    Ok(points)
}

/// Evaluates the surface over the plotted region.
///
/// # Errors
///
/// Returns [`BenchError`] if the surface evaluation fails.
pub fn surface() -> Result<TradeoffSurface, BenchError> {
    let (model, soias, soi) = paper_operating_point()?;
    Ok(TradeoffSurface::evaluate(
        &model,
        &soias,
        &soi,
        &BlockParams::adder_8bit()?,
        0.5,
        (1e-3, 1.0),
        (1e-4, 1.0),
        61,
    )?)
}

/// Renders the experiment.
///
/// # Errors
///
/// Returns [`BenchError`] if the surface or a paper point fails to
/// evaluate.
pub fn run() -> Result<String, BenchError> {
    let mut out = String::new();
    let s = surface()?;
    out.push_str("log10(E_SOIAS / E_SOI) samples (rows: fga, cols: bga, '.' = infeasible):\n");
    let mut grid = Table::new(["fga \\ bga", "1e-4", "1e-3", "1e-2", "1e-1", "1"]);
    for fi in [0usize, 15, 30, 45, 60] {
        let mut row = vec![format!("{:.3}", s.fga_axis()[fi])];
        for bi in [0usize, 15, 30, 45, 60] {
            let v = s.value(fi, bi);
            row.push(if v.is_nan() {
                ".".to_string()
            } else {
                format!("{v:+.2}")
            });
        }
        grid.push_row(row);
    }
    out.push_str(&grid.to_string());
    out.push_str("\nbreakeven contour (SOIAS loses above it):\n");
    let contour = s.breakeven_contour();
    if contour.is_empty() {
        out.push_str("  none inside the plotted region: SOIAS wins everywhere feasible\n");
    }
    for (fga, bga) in contour {
        out.push_str(&format!("  fga = {fga:.3} -> bga = {bga:.4}\n"));
    }
    out.push_str("\napplication operating points:\n");
    let mut pts = Table::new(["point", "fga", "bga", "log10 ratio", "saving"]);
    for p in operating_points()? {
        pts.push_row([
            p.name.clone(),
            format!("{:.4}", p.activity.fga),
            format!("{:.4}", p.activity.bga),
            format!("{:+.3}", p.log_ratio),
            format!("{:.1}%", p.saving * 100.0),
        ]);
    }
    out.push_str(&pts.to_string());
    out.push_str("\npaper reference savings (X-server): adder 43%, shifter 80%, multiplier 97%\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn x_server_savings_ordering_holds() {
        let pts = super::operating_points().unwrap();
        let get = |n: &str| pts.iter().find(|p| p.name == n).expect("present").saving;
        let adder = get("adder (x-server)");
        let shifter = get("shifter (x-server)");
        let mult = get("multiplier (x-server)");
        assert!(
            mult > shifter && shifter > adder,
            "{mult} > {shifter} > {adder}"
        );
        assert!(adder > 0.0);
    }
}
