//! Fig. 10: "Log(E_SOIAS / E_SOI) as a function of activity variables" —
//! the trade-off surface, its breakeven contour, and the application
//! operating points (continuous vs X-server).

use super::paper_operating_point;
use lowvolt_core::activity::ActivityVars;
use lowvolt_core::energy::BlockParams;
use lowvolt_core::report::Table;
use lowvolt_core::tradeoff::{place_point, OperatingPoint, TradeoffSurface};

/// The paper's §5.4 operating points: `(name, fga, bga)` — top set for
/// the continuously-active processor, bottom set for the 20 %-active X
/// server, with the printed X-server numbers used verbatim.
pub const PAPER_POINTS: [(&str, f64, f64); 6] = [
    ("adder (continuous)", 0.697, 0.115),
    ("shifter (continuous)", 0.545, 0.435),
    ("multiplier (continuous)", 0.0415, 0.0415),
    ("adder (x-server)", 0.697 * 0.2, 0.023),
    ("shifter (x-server)", 0.109, 0.087),
    ("multiplier (x-server)", 0.0083, 0.0083),
];

fn block_for(name: &str) -> BlockParams {
    if name.starts_with("shifter") {
        BlockParams::shifter_8bit()
    } else if name.starts_with("multiplier") {
        BlockParams::multiplier_8x8()
    } else {
        BlockParams::adder_8bit()
    }
}

/// Places every paper point on the surface.
#[must_use]
pub fn operating_points() -> Vec<OperatingPoint> {
    let (model, soias, soi) = paper_operating_point();
    PAPER_POINTS
        .iter()
        .map(|&(name, fga, bga)| {
            let activity = ActivityVars::new(fga, bga, 0.5).expect("paper points are feasible");
            place_point(&model, &soias, &soi, &block_for(name), name, activity)
        })
        .collect()
}

/// Evaluates the surface over the plotted region.
#[must_use]
pub fn surface() -> TradeoffSurface {
    let (model, soias, soi) = paper_operating_point();
    TradeoffSurface::evaluate(
        &model,
        &soias,
        &soi,
        &BlockParams::adder_8bit(),
        0.5,
        (1e-3, 1.0),
        (1e-4, 1.0),
        61,
    )
    .expect("static ranges")
}

/// Renders the experiment.
#[must_use]
pub fn run() -> String {
    let mut out = String::new();
    let s = surface();
    out.push_str("log10(E_SOIAS / E_SOI) samples (rows: fga, cols: bga, '.' = infeasible):\n");
    let mut grid = Table::new(["fga \\ bga", "1e-4", "1e-3", "1e-2", "1e-1", "1"]);
    for fi in [0usize, 15, 30, 45, 60] {
        let mut row = vec![format!("{:.3}", s.fga_axis()[fi])];
        for bi in [0usize, 15, 30, 45, 60] {
            let v = s.value(fi, bi);
            row.push(if v.is_nan() {
                ".".to_string()
            } else {
                format!("{v:+.2}")
            });
        }
        grid.push_row(row);
    }
    out.push_str(&grid.to_string());
    out.push_str("\nbreakeven contour (SOIAS loses above it):\n");
    let contour = s.breakeven_contour();
    if contour.is_empty() {
        out.push_str("  none inside the plotted region: SOIAS wins everywhere feasible\n");
    }
    for (fga, bga) in contour {
        out.push_str(&format!("  fga = {fga:.3} -> bga = {bga:.4}\n"));
    }
    out.push_str("\napplication operating points:\n");
    let mut pts = Table::new(["point", "fga", "bga", "log10 ratio", "saving"]);
    for p in operating_points() {
        pts.push_row([
            p.name.clone(),
            format!("{:.4}", p.activity.fga),
            format!("{:.4}", p.activity.bga),
            format!("{:+.3}", p.log_ratio),
            format!("{:.1}%", p.saving * 100.0),
        ]);
    }
    out.push_str(&pts.to_string());
    out.push_str(
        "\npaper reference savings (X-server): adder 43%, shifter 80%, multiplier 97%\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn x_server_savings_ordering_holds() {
        let pts = super::operating_points();
        let get = |n: &str| pts.iter().find(|p| p.name == n).expect("present").saving;
        let adder = get("adder (x-server)");
        let shifter = get("shifter (x-server)");
        let mult = get("multiplier (x-server)");
        assert!(mult > shifter && shifter > adder, "{mult} > {shifter} > {adder}");
        assert!(adder > 0.0);
    }
}
