//! Ablation studies for the design choices DESIGN.md calls out.

use super::{paper_operating_point, BenchError};
use lowvolt_circuit::adder::{carry_lookahead_adder, ripple_carry_adder};
use lowvolt_circuit::netlist::Netlist;
use lowvolt_circuit::registers::{RegisterCapModel, RegisterStyle};
use lowvolt_circuit::ring::RingOscillator;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_core::activity::ActivityVars;
use lowvolt_core::energy::BlockParams;
use lowvolt_core::granularity::{compare_granularities, ControlGranularity};
use lowvolt_core::mtcmos::MtcmosSizer;
use lowvolt_core::optimizer::FixedThroughputOptimizer;
use lowvolt_core::report::{fmt_sig, Table};
use lowvolt_device::body::BodyEffect;
use lowvolt_device::technology::Technology;
use lowvolt_device::units::{Amps, Seconds, Volts};

fn optimizer(activity: f64) -> Result<FixedThroughputOptimizer, BenchError> {
    let ring = RingOscillator::paper_default()?;
    let target = ring.stage_delay(Volts(1.5), Volts(0.45));
    Ok(FixedThroughputOptimizer::new(ring, target, activity)?)
}

/// Leakage-aware vs leakage-blind optimisation: the paper's complaint is
/// that contemporary estimators ignored sub-threshold leakage; a
/// leakage-blind optimiser drives V_T to zero and pays for it.
///
/// # Errors
///
/// Returns [`BenchError`] if the optimiser fails or the sweep is empty.
pub fn leakage_blind() -> Result<String, BenchError> {
    let opt = optimizer(1.0)?;
    let t_op = Seconds(1e-6);
    let aware = opt.optimum(t_op)?;
    // A leakage-blind tool minimises switching energy only → picks the
    // smallest feasible V_T on the sweep grid.
    let blind = (0..=90)
        .filter_map(|i| opt.evaluate(Volts(0.005 * f64::from(i)), t_op).ok())
        .min_by(|a, b| a.switching.0.total_cmp(&b.switching.0))
        .ok_or_else(|| BenchError("leakage-blind sweep found no feasible point".to_string()))?;
    let mut t = Table::new([
        "optimiser",
        "V_T (V)",
        "V_DD (V)",
        "E_believed (J)",
        "E_actual (J)",
    ]);
    t.push_row([
        "leakage-aware".to_string(),
        format!("{:.3}", aware.vt.0),
        format!("{:.3}", aware.vdd.0),
        fmt_sig(aware.total().0, 3),
        fmt_sig(aware.total().0, 3),
    ]);
    t.push_row([
        "leakage-blind".to_string(),
        format!("{:.3}", blind.vt.0),
        format!("{:.3}", blind.vdd.0),
        fmt_sig(blind.switching.0, 3),
        fmt_sig(blind.total().0, 3),
    ]);
    Ok(format!(
        "{t}\nthe blind pick believes {} J but actually burns {} J — {:.1}x worse than the aware optimum\n",
        fmt_sig(blind.switching.0, 3),
        fmt_sig(blind.total().0, 3),
        blind.total().0 / aware.total().0,
    ))
}

/// Optimum operating point vs switching activity (§3: "The switching
/// activity plays a major role in determining the optimum threshold and
/// power supply voltage").
///
/// # Errors
///
/// Returns [`BenchError`] if an optimiser fails at any activity level.
pub fn activity_dependence() -> Result<String, BenchError> {
    let mut t = Table::new(["alpha", "opt V_T (V)", "opt V_DD (V)", "E (J)"]);
    for alpha in [1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01] {
        let best = optimizer(alpha)?.optimum(Seconds(1e-6))?;
        t.push_row([
            format!("{alpha}"),
            format!("{:.3}", best.vt.0),
            format!("{:.3}", best.vdd.0),
            fmt_sig(best.total().0, 3),
        ]);
    }
    Ok(format!(
        "{t}\nlower activity -> leakage dominates -> higher optimal V_T and V_DD\n"
    ))
}

/// Chip vs block vs per-transistor V_T control on the X-server design.
///
/// # Errors
///
/// Returns [`BenchError`] if the comparison fails to evaluate.
pub fn granularity() -> Result<String, BenchError> {
    let (model, soias, _) = paper_operating_point()?;
    let blocks = vec![
        (
            BlockParams::adder_8bit()?,
            ActivityVars::new(0.1394, 0.0046, 0.5)?,
        ),
        (
            BlockParams::shifter_8bit()?,
            ActivityVars::new(0.0218, 0.0174, 0.5)?,
        ),
        (
            BlockParams::multiplier_8x8()?,
            ActivityVars::new(0.00166, 0.00166, 0.5)?,
        ),
    ];
    let cmp = compare_granularities(&model, &soias, &blocks, 0.2, 1e-4)?;
    let mut t = Table::new(["granularity", "E per cycle (J)", "vs block"]);
    for g in ControlGranularity::ALL {
        t.push_row([
            g.to_string(),
            fmt_sig(cmp.energy(g).0, 3),
            format!("{:.2}x", cmp.energy(g).0 / cmp.block.0),
        ]);
    }
    Ok(format!(
        "{t}\nbest granularity: {} (the paper's chosen model of operation)\n",
        cmp.best()
    ))
}

/// The four §4 leakage-control technologies on the same bursty block.
///
/// # Errors
///
/// Returns [`BenchError`] if a technology model fails to construct.
pub fn technology_four_way() -> Result<String, BenchError> {
    let (model, soias, soi) = paper_operating_point()?;
    let mtcmos = Technology::mtcmos(Volts(0.084), Volts(0.55), Volts(1.0))?;
    let substrate = Technology::substrate_bias(BodyEffect::with_vt0(Volts(0.084)), Volts(2.0))?;
    let block = BlockParams::adder_8bit()?;
    let activity = ActivityVars::new(0.05, 0.005, 0.5)?;
    let mut t = Table::new([
        "technology",
        "standby V_T (V)",
        "E per cycle (J)",
        "vs fixed-V_T SOI",
    ]);
    let base = model.energy_per_cycle(&soi, &block, activity).0;
    for tech in [&soi, &soias, &mtcmos, &substrate] {
        let e = model.energy_per_cycle(tech, &block, activity).0;
        t.push_row([
            tech.name().to_string(),
            format!("{:.3}", tech.standby_vt().0),
            fmt_sig(e, 3),
            format!("{:.3}x", e / base),
        ]);
    }
    // MTCMOS sizing sidebar.
    let sizer = MtcmosSizer::new(Amps(1e-3), Volts(1.0), Volts(0.084), Volts(0.55))?;
    let design = sizer.size_for_penalty(0.05)?;
    Ok(format!(
        "{t}\nMTCMOS sleep device for 5% delay penalty: {:.1} um wide, {:.0} mV rail droop\nsubstrate bias note: raising V_T a few hundred mV costs volts of bias (square-root law)\n",
        design.width.0,
        design.rail_droop.0 * 1e3,
    ))
}

/// Constant-capacitance vs voltage-dependent capacitance energy estimates
/// (Fig. 1's "necessary to take capacitive non-linearities into account").
///
/// # Errors
///
/// Returns [`BenchError`] if a capacitance evaluation fails.
pub fn capacitance_nonlinearity() -> Result<String, BenchError> {
    let model = RegisterCapModel::new(RegisterStyle::C2mos, Volts(0.5));
    let c_at_1v = model.switched_capacitance(Volts(1.0), 1.0)?;
    let mut t = Table::new([
        "V_DD (V)",
        "E true (J)",
        "E constant-C (J)",
        "underestimate",
    ]);
    for i in 0..=8 {
        let vdd = Volts(1.0 + 0.25 * f64::from(i));
        let true_e = model.energy_per_cycle(vdd, 1.0)?.0;
        let const_e = c_at_1v.0 * vdd.0 * vdd.0;
        t.push_row([
            format!("{:.2}", vdd.0),
            fmt_sig(true_e, 3),
            fmt_sig(const_e, 3),
            format!("{:.1}%", (1.0 - const_e / true_e) * 100.0),
        ]);
    }
    Ok(format!(
        "{t}\na constant-C model calibrated at 1 V undercounts switching energy as V_DD rises\n"
    ))
}

/// Ripple-carry vs carry-lookahead glitch energy at equal function.
///
/// # Errors
///
/// Returns [`BenchError`] if netlist generation or simulation fails.
pub fn adder_glitch() -> Result<String, BenchError> {
    let measure = |cla: bool| -> Result<(usize, f64, f64), BenchError> {
        let mut n = Netlist::new();
        let inputs = if cla {
            carry_lookahead_adder(&mut n, 16)?.input_nodes()
        } else {
            ripple_carry_adder(&mut n, 16)?.input_nodes()
        };
        let mut sim = Simulator::new(&n);
        let mut src = PatternSource::random(inputs.len(), 77)?;
        let report = sim.measure_activity(&mut src, &inputs, 540, 40)?;
        Ok((
            n.gate_count(),
            report.mean_transition_probability(),
            report.switched_capacitance_per_cycle().to_femtofarads(),
        ))
    };
    let (g_rca, a_rca, c_rca) = measure(false)?;
    let (g_cla, a_cla, c_cla) = measure(true)?;
    let mut t = Table::new(["adder", "gates", "mean alpha", "switched cap (fF/cycle)"]);
    t.push_row([
        "ripple-carry".to_string(),
        g_rca.to_string(),
        format!("{a_rca:.3}"),
        format!("{c_rca:.1}"),
    ]);
    t.push_row([
        "carry-lookahead".to_string(),
        g_cla.to_string(),
        format!("{a_cla:.3}"),
        format!("{c_cla:.1}"),
    ]);
    Ok(format!(
        "{t}\nthe lookahead tree spends {:.0}% more gates but its flatter carry arrival cuts per-node glitching ({:.3} vs {:.3} mean alpha)\n",
        (g_cla as f64 / g_rca as f64 - 1.0) * 100.0,
        a_cla,
        a_rca,
    ))
}

/// Architectural voltage scaling (intro ref \[1\]) with leakage accounted:
/// energy vs degree of parallelism for low- and high-V_T implementations.
///
/// # Errors
///
/// Returns [`BenchError`] if the scaling model fails to construct or no
/// parallelism degree is feasible.
pub fn parallelism() -> Result<String, BenchError> {
    use lowvolt_core::scaling::{ParallelScaling, DEFAULT_OVERHEAD_PER_WAY};
    let mut out = String::new();
    for vt in [0.45, 0.15] {
        let ring = RingOscillator::paper_default()?;
        let base = ring.stage_delay(Volts(2.5), Volts(vt));
        let model = ParallelScaling::new(
            ring,
            Volts(vt),
            base,
            Seconds(1e-6),
            DEFAULT_OVERHEAD_PER_WAY,
        )?;
        let mut t = Table::new([
            "ways",
            "V_DD (V)",
            "E_switch (J)",
            "E_leak (J)",
            "E_total (J)",
        ]);
        for p in model.sweep(16) {
            t.push_row([
                p.ways.to_string(),
                format!("{:.3}", p.vdd.0),
                fmt_sig(p.switching.0, 3),
                fmt_sig(p.leakage.0, 3),
                fmt_sig(p.total().0, 3),
            ]);
        }
        let best = model.best(16)?;
        out.push_str(&format!(
            "V_T = {vt} V:\n{t}best: {} ways at {:.3} V ({} J/op)\n\n",
            best.ways,
            best.vdd.0,
            fmt_sig(best.total().0, 3)
        ));
    }
    out.push_str(
        "leakage bounds the parallelism win: the low-V_T design's optimum is shallower.\n",
    );
    Ok(out)
}

/// Process-corner and temperature spread of the key device quantities.
///
/// # Errors
///
/// Returns [`BenchError`] if a corner condition is rejected by the
/// device model.
pub fn corners() -> Result<String, BenchError> {
    use lowvolt_device::corners::{Condition, Corner};
    use lowvolt_device::mosfet::Mosfet;
    use lowvolt_device::units::Kelvin;
    let nominal = Mosfet::nmos_with_vt(Volts(0.25));
    let mut t = Table::new(["condition", "V_T (V)", "I_on @1V (A)", "I_off @1V (A)"]);
    for corner in Corner::ALL {
        for temp_k in [300.0, 358.0] {
            let cond = Condition {
                corner,
                temperature: Kelvin(temp_k),
            };
            let d = cond.apply(&nominal)?;
            t.push_row([
                format!("{corner} @ {:.0} K", temp_k),
                format!("{:.3}", d.vt0().0),
                fmt_sig(d.on_current(Volts(1.0)).0, 3),
                fmt_sig(d.off_current(Volts(1.0)).0, 3),
            ]);
        }
    }
    Ok(format!(
        "{t}\nthe fast/hot corner sets the leakage budget; the slow/hot corner sets timing.\n"
    ))
}

/// The transistor-stack effect: why series devices (MTCMOS, NAND
/// pull-downs) leak an order of magnitude less.
///
/// # Errors
///
/// Returns [`BenchError`] if the stack solver fails to converge.
pub fn stack_effect() -> Result<String, BenchError> {
    use lowvolt_device::mosfet::Mosfet;
    use lowvolt_device::stack::two_stack_leakage;
    let mut t = Table::new([
        "device",
        "single off (A)",
        "2-stack off (A)",
        "reduction",
        "V_x (mV)",
    ]);
    for (label, dibl) in [
        ("long-channel (no DIBL)", 0.0),
        ("short-channel (DIBL 0.07)", 0.07),
    ] {
        let d = Mosfet::nmos_with_vt(Volts(0.2)).with_dibl(dibl);
        let s = two_stack_leakage(&d, Volts(1.0))?;
        t.push_row([
            label.to_string(),
            fmt_sig(d.off_current(Volts(1.0)).0, 3),
            fmt_sig(s.current.0, 3),
            format!("{:.1}x", s.reduction_factor),
            format!("{:.0}", s.intermediate.0 * 1e3),
        ]);
    }
    Ok(format!(
        "{t}\nthe classic ~10x stack factor is DIBL-driven.\n"
    ))
}

/// The FIR continuous-mode profile (our §3-class extension workload).
///
/// # Errors
///
/// Returns [`BenchError`] if assembly or execution fails.
pub fn fir_profile() -> Result<String, BenchError> {
    use lowvolt_isa::asm::assemble;
    use lowvolt_isa::cpu::Cpu;
    use lowvolt_isa::profile::Profiler;
    let program = assemble(&lowvolt_workloads::fir::program(300, 42))?;
    let strict = {
        let mut cpu = Cpu::new(program.clone());
        let mut p = Profiler::standard();
        cpu.run_profiled(100_000_000, &mut p)?;
        p.report()
    };
    let relaxed = {
        let mut cpu = Cpu::new(program);
        let mut p = Profiler::standard().with_hysteresis(12);
        cpu.run_profiled(100_000_000, &mut p)?;
        p.report()
    };
    Ok(format!(
        "workload: 8-tap FIR filter (continuous DSP)\nstrict run counting (paper definition):\n{strict}\nwith 12-instruction power-management hysteresis:\n{relaxed}\nthe MAC loop keeps the multiplier in long runs: bga collapses under hysteresis\nwhile fga is unchanged — the continuous-mode signature of the paper's §3 class.\n"
    ))
}

/// Transistor-level cross-check of Fig. 1's premise: per-cycle switched
/// capacitance of real register netlists orders by clocked-device count,
/// measured by the switch-level simulator.
///
/// # Errors
///
/// Returns [`BenchError`] if a register fails to build or simulate.
pub fn switchlevel_registers() -> Result<String, BenchError> {
    use lowvolt_circuit::switch_registers::{
        c2mos_register, npass_latch, static_tg_register, switched_cap_per_cycle, SwRegisterPorts,
    };
    use lowvolt_circuit::switchlevel::SwitchNetlist;
    use lowvolt_circuit::CircuitError;
    let mut t = Table::new([
        "register",
        "transistors",
        "switched cap (fF/cycle)",
        "style",
    ]);
    let measure = |name: &str,
                   style: &str,
                   build: fn(&mut SwitchNetlist) -> Result<SwRegisterPorts, CircuitError>,
                   t: &mut Table|
     -> Result<(), BenchError> {
        let mut n = SwitchNetlist::new();
        let p = build(&mut n)?;
        let cap = switched_cap_per_cycle(&n, p, 16)?;
        t.push_row([
            name.to_string(),
            n.transistor_count().to_string(),
            format!("{cap:.1}"),
            style.to_string(),
        ]);
        Ok(())
    };
    measure(
        "static TG master-slave",
        "8 clocked devices",
        static_tg_register,
        &mut t,
    )?;
    measure(
        "C2MOS master-slave",
        "4 clocked devices",
        c2mos_register,
        &mut t,
    )?;
    measure(
        "n-pass dynamic latch",
        "1 clocked device",
        npass_latch,
        &mut t,
    )?;
    Ok(format!(
        "{t}\nswitch-level simulation (pass gates, dynamic nodes, charge storage) confirms\nthe Fig. 1 premise: switched capacitance orders by clock load.\n"
    ))
}

/// Sensitivity tornado around the Fig. 4 nominal optimum.
///
/// # Errors
///
/// Returns [`BenchError`] if the nominal point is infeasible.
pub fn sensitivity() -> Result<String, BenchError> {
    use lowvolt_core::sensitivity::{analyse, DesignPoint};
    let report = analyse(DesignPoint::paper_nominal()?, 0.2)?;
    let mut t = Table::new([
        "parameter (+/-20%)",
        "opt V_T range (V)",
        "opt V_DD range (V)",
        "energy swing",
    ]);
    for e in &report.entries {
        t.push_row([
            e.parameter.to_string(),
            format!("{:.3}..{:.3}", e.vt_range.0, e.vt_range.1),
            format!("{:.3}..{:.3}", e.vdd_range.0, e.vdd_range.1),
            format!("{:+.1}%", e.energy_swing * 100.0),
        ]);
    }
    Ok(format!(
        "nominal optimum: V_T = {:.3} V, V_DD = {:.3} V\n{t}\nthe delay target dominates; activity and throughput shift the optimum V_T.\n",
        report.nominal_vt.0, report.nominal_vdd.0
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn leakage_blind_is_worse() {
        let out = super::leakage_blind().unwrap();
        assert!(out.contains("worse than the aware optimum"));
    }

    #[test]
    fn granularity_prefers_block() {
        let out = super::granularity().unwrap();
        assert!(out.contains("best granularity: block"));
    }

    #[test]
    fn four_technologies_reported() {
        let out = super::technology_four_way().unwrap();
        assert!(out.contains("soias"));
        assert!(out.contains("mtcmos"));
        assert!(out.contains("substrate-bias"));
        assert!(out.contains("soi-fixed-vt"));
    }

    #[test]
    fn constant_c_underestimates_at_high_vdd() {
        let out = super::capacitance_nonlinearity().unwrap();
        assert!(out.contains("undercounts"));
    }
}
