//! # lowvolt-bench
//!
//! The experiment harness: one function per table and figure of the
//! paper's evaluation, each returning a printable [`Table`] with the same
//! rows/series the paper reports, plus ablation studies for the design
//! choices called out in DESIGN.md.
//!
//! Consumed by the `regen` binary (prints everything) and the Criterion
//! benches (measure each experiment's generation cost).
//!
//! [`Table`]: lowvolt_core::report::Table

pub mod experiments;

pub use experiments::{all_experiments, run_experiments_with, BenchError, Experiment};
