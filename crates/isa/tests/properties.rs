//! Property-based tests: the interpreter's arithmetic must agree with
//! Rust's, and the profiler's activity variables must satisfy their
//! defining inequalities on arbitrary instruction streams.

use lowvolt_isa::asm::assemble;
use lowvolt_isa::blocks::FunctionalUnit;
use lowvolt_isa::cpu::Cpu;
use lowvolt_isa::inst::{Inst, Reg};
use lowvolt_isa::profile::Profiler;
use proptest::prelude::*;

/// Runs a two-operand computation through the CPU and returns the printed
/// result.
fn run_binop(op_lines: &str, a: i32, b: i32) -> i64 {
    let src = format!(
        r#"
        .text
        li $t0, {a}
        li $t1, {b}
        {op_lines}
        li $v0, 1
        syscall
        li $v0, 10
        syscall
    "#
    );
    let mut cpu = Cpu::new(assemble(&src).expect("assembles"));
    cpu.run(10_000).expect("runs");
    cpu.output().parse().expect("integer output")
}

proptest! {
    #[test]
    fn add_matches_wrapping(a in any::<i32>(), b in any::<i32>()) {
        let got = run_binop("add $a0, $t0, $t1", a, b);
        prop_assert_eq!(got, i64::from(a.wrapping_add(b)));
    }

    #[test]
    fn sub_matches_wrapping(a in any::<i32>(), b in any::<i32>()) {
        let got = run_binop("sub $a0, $t0, $t1", a, b);
        prop_assert_eq!(got, i64::from(a.wrapping_sub(b)));
    }

    #[test]
    fn mult_matches_64bit_product(a in any::<i32>(), b in any::<i32>()) {
        let lo = run_binop("mult $t0, $t1\nmflo $a0", a, b);
        let hi = run_binop("mult $t0, $t1\nmfhi $a0", a, b);
        let product = i64::from(a) * i64::from(b);
        prop_assert_eq!(lo as i32, product as i32);
        prop_assert_eq!(hi as i32, (product >> 32) as i32);
    }

    #[test]
    fn div_matches_truncating(a in any::<i32>(), b in any::<i32>().prop_filter("nonzero", |&b| b != 0)) {
        prop_assume!(!(a == i32::MIN && b == -1)); // wrapping_div differs from hw edge case semantics we keep
        let q = run_binop("div $t0, $t1\nmflo $a0", a, b);
        let r = run_binop("div $t0, $t1\nmfhi $a0", a, b);
        prop_assert_eq!(q as i32, a / b);
        prop_assert_eq!(r as i32, a % b);
    }

    #[test]
    fn logic_ops_match(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(run_binop("and $a0, $t0, $t1", a, b) as i32, a & b);
        prop_assert_eq!(run_binop("or $a0, $t0, $t1", a, b) as i32, a | b);
        prop_assert_eq!(run_binop("xor $a0, $t0, $t1", a, b) as i32, a ^ b);
        prop_assert_eq!(run_binop("nor $a0, $t0, $t1", a, b) as i32, !(a | b));
    }

    #[test]
    fn shifts_match(a in any::<i32>(), s in 0u8..32) {
        prop_assert_eq!(
            run_binop(&format!("sll $a0, $t0, {s}"), a, 0) as i32,
            ((a as u32) << s) as i32
        );
        prop_assert_eq!(
            run_binop(&format!("srl $a0, $t0, {s}"), a, 0) as i32,
            ((a as u32) >> s) as i32
        );
        prop_assert_eq!(
            run_binop(&format!("sra $a0, $t0, {s}"), a, 0) as i32,
            a >> s
        );
        // Variable forms agree with immediate forms.
        prop_assert_eq!(
            run_binop("sllv $a0, $t0, $t1", a, i32::from(s)) as i32,
            ((a as u32) << s) as i32
        );
    }

    #[test]
    fn comparisons_match(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(run_binop("slt $a0, $t0, $t1", a, b), i64::from(a < b));
        prop_assert_eq!(
            run_binop("sltu $a0, $t0, $t1", a, b),
            i64::from((a as u32) < b as u32)
        );
    }

    #[test]
    fn memory_roundtrips(v in any::<i32>(), slot in 0i32..16) {
        let src = format!(
            r#"
            .data
            buf: .space 64
            .text
            la  $t0, buf
            li  $t1, {v}
            sw  $t1, {off}($t0)
            lw  $a0, {off}($t0)
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        "#,
            off = slot * 4
        );
        let mut cpu = Cpu::new(assemble(&src).expect("assembles"));
        cpu.run(10_000).expect("runs");
        prop_assert_eq!(cpu.output().parse::<i64>().unwrap() as i32, v);
    }

    /// On any instruction stream: bga <= fga <= 1, and runs can never
    /// exceed uses.
    #[test]
    fn activity_invariants(pattern in proptest::collection::vec(0u8..4, 1..300)) {
        let mut p = Profiler::standard();
        for k in &pattern {
            let inst = match k {
                0 => Inst::Add { rd: Reg(8), rs: Reg(9), rt: Reg(10) },
                1 => Inst::Sll { rd: Reg(8), rt: Reg(9), shamt: 1 },
                2 => Inst::Mult { rs: Reg(8), rt: Reg(9) },
                _ => Inst::Nop,
            };
            p.record(&inst);
        }
        let report = p.report();
        prop_assert_eq!(report.total, pattern.len() as u64);
        let mut total_uses = 0;
        for unit in FunctionalUnit::ALL {
            let s = report.unit(unit);
            prop_assert!(s.runs <= s.uses);
            prop_assert!(s.bga <= s.fga + 1e-12);
            prop_assert!(s.fga <= 1.0);
            total_uses += s.uses;
        }
        // Each of the 4 instruction kinds uses at most one unit.
        prop_assert!(total_uses <= report.total);
    }
}
