//! Error types for assembly and execution.

use std::error::Error;
use std::fmt;

/// Error produced while assembling source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based source line the error occurred on (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl AssembleError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AssembleError {
        AssembleError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl Error for AssembleError {}

/// Error produced while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the text segment without an exit syscall.
    PcOutOfRange {
        /// The offending instruction index.
        pc: u32,
        /// The number of instructions in the program.
        len: usize,
    },
    /// A load or store touched an unmapped or misaligned address.
    BadMemoryAccess {
        /// The offending byte address.
        address: u32,
        /// Why the access was rejected.
        reason: &'static str,
    },
    /// An unknown syscall number was requested.
    UnknownSyscall(u32),
    /// A `read_int` syscall found the scripted input queue empty.
    InputExhausted,
    /// The step budget was exhausted before the program exited.
    StepBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc, len } => {
                write!(f, "pc {pc} outside program of {len} instructions")
            }
            ExecError::BadMemoryAccess { address, reason } => {
                write!(f, "bad memory access at {address:#010x}: {reason}")
            }
            ExecError::UnknownSyscall(n) => write!(f, "unknown syscall {n}"),
            ExecError::InputExhausted => write!(f, "scripted input queue exhausted"),
            ExecError::StepBudgetExceeded { budget } => {
                write!(f, "program did not exit within {budget} steps")
            }
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AssembleError::new(3, "bad register")
            .to_string()
            .contains("line 3"));
        assert!(ExecError::BadMemoryAccess {
            address: 0x13,
            reason: "misaligned word"
        }
        .to_string()
        .contains("0x00000013"));
        assert!(ExecError::StepBudgetExceeded { budget: 5 }
            .to_string()
            .contains('5'));
    }
}
