//! ATOM-style execution profiling: per-instruction counts and the paper's
//! `fga` / `bga` activity variables.
//!
//! From §5.3: "fga is the ratio between the total number of uses of the
//! functional block to the total number of executed instructions. bga is
//! the ratio of the number of blocks of functional unit uses to the total
//! number of executed instructions (so if all the uses of a block were
//! sequential, bga would be 1/total instructions)."

use std::collections::HashMap;
use std::fmt;

use crate::blocks::{BlockMap, FunctionalUnit};
use crate::inst::Inst;
use lowvolt_obs::{names, Recorder};

/// Streaming profiler fed by [`Cpu::run_profiled`](crate::cpu::Cpu::run_profiled).
#[derive(Debug, Clone)]
pub struct Profiler {
    map: BlockMap,
    total: u64,
    per_mnemonic: HashMap<&'static str, u64>,
    uses: [u64; 3],
    runs: [u64; 3],
    last_use: [Option<u64>; 3],
    /// A use within `window` instructions of the previous one continues
    /// the same run (hysteresis); 1 = strict adjacency.
    window: u64,
}

impl Profiler {
    /// Profiler with the paper's standard instruction→block mapping.
    #[must_use]
    pub fn standard() -> Profiler {
        Profiler::with_map(BlockMap::standard())
    }

    /// Profiler with a custom mapping.
    #[must_use]
    pub fn with_map(map: BlockMap) -> Profiler {
        Profiler {
            map,
            total: 0,
            per_mnemonic: HashMap::new(),
            uses: [0; 3],
            runs: [0; 3],
            last_use: [None; 3],
            window: 1,
        }
    }

    /// Sets the run-detection hysteresis: a block re-used within `window`
    /// instructions of its previous use is considered *still on* (no new
    /// standby transition). Physically, toggling a back gate between uses
    /// a few cycles apart would cost more control energy than the leakage
    /// it saves, so coarser windows model realistic power-management
    /// policies. `window = 1` (the default) is strict adjacency — the
    /// paper's literal run definition.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_hysteresis(mut self, window: u64) -> Profiler {
        assert!(window >= 1, "hysteresis window must be at least 1");
        self.window = window;
        self
    }

    /// Records one executed instruction.
    pub fn record(&mut self, inst: &Inst) {
        self.total += 1;
        *self.per_mnemonic.entry(inst.mnemonic()).or_insert(0) += 1;
        let units = self.map.units_for(inst);
        for unit in FunctionalUnit::ALL {
            let i = unit.index();
            if units.contains(unit) {
                self.uses[i] += 1;
                let new_run = self.last_use[i].is_none_or(|last| self.total - last > self.window);
                if new_run {
                    self.runs[i] += 1;
                }
                self.last_use[i] = Some(self.total);
            }
        }
    }

    /// Total instructions recorded so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Flushes the profiler's aggregate counters into a metrics recorder:
    /// `profile.instructions`, the unit-use and unit-run sums behind the
    /// `fga`/`bga` numerators, and one `profile.extractions.fga`/`.bga`
    /// tick per functional unit the report extracts.
    ///
    /// The hot path ([`Profiler::record`]) never touches the recorder;
    /// call this once per finished profile, next to
    /// [`Profiler::report`].
    pub fn flush_metrics(&self, rec: &dyn Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.add(names::PROFILE_INSTRUCTIONS, self.total);
        rec.add(names::PROFILE_UNIT_USES, self.uses.iter().sum());
        rec.add(names::PROFILE_UNIT_RUNS, self.runs.iter().sum());
        let units = FunctionalUnit::ALL.len() as u64;
        rec.add(names::PROFILE_EXTRACTIONS_FGA, units);
        rec.add(names::PROFILE_EXTRACTIONS_BGA, units);
    }

    /// Finalises the counters into a report (the profiler can keep
    /// recording afterwards).
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let units = FunctionalUnit::ALL
            .into_iter()
            .map(|u| {
                let i = u.index();
                UnitStats {
                    unit: u,
                    uses: self.uses[i],
                    runs: self.runs[i],
                    fga: ratio(self.uses[i], self.total),
                    bga: ratio(self.runs[i], self.total),
                }
            })
            .collect();
        let mut per_mnemonic: Vec<(String, u64)> = self
            .per_mnemonic
            .iter()
            .map(|(&m, &c)| (m.to_string(), c))
            .collect();
        per_mnemonic.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ProfileReport {
            total: self.total,
            units,
            per_mnemonic,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Activity statistics for one functional unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitStats {
    /// The unit.
    pub unit: FunctionalUnit,
    /// Number of instructions that used the unit.
    pub uses: u64,
    /// Number of maximal consecutive runs of uses.
    pub runs: u64,
    /// Front-gate activity: `uses / total_instructions`.
    pub fga: f64,
    /// Back-gate activity: `runs / total_instructions`.
    pub bga: f64,
}

/// A finished profile — the contents of one of the paper's Tables 1–3.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Total executed instructions.
    pub total: u64,
    /// Stats per functional unit, in [`FunctionalUnit::ALL`] order.
    pub units: Vec<UnitStats>,
    /// Executed-count per mnemonic, most frequent first.
    pub per_mnemonic: Vec<(String, u64)>,
}

impl ProfileReport {
    /// Stats for one unit. Reports built via [`Profiler::report`] always
    /// carry all three units; a hand-built report missing one yields a
    /// zeroed record rather than a panic.
    #[must_use]
    pub fn unit(&self, unit: FunctionalUnit) -> UnitStats {
        self.units
            .iter()
            .copied()
            .find(|s| s.unit == unit)
            .unwrap_or(UnitStats {
                unit,
                uses: 0,
                runs: 0,
                fga: 0.0,
                bga: 0.0,
            })
    }
}

impl fmt::Display for ProfileReport {
    /// Renders in the layout of the paper's Tables 1–3.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<20} {:>12} {:>10} {:>10}", "", "Number", "fga", "bga")?;
        writeln!(f, "{:<20} {:>12}", "Total Instructions", self.total)?;
        for s in &self.units {
            writeln!(
                f,
                "{:<20} {:>12} {:>10.5} {:>10.5}",
                s.unit.table_label(),
                s.uses,
                s.fga,
                s.bga
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    fn add() -> Inst {
        Inst::Add {
            rd: Reg(8),
            rs: Reg(9),
            rt: Reg(10),
        }
    }

    fn nop() -> Inst {
        Inst::Nop
    }

    fn shift() -> Inst {
        Inst::Sll {
            rd: Reg(8),
            rt: Reg(9),
            shamt: 1,
        }
    }

    #[test]
    fn fga_counts_uses_per_instruction() {
        let mut p = Profiler::standard();
        for _ in 0..6 {
            p.record(&add());
        }
        for _ in 0..4 {
            p.record(&nop());
        }
        let r = p.report();
        let adder = r.unit(FunctionalUnit::Adder);
        assert_eq!(r.total, 10);
        assert_eq!(adder.uses, 6);
        assert!((adder.fga - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bga_counts_runs_not_uses() {
        // Pattern: AAA..AA. → 2 runs of adder use in 8 instructions.
        let mut p = Profiler::standard();
        for inst in [add(), add(), add(), nop(), nop(), add(), add(), nop()] {
            p.record(&inst);
        }
        let adder = p.report().unit(FunctionalUnit::Adder);
        assert_eq!(adder.uses, 5);
        assert_eq!(adder.runs, 2);
        assert!((adder.bga - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn all_sequential_uses_give_bga_one_over_n() {
        // The paper's sentence: "if all the uses of a block were
        // sequential, bga would be 1/total instructions".
        let mut p = Profiler::standard();
        for _ in 0..50 {
            p.record(&add());
        }
        let adder = p.report().unit(FunctionalUnit::Adder);
        assert_eq!(adder.runs, 1);
        assert!((adder.bga - 1.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_uses_make_bga_equal_fga() {
        let mut p = Profiler::standard();
        for _ in 0..25 {
            p.record(&add());
            p.record(&nop());
        }
        let adder = p.report().unit(FunctionalUnit::Adder);
        assert!((adder.bga - adder.fga).abs() < 1e-12);
    }

    #[test]
    fn units_tracked_independently() {
        let mut p = Profiler::standard();
        for inst in [add(), shift(), add(), shift()] {
            p.record(&inst);
        }
        let r = p.report();
        assert_eq!(r.unit(FunctionalUnit::Adder).runs, 2);
        assert_eq!(r.unit(FunctionalUnit::Shifter).runs, 2);
        assert_eq!(r.unit(FunctionalUnit::Multiplier).uses, 0);
    }

    #[test]
    fn per_mnemonic_sorted_by_frequency() {
        let mut p = Profiler::standard();
        for _ in 0..3 {
            p.record(&add());
        }
        p.record(&shift());
        let r = p.report();
        assert_eq!(r.per_mnemonic[0], ("add".to_string(), 3));
        assert_eq!(r.per_mnemonic[1], ("sll".to_string(), 1));
    }

    #[test]
    fn flush_metrics_reports_totals_and_extraction_counts() {
        use lowvolt_obs::MetricsRegistry;

        let mut p = Profiler::standard();
        for inst in [add(), add(), nop(), shift(), add()] {
            p.record(&inst);
        }
        let reg = MetricsRegistry::new();
        p.flush_metrics(&reg);
        assert_eq!(reg.counter(names::PROFILE_INSTRUCTIONS), 5);
        assert_eq!(reg.counter(names::PROFILE_UNIT_USES), 4);
        // Adder runs: AA.-A → 2; shifter runs: 1.
        assert_eq!(reg.counter(names::PROFILE_UNIT_RUNS), 3);
        assert_eq!(reg.counter(names::PROFILE_EXTRACTIONS_FGA), 3);
        assert_eq!(reg.counter(names::PROFILE_EXTRACTIONS_BGA), 3);

        // Disabled recorders stay untouched (and cost no flush work).
        p.flush_metrics(lowvolt_obs::noop());
        assert_eq!(reg.counter(names::PROFILE_INSTRUCTIONS), 5);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = Profiler::standard().report();
        assert_eq!(r.total, 0);
        assert_eq!(r.unit(FunctionalUnit::Adder).fga, 0.0);
    }

    #[test]
    fn display_matches_table_layout() {
        let mut p = Profiler::standard();
        p.record(&add());
        let text = p.report().to_string();
        assert!(text.contains("Total Instructions"));
        assert!(text.contains("Additions"));
        assert!(text.contains("Shifts"));
        assert!(text.contains("Multiplications"));
    }
}

#[cfg(test)]
mod hysteresis_tests {
    use super::*;
    use crate::inst::{Inst, Reg};

    fn add() -> Inst {
        Inst::Add {
            rd: Reg(8),
            rs: Reg(9),
            rt: Reg(10),
        }
    }

    #[test]
    fn window_merges_nearby_uses_into_one_run() {
        // Pattern A..A..A (gap of 2): strict counting sees 3 runs,
        // window 2 sees one.
        let pattern = [
            add(),
            Inst::Nop,
            Inst::Nop,
            add(),
            Inst::Nop,
            Inst::Nop,
            add(),
        ];
        let mut strict = Profiler::standard();
        let mut relaxed = Profiler::standard().with_hysteresis(3);
        for inst in &pattern {
            strict.record(inst);
            relaxed.record(inst);
        }
        assert_eq!(strict.report().unit(FunctionalUnit::Adder).runs, 3);
        assert_eq!(relaxed.report().unit(FunctionalUnit::Adder).runs, 1);
    }

    #[test]
    fn window_one_matches_strict_adjacency() {
        let pattern = [add(), add(), Inst::Nop, add()];
        let mut a = Profiler::standard();
        let mut b = Profiler::standard().with_hysteresis(1);
        for inst in &pattern {
            a.record(inst);
            b.record(inst);
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    #[should_panic(expected = "hysteresis window")]
    fn zero_window_rejected() {
        let _ = Profiler::standard().with_hysteresis(0);
    }
}
