//! Functional-block model: which datapath block each instruction uses.
//!
//! The paper (§5.3): "The first step in measuring functional block
//! activity is to determine which assembly language instructions use which
//! functional blocks. This requires that certain assumptions about the
//! implementation be made. For instance, the ALU adder is generally used
//! to compute load and store addresses and for comparison instructions. In
//! our implementation, all add, compare, load, and store instructions use
//! the ALU adder."
//!
//! [`BlockMap::standard`] encodes exactly that assumption; alternative
//! implementations can be expressed by building a custom map.

use std::collections::HashMap;

use crate::inst::Inst;

/// A datapath functional block whose standby state can be controlled
/// independently (the paper's model of operation: "functional units, or
/// blocks, share a common V_T").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionalUnit {
    /// The ALU adder (also used for compares and load/store addresses).
    Adder,
    /// The barrel shifter.
    Shifter,
    /// The multiply/divide unit.
    Multiplier,
}

impl FunctionalUnit {
    /// All units in the order the paper's tables list them.
    pub const ALL: [FunctionalUnit; 3] = [
        FunctionalUnit::Adder,
        FunctionalUnit::Shifter,
        FunctionalUnit::Multiplier,
    ];

    /// Table row label used in the paper ("Additions", "Shifts",
    /// "Multiplications").
    #[must_use]
    pub fn table_label(self) -> &'static str {
        match self {
            FunctionalUnit::Adder => "Additions",
            FunctionalUnit::Shifter => "Shifts",
            FunctionalUnit::Multiplier => "Multiplications",
        }
    }

    /// Short block name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FunctionalUnit::Adder => "adder",
            FunctionalUnit::Shifter => "shifter",
            FunctionalUnit::Multiplier => "multiplier",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            FunctionalUnit::Adder => 0,
            FunctionalUnit::Shifter => 1,
            FunctionalUnit::Multiplier => 2,
        }
    }
}

impl std::fmt::Display for FunctionalUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A compact set of functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnitSet(u8);

impl UnitSet {
    /// The empty set.
    pub const EMPTY: UnitSet = UnitSet(0);

    /// A singleton set.
    #[must_use]
    pub fn of(unit: FunctionalUnit) -> UnitSet {
        UnitSet(1 << unit.index())
    }

    /// Union with another set.
    #[must_use]
    pub fn with(self, unit: FunctionalUnit) -> UnitSet {
        UnitSet(self.0 | 1 << unit.index())
    }

    /// Membership test.
    #[must_use]
    pub fn contains(self, unit: FunctionalUnit) -> bool {
        self.0 & (1 << unit.index()) != 0
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the contained units.
    pub fn iter(self) -> impl Iterator<Item = FunctionalUnit> {
        FunctionalUnit::ALL
            .into_iter()
            .filter(move |u| self.contains(*u))
    }
}

/// Maps instruction mnemonics to the functional units they exercise.
#[derive(Debug, Clone)]
pub struct BlockMap {
    by_mnemonic: HashMap<&'static str, UnitSet>,
}

impl BlockMap {
    /// The paper's standard mapping: adds, subtracts, compares, branches
    /// (comparison), loads and stores (address generation) use the adder;
    /// shift instructions use the shifter; multiply/divide use the
    /// multiplier; pure logic ops, moves from HI/LO, jumps and syscalls
    /// use none of the profiled blocks.
    #[must_use]
    pub fn standard() -> BlockMap {
        let adder = UnitSet::of(FunctionalUnit::Adder);
        let shifter = UnitSet::of(FunctionalUnit::Shifter);
        let multiplier = UnitSet::of(FunctionalUnit::Multiplier);
        let mut by_mnemonic = HashMap::new();
        for m in [
            "add", "sub", "addi", "slt", "sltu", "slti", "sltiu", "lw", "sw", "lb", "lbu", "sb",
            "beq", "bne", "blez", "bgtz", "bltz", "bgez",
        ] {
            by_mnemonic.insert(m, adder);
        }
        for m in ["sll", "srl", "sra", "sllv", "srlv", "srav"] {
            by_mnemonic.insert(m, shifter);
        }
        for m in ["mult", "multu", "div", "divu"] {
            by_mnemonic.insert(m, multiplier);
        }
        BlockMap { by_mnemonic }
    }

    /// An empty map to extend with [`BlockMap::map`].
    #[must_use]
    pub fn empty() -> BlockMap {
        BlockMap {
            by_mnemonic: HashMap::new(),
        }
    }

    /// Adds (or extends) a mnemonic's unit set — how "a different
    /// implementation might use the ALU adder for more or fewer
    /// instructions" is expressed.
    #[must_use]
    pub fn map(mut self, mnemonic: &'static str, unit: FunctionalUnit) -> BlockMap {
        let entry = self.by_mnemonic.entry(mnemonic).or_insert(UnitSet::EMPTY);
        *entry = entry.with(unit);
        self
    }

    /// The units an instruction uses.
    #[must_use]
    pub fn units_for(&self, inst: &Inst) -> UnitSet {
        self.by_mnemonic
            .get(inst.mnemonic())
            .copied()
            .unwrap_or(UnitSet::EMPTY)
    }
}

impl Default for BlockMap {
    fn default() -> Self {
        BlockMap::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    #[test]
    fn standard_mapping_follows_the_paper() {
        let m = BlockMap::standard();
        let r = |i: Inst| m.units_for(&i);
        let adder = UnitSet::of(FunctionalUnit::Adder);
        // "all add, compare, load, and store instructions use the ALU adder"
        assert_eq!(
            r(Inst::Add {
                rd: Reg(8),
                rs: Reg(9),
                rt: Reg(10)
            }),
            adder
        );
        assert_eq!(
            r(Inst::Lw {
                rt: Reg(8),
                base: Reg(29),
                offset: 0
            }),
            adder
        );
        assert_eq!(
            r(Inst::Sw {
                rt: Reg(8),
                base: Reg(29),
                offset: 0
            }),
            adder
        );
        assert_eq!(
            r(Inst::Slt {
                rd: Reg(8),
                rs: Reg(9),
                rt: Reg(10)
            }),
            adder
        );
        assert_eq!(
            r(Inst::Beq {
                rs: Reg(8),
                rt: Reg(9),
                target: 0
            }),
            adder
        );
        assert_eq!(
            r(Inst::Sll {
                rd: Reg(8),
                rt: Reg(9),
                shamt: 2
            }),
            UnitSet::of(FunctionalUnit::Shifter)
        );
        assert_eq!(
            r(Inst::Mult {
                rs: Reg(8),
                rt: Reg(9)
            }),
            UnitSet::of(FunctionalUnit::Multiplier)
        );
        // Logic, jumps and syscalls touch none of the profiled blocks.
        assert!(r(Inst::Or {
            rd: Reg(8),
            rs: Reg(9),
            rt: Reg(10)
        })
        .is_empty());
        assert!(r(Inst::J { target: 0 }).is_empty());
        assert!(r(Inst::Syscall).is_empty());
        assert!(r(Inst::Nop).is_empty());
    }

    #[test]
    fn unit_set_operations() {
        let s = UnitSet::of(FunctionalUnit::Adder).with(FunctionalUnit::Multiplier);
        assert!(s.contains(FunctionalUnit::Adder));
        assert!(!s.contains(FunctionalUnit::Shifter));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![FunctionalUnit::Adder, FunctionalUnit::Multiplier]
        );
        assert!(UnitSet::EMPTY.is_empty());
    }

    #[test]
    fn custom_map_extends() {
        // An implementation where logical ops also occupy the adder block.
        let m = BlockMap::standard().map("or", FunctionalUnit::Adder);
        let or = Inst::Or {
            rd: Reg(8),
            rs: Reg(9),
            rt: Reg(10),
        };
        assert!(m.units_for(&or).contains(FunctionalUnit::Adder));
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(FunctionalUnit::Adder.table_label(), "Additions");
        assert_eq!(FunctionalUnit::Shifter.table_label(), "Shifts");
        assert_eq!(FunctionalUnit::Multiplier.table_label(), "Multiplications");
    }
}
