//! Pixie-style basic-block profiling.
//!
//! The paper's §5.3: "For microprocessor applications, various code
//! profiling packages exist … generally designed to pinpoint code
//! inefficiencies by noting the number of executions of subroutines or
//! modules". Pixie worked by counting *basic-block* executions; this
//! module reproduces that layer: it partitions a program's text segment
//! into basic blocks, counts executions as the CPU runs, and reports the
//! hot blocks — the level at which shutdown regions and clock-gating
//! domains get chosen.

use std::collections::BTreeSet;

use crate::asm::Program;
use crate::inst::Inst;

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the block is empty (never true for discovered blocks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Whether an instruction ends a basic block, and where it can go.
fn control_targets(inst: &Inst) -> Option<Vec<u32>> {
    match *inst {
        Inst::Beq { target, .. }
        | Inst::Bne { target, .. }
        | Inst::Blez { target, .. }
        | Inst::Bgtz { target, .. }
        | Inst::Bltz { target, .. }
        | Inst::Bgez { target, .. } => Some(vec![target]),
        Inst::J { target } | Inst::Jal { target } => Some(vec![target]),
        Inst::Jr { .. } | Inst::Jalr { .. } | Inst::Syscall => Some(vec![]),
        _ => None,
    }
}

/// The static basic-block partition of a program plus execution counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    blocks: Vec<BasicBlock>,
    counts: Vec<u64>,
    /// Block index covering each instruction.
    block_of: Vec<u32>,
    last_block: Option<u32>,
}

impl BlockProfile {
    /// Discovers the basic blocks of a program.
    ///
    /// Leaders are: the entry point, every branch/jump target, and every
    /// instruction following a control transfer (including syscalls,
    /// whose exit service never returns but whose other services do).
    #[must_use]
    pub fn new(program: &Program) -> BlockProfile {
        let len = program.insts.len() as u32;
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(program.entry.min(len));
        leaders.insert(0);
        for (i, inst) in program.insts.iter().enumerate() {
            if let Some(targets) = control_targets(inst) {
                for t in targets {
                    leaders.insert(t.min(len));
                }
                leaders.insert(i as u32 + 1);
            }
        }
        // Indirect-jump targets (jr through jump tables / returns) are
        // any instruction after a jal: conservatively, every text label
        // is also a leader.
        for &t in program.text_labels.values() {
            leaders.insert(t.min(len));
        }
        leaders.insert(len);
        let bounds: Vec<u32> = leaders.into_iter().collect();
        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; len as usize];
        for w in bounds.windows(2) {
            let (start, end) = (w[0], w[1]);
            if start == end {
                continue;
            }
            let id = blocks.len() as u32;
            blocks.push(BasicBlock { start, end });
            for i in start..end {
                block_of[i as usize] = id;
            }
        }
        let counts = vec![0; blocks.len()];
        BlockProfile {
            blocks,
            counts,
            block_of,
            last_block: None,
        }
    }

    /// Records that the instruction at `pc` executed. Call once per step
    /// with the pre-execution PC; block entries are detected from block
    /// membership changes and block starts.
    pub fn record_pc(&mut self, pc: u32) {
        let Some(&block) = self.block_of.get(pc as usize) else {
            return;
        };
        let entered = match self.last_block {
            Some(prev) => prev != block || pc == self.blocks[block as usize].start,
            None => true,
        };
        // Re-entering the same block at its start (a self-loop) counts.
        if entered && pc == self.blocks[block as usize].start {
            self.counts[block as usize] += 1;
        } else if entered {
            // Entered mid-block (only possible via an indirect jump to a
            // non-leader, which our leader set precludes; count anyway to
            // stay conservative).
            self.counts[block as usize] += 1;
        }
        self.last_block = Some(block);
    }

    /// The discovered blocks.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Execution count of block `i`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total dynamic instructions attributed to counted block entries.
    #[must_use]
    pub fn dynamic_instructions(&self) -> u64 {
        self.blocks
            .iter()
            .zip(&self.counts)
            .map(|(b, &c)| u64::from(b.len()) * c)
            .sum()
    }

    /// Flushes `profile.blocks` — the number of distinct basic blocks
    /// that executed at least once — into a metrics recorder. Call once
    /// per finished profile; [`BlockProfile::record_pc`] stays
    /// recorder-free.
    pub fn flush_metrics(&self, rec: &dyn lowvolt_obs::Recorder) {
        if !rec.is_enabled() {
            return;
        }
        let observed = self.counts.iter().filter(|&&c| c > 0).count() as u64;
        rec.add(lowvolt_obs::names::PROFILE_BLOCKS, observed);
    }

    /// The hottest blocks by dynamic instruction count, descending.
    #[must_use]
    pub fn hottest(&self, top: usize) -> Vec<(BasicBlock, u64)> {
        let mut v: Vec<(BasicBlock, u64)> = self
            .blocks
            .iter()
            .zip(&self.counts)
            .map(|(b, &c)| (*b, u64::from(b.len()) * c))
            .collect();
        v.sort_by_key(|&(_, dynamic)| std::cmp::Reverse(dynamic));
        v.truncate(top);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::Cpu;

    fn looped_program() -> Program {
        assemble(
            r#"
            .text
            main:
                li   $t0, 10
            loop:
                addi $t0, $t0, -1
                bgtz $t0, loop
                li   $v0, 10
                syscall
        "#,
        )
        .expect("assembles")
    }

    /// Drives the CPU while feeding the block profile.
    fn run_with_blocks(program: Program) -> BlockProfile {
        let mut profile = BlockProfile::new(&program);
        let mut cpu = Cpu::new(program);
        while !cpu.halted() {
            profile.record_pc(cpu.pc());
            cpu.step().expect("test program runs");
        }
        profile
    }

    #[test]
    fn flush_metrics_counts_only_executed_blocks() {
        use lowvolt_obs::{names, MetricsRegistry};

        let profile = run_with_blocks(looped_program());
        let reg = MetricsRegistry::new();
        profile.flush_metrics(&reg);
        let observed = profile.counts.iter().filter(|&&c| c > 0).count() as u64;
        assert!(observed > 0);
        assert_eq!(reg.counter(names::PROFILE_BLOCKS), observed);

        // An un-run profile observes zero blocks.
        let cold = BlockProfile::new(&looped_program());
        let reg2 = MetricsRegistry::new();
        cold.flush_metrics(&reg2);
        assert_eq!(reg2.counter(names::PROFILE_BLOCKS), 0);
    }

    #[test]
    fn discovers_loop_structure() {
        let program = looped_program();
        let profile = BlockProfile::new(&program);
        // Blocks: [main prologue], [loop body], [exit sequence].
        assert_eq!(profile.blocks().len(), 3);
        assert_eq!(profile.blocks()[1].len(), 2, "loop body: addi + bgtz");
    }

    #[test]
    fn counts_loop_iterations() {
        let profile = run_with_blocks(looped_program());
        assert_eq!(profile.count(0), 1, "prologue once");
        assert_eq!(profile.count(1), 10, "loop body ten times");
        assert_eq!(profile.count(2), 1, "exit once");
    }

    #[test]
    fn dynamic_instruction_attribution_matches_cpu() {
        let program = looped_program();
        let profile = run_with_blocks(program.clone());
        let mut cpu = Cpu::new(program);
        cpu.run(10_000).expect("runs");
        assert_eq!(profile.dynamic_instructions(), cpu.steps());
    }

    #[test]
    fn hottest_block_is_the_loop() {
        let profile = run_with_blocks(looped_program());
        let hottest = profile.hottest(1);
        assert_eq!(hottest.len(), 1);
        assert_eq!(hottest[0].1, 20, "10 iterations x 2 instructions");
    }

    #[test]
    fn call_heavy_program_blocks() {
        let program = assemble(
            r#"
            .text
            main:
                li   $s0, 5
            call_loop:
                jal  helper
                addi $s0, $s0, -1
                bgtz $s0, call_loop
                li   $v0, 10
                syscall
            helper:
                add  $t0, $zero, $zero
                jr   $ra
        "#,
        )
        .expect("assembles");
        let profile = run_with_blocks(program);
        // The helper body must have been entered five times.
        let helper_count = profile
            .blocks()
            .iter()
            .zip(0..)
            .find(|(b, _)| b.len() == 2 && b.start >= 5)
            .map(|(_, i)| profile.count(i))
            .expect("helper block exists");
        assert_eq!(helper_count, 5);
    }

    #[test]
    fn empty_block_helpers() {
        let b = BasicBlock { start: 3, end: 3 };
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
