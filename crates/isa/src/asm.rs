//! Two-pass assembler.
//!
//! Supports the usual comfort layer of a MIPS-style assembler: `.text` /
//! `.data` sections, labels, data directives (`.word`, `.byte`, `.ascii`,
//! `.asciiz`, `.space`, `.align`), character/hex/decimal immediates, and a
//! set of pseudo-instructions (`li`, `la`, `move`, `mul`, `b`, `beqz`,
//! `bnez`, `blt`, `bgt`, `ble`, `bge`, `not`, `neg`) that expand to fixed
//! instruction sequences so that pass-one sizing is exact.

use std::collections::HashMap;

use crate::error::AssembleError;
use crate::inst::{Inst, Reg};
use crate::mem::DATA_BASE;

/// An assembled program: decoded text segment, initialised data segment,
/// and the resolved symbol tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The text segment: pre-decoded instructions.
    pub insts: Vec<Inst>,
    /// The initialised data segment, loaded at
    /// [`DATA_BASE`](crate::mem::DATA_BASE).
    pub data: Vec<u8>,
    /// Text labels → instruction index.
    pub text_labels: HashMap<String, u32>,
    /// Data labels → absolute byte address.
    pub data_labels: HashMap<String, u32>,
    /// Entry instruction index (the `main` label if present, else 0).
    pub entry: u32,
}

impl Program {
    /// Renders a disassembly listing: one line per instruction with its
    /// index, preceded by any labels bound to that index. Branch targets
    /// appear as `@index`, so the listing cross-references itself.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut labels_at: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &idx) in &self.text_labels {
            labels_at.entry(idx).or_default().push(name);
        }
        for names in labels_at.values_mut() {
            names.sort_unstable();
        }
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(names) = labels_at.get(&(i as u32)) {
                for name in names {
                    out.push_str(&format!("{name}:\n"));
                }
            }
            out.push_str(&format!("{i:6}  {inst}\n"));
        }
        if !self.data.is_empty() {
            out.push_str(&format!(
                "\n.data  {} bytes at {:#010x}\n",
                self.data.len(),
                crate::mem::DATA_BASE
            ));
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Debug, Clone)]
struct Statement {
    line: usize,
    mnemonic: String,
    operands: Vec<String>,
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AssembleError`] naming the offending line for syntax
/// errors, unknown mnemonics or registers, out-of-range immediates, and
/// unresolved or duplicate labels.
pub fn assemble(source: &str) -> Result<Program, AssembleError> {
    let mut section = Section::Text;
    let mut text_stmts: Vec<Statement> = Vec::new();
    let mut text_labels: HashMap<String, u32> = HashMap::new();
    let mut data_labels: HashMap<String, u32> = HashMap::new();
    let mut data_items: Vec<(usize, String, Vec<String>)> = Vec::new(); // (line, directive, args)
    let mut inst_count: u32 = 0;
    let mut data_offset: u32 = 0;

    // ---- pass 1: record labels and sizes ----
    for (line_no, raw) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let mut line = raw;
        if let Some(i) = line.find('#') {
            line = &line[..i];
        }
        let mut rest = line.trim();
        // Peel leading labels (possibly several on one line).
        while let Some(colon) = find_label_colon(rest) {
            let name = rest[..colon].trim();
            if !is_valid_label(name) {
                return Err(AssembleError::new(
                    line_no,
                    format!("invalid label `{name}`"),
                ));
            }
            let dup = match section {
                Section::Text => text_labels.insert(name.to_string(), inst_count).is_some(),
                Section::Data => {
                    // Labels on data bind to the next item's (aligned)
                    // offset; alignment for .word happens at emit, so
                    // align eagerly here for determinism.
                    data_labels
                        .insert(name.to_string(), DATA_BASE + data_offset)
                        .is_some()
                }
            } || (text_labels.contains_key(name) && data_labels.contains_key(name));
            if dup {
                return Err(AssembleError::new(
                    line_no,
                    format!("duplicate label `{name}`"),
                ));
            }
            rest = rest[colon + 1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            let (name, args_str) = split_first_word(directive);
            match name {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "globl" | "global" | "ent" | "end" => {} // accepted, ignored
                "word" | "byte" | "half" | "ascii" | "asciiz" | "space" | "align" => {
                    if section != Section::Data {
                        return Err(AssembleError::new(
                            line_no,
                            format!(".{name} is only valid in the .data section"),
                        ));
                    }
                    let args = split_data_args(args_str);
                    let size = data_directive_size(name, &args, data_offset)
                        .map_err(|m| AssembleError::new(line_no, m))?;
                    // .word aligns to 4 first; fix the label we just bound
                    // if alignment moved the offset.
                    let aligned = data_directive_aligned_start(name, data_offset);
                    if aligned != data_offset {
                        for v in data_labels.values_mut() {
                            if *v == DATA_BASE + data_offset {
                                *v = DATA_BASE + aligned;
                            }
                        }
                    }
                    data_offset = aligned + size;
                    data_items.push((line_no, name.to_string(), args));
                }
                other => {
                    return Err(AssembleError::new(
                        line_no,
                        format!("unknown directive .{other}"),
                    ));
                }
            }
            continue;
        }
        if section != Section::Text {
            return Err(AssembleError::new(
                line_no,
                "instructions are only valid in the .text section",
            ));
        }
        let stmt = parse_statement(line_no, rest)?;
        inst_count += statement_size(&stmt)?;
        text_stmts.push(stmt);
    }

    // ---- pass 2: emit ----
    let mut data: Vec<u8> = Vec::with_capacity(data_offset as usize);
    for (line_no, name, args) in &data_items {
        emit_data(name, args, &mut data, &text_labels, &data_labels)
            .map_err(|m| AssembleError::new(*line_no, m))?;
    }
    let symbols = SymbolTables {
        text: &text_labels,
        data: &data_labels,
    };
    let mut insts: Vec<Inst> = Vec::with_capacity(inst_count as usize);
    for stmt in &text_stmts {
        emit_statement(stmt, &symbols, &mut insts)?;
    }
    debug_assert_eq!(
        insts.len() as u32,
        inst_count,
        "pass-1 sizing must be exact"
    );
    let entry = text_labels.get("main").copied().unwrap_or(0);
    Ok(Program {
        insts,
        data,
        text_labels,
        data_labels,
        entry,
    })
}

struct SymbolTables<'a> {
    text: &'a HashMap<String, u32>,
    data: &'a HashMap<String, u32>,
}

impl SymbolTables<'_> {
    fn text_target(&self, label: &str, line: usize) -> Result<u32, AssembleError> {
        self.text
            .get(label)
            .copied()
            .ok_or_else(|| AssembleError::new(line, format!("unresolved text label `{label}`")))
    }

    /// Value of a label for address-forming instructions: data labels give
    /// their absolute address, text labels their instruction index (useful
    /// for jump tables).
    fn value(&self, label: &str, line: usize) -> Result<u32, AssembleError> {
        self.data
            .get(label)
            .or_else(|| self.text.get(label))
            .copied()
            .ok_or_else(|| AssembleError::new(line, format!("unresolved label `{label}`")))
    }
}

fn find_label_colon(s: &str) -> Option<usize> {
    // A label colon must come before any whitespace-separated operand and
    // must not be inside a string literal.
    let first_quote = s.find('"').unwrap_or(usize::MAX);
    let colon = s.find(':')?;
    (colon < first_quote).then_some(colon)
}

fn is_valid_label(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_first_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

/// Splits data-directive arguments on commas, respecting string literals.
fn split_data_args(s: &str) -> Vec<String> {
    let mut args = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            current.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            current.push(c);
            in_string = true;
        } else if c == ',' {
            if !current.trim().is_empty() {
                args.push(current.trim().to_string());
            }
            current.clear();
        } else {
            current.push(c);
        }
    }
    if !current.trim().is_empty() {
        args.push(current.trim().to_string());
    }
    args
}

fn data_directive_aligned_start(name: &str, offset: u32) -> u32 {
    match name {
        "word" => (offset + 3) & !3,
        "half" => (offset + 1) & !1,
        _ => offset,
    }
}

fn data_directive_size(name: &str, args: &[String], _offset: u32) -> Result<u32, String> {
    match name {
        "word" => Ok(4 * args.len() as u32),
        "half" => Ok(2 * args.len() as u32),
        "byte" => Ok(args.len() as u32),
        "ascii" | "asciiz" => {
            let mut total = 0;
            for a in args {
                let s = parse_string_literal(a)?;
                total += s.len() as u32 + u32::from(name == "asciiz");
            }
            Ok(total)
        }
        "space" => {
            let n = args
                .first()
                .ok_or_else(|| ".space needs a size".to_string())?;
            parse_imm(n).map_err(|e| e.to_string()).and_then(|v| {
                u32::try_from(v).map_err(|_| ".space size must be non-negative".into())
            })
        }
        "align" => {
            // Handled at emit time; sizing conservatively assumes the
            // current offset is already aligned (we re-align at emit).
            let n = args
                .first()
                .ok_or_else(|| ".align needs an exponent".to_string())?;
            let exp = parse_imm(n).map_err(|e| e.to_string())?;
            if !(0..=12).contains(&exp) {
                return Err(".align exponent must be in 0..=12".into());
            }
            // Pass 1 cannot know padding without tracking offset — but we
            // do have it: compute from _offset.
            let align = 1u32 << exp;
            Ok(_offset.div_ceil(align) * align - _offset)
        }
        _ => unreachable!("caller filters directive names"),
    }
}

fn emit_data(
    name: &str,
    args: &[String],
    data: &mut Vec<u8>,
    text_labels: &HashMap<String, u32>,
    data_labels: &HashMap<String, u32>,
) -> Result<(), String> {
    let lookup = |label: &str| -> Option<i64> {
        data_labels
            .get(label)
            .or_else(|| text_labels.get(label))
            .map(|&v| i64::from(v))
    };
    match name {
        "word" => {
            while !data.len().is_multiple_of(4) {
                data.push(0);
            }
            for a in args {
                let v = match parse_imm(a) {
                    Ok(v) => v,
                    Err(_) => lookup(a).ok_or_else(|| format!("unresolved word value `{a}`"))?,
                };
                data.extend_from_slice(&(v as u32).to_le_bytes());
            }
        }
        "half" => {
            while !data.len().is_multiple_of(2) {
                data.push(0);
            }
            for a in args {
                let v = parse_imm(a)?;
                data.extend_from_slice(&(v as u16).to_le_bytes());
            }
        }
        "byte" => {
            for a in args {
                let v = parse_imm(a)?;
                data.push(v as u8);
            }
        }
        "ascii" | "asciiz" => {
            for a in args {
                let s = parse_string_literal(a)?;
                data.extend_from_slice(&s);
                if name == "asciiz" {
                    data.push(0);
                }
            }
        }
        "space" => {
            let n = parse_imm(&args[0])?;
            data.extend(std::iter::repeat_n(0u8, n as usize));
        }
        "align" => {
            let exp = parse_imm(&args[0])?;
            let align = 1usize << exp;
            while !data.len().is_multiple_of(align) {
                data.push(0);
            }
        }
        _ => unreachable!(),
    }
    Ok(())
}

fn parse_string_literal(s: &str) -> Result<Vec<u8>, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected string literal, got `{s}`"))?;
    let mut out = Vec::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => return Err(format!("unknown escape \\{other:?}")),
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

fn parse_imm(s: &str) -> Result<i64, String> {
    let s = s.trim();
    if let Some(c) = s.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
        let c = match c {
            "\\n" => '\n',
            "\\t" => '\t',
            "\\0" => '\0',
            "\\\\" => '\\',
            single => {
                let mut it = single.chars();
                let ch = it.next().ok_or("empty char literal")?;
                if it.next().is_some() {
                    return Err(format!("invalid char literal '{single}'"));
                }
                ch
            }
        };
        return Ok(c as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(|_| format!("bad hex literal `{s}`"))?
    } else {
        body.parse::<i64>()
            .map_err(|_| format!("bad integer `{s}`"))?
    };
    Ok(if neg { -v } else { v })
}

fn parse_statement(line: usize, text: &str) -> Result<Statement, AssembleError> {
    let (mnemonic, rest) = split_first_word(text);
    let operands: Vec<String> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if mnemonic.is_empty() {
        return Err(AssembleError::new(line, "empty statement"));
    }
    Ok(Statement {
        line,
        mnemonic: mnemonic.to_ascii_lowercase(),
        operands,
    })
}

/// How many machine instructions a statement expands to.
fn statement_size(stmt: &Statement) -> Result<u32, AssembleError> {
    Ok(match stmt.mnemonic.as_str() {
        "li" => {
            let imm = parse_imm(stmt.operands.get(1).map_or("", String::as_str))
                .map_err(|m| AssembleError::new(stmt.line, m))?;
            li_size(imm)
        }
        "la" => 2,
        "mul" => 2,
        "blt" | "bgt" | "ble" | "bge" => 2,
        "lw" | "sw" | "lb" | "lbu" | "sb" => {
            // Label-addressed forms expand to la + access.
            let mem = stmt.operands.get(1).map_or("", String::as_str);
            if mem.contains('(') || mem.starts_with('$') {
                1
            } else {
                3
            }
        }
        _ => 1,
    })
}

fn li_size(imm: i64) -> u32 {
    let single =
        i16::try_from(imm).is_ok() || (0..=0xffff).contains(&imm) || imm as u32 & 0xffff == 0;
    if single {
        1
    } else {
        2
    }
}

struct Operands<'a> {
    line: usize,
    ops: &'a [String],
}

impl<'a> Operands<'a> {
    fn want(&self, n: usize) -> Result<(), AssembleError> {
        if self.ops.len() == n {
            Ok(())
        } else {
            Err(AssembleError::new(
                self.line,
                format!("expected {n} operands, got {}", self.ops.len()),
            ))
        }
    }

    fn reg(&self, i: usize) -> Result<Reg, AssembleError> {
        let s = self
            .ops
            .get(i)
            .ok_or_else(|| AssembleError::new(self.line, format!("missing operand {i}")))?;
        let name = s.strip_prefix('$').ok_or_else(|| {
            AssembleError::new(self.line, format!("expected register, got `{s}`"))
        })?;
        Reg::by_name(name)
            .ok_or_else(|| AssembleError::new(self.line, format!("unknown register `{s}`")))
    }

    fn imm(&self, i: usize) -> Result<i64, AssembleError> {
        let s = self
            .ops
            .get(i)
            .ok_or_else(|| AssembleError::new(self.line, format!("missing operand {i}")))?;
        parse_imm(s).map_err(|m| AssembleError::new(self.line, m))
    }

    fn imm16(&self, i: usize) -> Result<i16, AssembleError> {
        let v = self.imm(i)?;
        i16::try_from(v)
            .map_err(|_| AssembleError::new(self.line, format!("immediate {v} out of i16 range")))
    }

    fn uimm16(&self, i: usize) -> Result<u16, AssembleError> {
        let v = self.imm(i)?;
        u16::try_from(v)
            .map_err(|_| AssembleError::new(self.line, format!("immediate {v} out of u16 range")))
    }

    fn shamt(&self, i: usize) -> Result<u8, AssembleError> {
        let v = self.imm(i)?;
        if (0..32).contains(&v) {
            Ok(v as u8)
        } else {
            Err(AssembleError::new(
                self.line,
                format!("shift amount {v} out of 0..32"),
            ))
        }
    }

    fn label(&self, i: usize) -> Result<&'a str, AssembleError> {
        self.ops
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| AssembleError::new(self.line, format!("missing operand {i}")))
    }

    /// Parses `offset($base)` / `($base)` memory operands.
    fn mem(&self, i: usize) -> Result<(Reg, i16), AssembleError> {
        let s = self
            .ops
            .get(i)
            .ok_or_else(|| AssembleError::new(self.line, format!("missing operand {i}")))?;
        let open = s.find('(').ok_or_else(|| {
            AssembleError::new(self.line, format!("expected mem operand, got `{s}`"))
        })?;
        let close = s
            .rfind(')')
            .ok_or_else(|| AssembleError::new(self.line, "unterminated mem operand"))?;
        let offset_str = s[..open].trim();
        let offset = if offset_str.is_empty() {
            0
        } else {
            let v = parse_imm(offset_str).map_err(|m| AssembleError::new(self.line, m))?;
            i16::try_from(v).map_err(|_| {
                AssembleError::new(self.line, format!("offset {v} out of i16 range"))
            })?
        };
        let reg_str = s[open + 1..close].trim();
        let name = reg_str.strip_prefix('$').ok_or_else(|| {
            AssembleError::new(
                self.line,
                format!("expected base register, got `{reg_str}`"),
            )
        })?;
        let base = Reg::by_name(name).ok_or_else(|| {
            AssembleError::new(self.line, format!("unknown register `{reg_str}`"))
        })?;
        Ok((base, offset))
    }
}

#[allow(clippy::too_many_lines)]
fn emit_statement(
    stmt: &Statement,
    symbols: &SymbolTables<'_>,
    out: &mut Vec<Inst>,
) -> Result<(), AssembleError> {
    let o = Operands {
        line: stmt.line,
        ops: &stmt.operands,
    };
    let line = stmt.line;
    match stmt.mnemonic.as_str() {
        // ---- three-register ALU ----
        m @ ("add" | "addu" | "sub" | "subu" | "and" | "or" | "xor" | "nor" | "slt" | "sltu") => {
            o.want(3)?;
            let (rd, rs, rt) = (o.reg(0)?, o.reg(1)?, o.reg(2)?);
            out.push(match m {
                "add" | "addu" => Inst::Add { rd, rs, rt },
                "sub" | "subu" => Inst::Sub { rd, rs, rt },
                "and" => Inst::And { rd, rs, rt },
                "or" => Inst::Or { rd, rs, rt },
                "xor" => Inst::Xor { rd, rs, rt },
                "nor" => Inst::Nor { rd, rs, rt },
                "slt" => Inst::Slt { rd, rs, rt },
                _ => Inst::Sltu { rd, rs, rt },
            });
        }
        m @ ("sllv" | "srlv" | "srav") => {
            o.want(3)?;
            let (rd, rt, rs) = (o.reg(0)?, o.reg(1)?, o.reg(2)?);
            out.push(match m {
                "sllv" => Inst::Sllv { rd, rt, rs },
                "srlv" => Inst::Srlv { rd, rt, rs },
                _ => Inst::Srav { rd, rt, rs },
            });
        }
        m @ ("sll" | "srl" | "sra") => {
            o.want(3)?;
            let (rd, rt, shamt) = (o.reg(0)?, o.reg(1)?, o.shamt(2)?);
            out.push(match m {
                "sll" => Inst::Sll { rd, rt, shamt },
                "srl" => Inst::Srl { rd, rt, shamt },
                _ => Inst::Sra { rd, rt, shamt },
            });
        }
        m @ ("mult" | "multu" | "div" | "divu") => {
            o.want(2)?;
            let (rs, rt) = (o.reg(0)?, o.reg(1)?);
            out.push(match m {
                "mult" => Inst::Mult { rs, rt },
                "multu" => Inst::Multu { rs, rt },
                "div" => Inst::Div { rs, rt },
                _ => Inst::Divu { rs, rt },
            });
        }
        "mfhi" => {
            o.want(1)?;
            out.push(Inst::Mfhi { rd: o.reg(0)? });
        }
        "mflo" => {
            o.want(1)?;
            out.push(Inst::Mflo { rd: o.reg(0)? });
        }
        // ---- immediates ----
        m @ ("addi" | "addiu" | "slti" | "sltiu") => {
            o.want(3)?;
            let (rt, rs, imm) = (o.reg(0)?, o.reg(1)?, o.imm16(2)?);
            out.push(match m {
                "addi" | "addiu" => Inst::Addi { rt, rs, imm },
                "slti" => Inst::Slti { rt, rs, imm },
                _ => Inst::Sltiu { rt, rs, imm },
            });
        }
        m @ ("andi" | "ori" | "xori") => {
            o.want(3)?;
            let (rt, rs, imm) = (o.reg(0)?, o.reg(1)?, o.uimm16(2)?);
            out.push(match m {
                "andi" => Inst::Andi { rt, rs, imm },
                "ori" => Inst::Ori { rt, rs, imm },
                _ => Inst::Xori { rt, rs, imm },
            });
        }
        "lui" => {
            o.want(2)?;
            out.push(Inst::Lui {
                rt: o.reg(0)?,
                imm: o.uimm16(1)?,
            });
        }
        // ---- memory ----
        m @ ("lw" | "sw" | "lb" | "lbu" | "sb") => {
            o.want(2)?;
            let rt = o.reg(0)?;
            let operand = o.label(1)?;
            let (base, offset) = if operand.contains('(') {
                o.mem(1)?
            } else if let Some(name) = operand.strip_prefix('$') {
                // Bare register means zero offset.
                let base = Reg::by_name(name).ok_or_else(|| {
                    AssembleError::new(line, format!("unknown register `{operand}`"))
                })?;
                (base, 0)
            } else {
                // Label-addressed access: materialise the address in $at.
                let addr = symbols.value(operand, line)?;
                out.push(Inst::Lui {
                    rt: Reg::AT,
                    imm: (addr >> 16) as u16,
                });
                out.push(Inst::Ori {
                    rt: Reg::AT,
                    rs: Reg::AT,
                    imm: (addr & 0xffff) as u16,
                });
                (Reg::AT, 0)
            };
            out.push(match m {
                "lw" => Inst::Lw { rt, base, offset },
                "sw" => Inst::Sw { rt, base, offset },
                "lb" => Inst::Lb { rt, base, offset },
                "lbu" => Inst::Lbu { rt, base, offset },
                _ => Inst::Sb { rt, base, offset },
            });
        }
        // ---- control ----
        m @ ("beq" | "bne") => {
            o.want(3)?;
            let (rs, rt) = (o.reg(0)?, o.reg(1)?);
            let target = symbols.text_target(o.label(2)?, line)?;
            out.push(if m == "beq" {
                Inst::Beq { rs, rt, target }
            } else {
                Inst::Bne { rs, rt, target }
            });
        }
        m @ ("blez" | "bgtz" | "bltz" | "bgez") => {
            o.want(2)?;
            let rs = o.reg(0)?;
            let target = symbols.text_target(o.label(1)?, line)?;
            out.push(match m {
                "blez" => Inst::Blez { rs, target },
                "bgtz" => Inst::Bgtz { rs, target },
                "bltz" => Inst::Bltz { rs, target },
                _ => Inst::Bgez { rs, target },
            });
        }
        m @ ("beqz" | "bnez") => {
            o.want(2)?;
            let rs = o.reg(0)?;
            let target = symbols.text_target(o.label(1)?, line)?;
            out.push(if m == "beqz" {
                Inst::Beq {
                    rs,
                    rt: Reg::ZERO,
                    target,
                }
            } else {
                Inst::Bne {
                    rs,
                    rt: Reg::ZERO,
                    target,
                }
            });
        }
        "b" => {
            o.want(1)?;
            let target = symbols.text_target(o.label(0)?, line)?;
            out.push(Inst::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target,
            });
        }
        m @ ("blt" | "bgt" | "ble" | "bge") => {
            o.want(3)?;
            let (rs, rt) = (o.reg(0)?, o.reg(1)?);
            let target = symbols.text_target(o.label(2)?, line)?;
            // blt: rs < rt  → slt $at, rs, rt ; bne $at, $zero
            // bge: !(rs<rt) → slt $at, rs, rt ; beq $at, $zero
            // bgt: rt < rs  → slt $at, rt, rs ; bne $at, $zero
            // ble: !(rt<rs) → slt $at, rt, rs ; beq $at, $zero
            let (cmp_rs, cmp_rt, branch_ne) = match m {
                "blt" => (rs, rt, true),
                "bge" => (rs, rt, false),
                "bgt" => (rt, rs, true),
                _ => (rt, rs, false),
            };
            out.push(Inst::Slt {
                rd: Reg::AT,
                rs: cmp_rs,
                rt: cmp_rt,
            });
            out.push(if branch_ne {
                Inst::Bne {
                    rs: Reg::AT,
                    rt: Reg::ZERO,
                    target,
                }
            } else {
                Inst::Beq {
                    rs: Reg::AT,
                    rt: Reg::ZERO,
                    target,
                }
            });
        }
        "j" => {
            o.want(1)?;
            out.push(Inst::J {
                target: symbols.text_target(o.label(0)?, line)?,
            });
        }
        "jal" => {
            o.want(1)?;
            out.push(Inst::Jal {
                target: symbols.text_target(o.label(0)?, line)?,
            });
        }
        "jr" => {
            o.want(1)?;
            out.push(Inst::Jr { rs: o.reg(0)? });
        }
        "jalr" => {
            if o.ops.len() == 1 {
                out.push(Inst::Jalr {
                    rd: Reg::RA,
                    rs: o.reg(0)?,
                });
            } else {
                o.want(2)?;
                out.push(Inst::Jalr {
                    rd: o.reg(0)?,
                    rs: o.reg(1)?,
                });
            }
        }
        // ---- pseudo-instructions ----
        "li" => {
            o.want(2)?;
            let rt = o.reg(0)?;
            let imm = o.imm(1)?;
            if !(-(1i64 << 31)..(1i64 << 32)).contains(&imm) {
                return Err(AssembleError::new(
                    line,
                    format!("li value {imm} out of 32-bit range"),
                ));
            }
            if let Ok(v) = i16::try_from(imm) {
                out.push(Inst::Addi {
                    rt,
                    rs: Reg::ZERO,
                    imm: v,
                });
            } else if (0..=0xffff).contains(&imm) {
                out.push(Inst::Ori {
                    rt,
                    rs: Reg::ZERO,
                    imm: imm as u16,
                });
            } else if imm as u32 & 0xffff == 0 {
                out.push(Inst::Lui {
                    rt,
                    imm: (imm as u32 >> 16) as u16,
                });
            } else {
                out.push(Inst::Lui {
                    rt,
                    imm: (imm as u32 >> 16) as u16,
                });
                out.push(Inst::Ori {
                    rt,
                    rs: rt,
                    imm: (imm as u32 & 0xffff) as u16,
                });
            }
        }
        "la" => {
            o.want(2)?;
            let rt = o.reg(0)?;
            let addr = symbols.value(o.label(1)?, line)?;
            out.push(Inst::Lui {
                rt,
                imm: (addr >> 16) as u16,
            });
            out.push(Inst::Ori {
                rt,
                rs: rt,
                imm: (addr & 0xffff) as u16,
            });
        }
        "move" => {
            o.want(2)?;
            out.push(Inst::Add {
                rd: o.reg(0)?,
                rs: o.reg(1)?,
                rt: Reg::ZERO,
            });
        }
        "mul" => {
            o.want(3)?;
            let (rd, rs, rt) = (o.reg(0)?, o.reg(1)?, o.reg(2)?);
            out.push(Inst::Mult { rs, rt });
            out.push(Inst::Mflo { rd });
        }
        "not" => {
            o.want(2)?;
            out.push(Inst::Nor {
                rd: o.reg(0)?,
                rs: o.reg(1)?,
                rt: Reg::ZERO,
            });
        }
        "neg" => {
            o.want(2)?;
            out.push(Inst::Sub {
                rd: o.reg(0)?,
                rs: Reg::ZERO,
                rt: o.reg(1)?,
            });
        }
        "syscall" => {
            o.want(0)?;
            out.push(Inst::Syscall);
        }
        "nop" => {
            o.want(0)?;
            out.push(Inst::Nop);
        }
        other => {
            return Err(AssembleError::new(
                line,
                format!("unknown mnemonic `{other}`"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_across_sections() {
        let p = assemble(
            r#"
            .data
            x: .word 42
            .text
            main:
                la $t0, x
                lw $t1, 0($t0)
                j end
            end:
                nop
        "#,
        )
        .unwrap();
        assert_eq!(p.entry, p.text_labels["main"]);
        assert_eq!(p.data_labels["x"], DATA_BASE);
        assert_eq!(&p.data[..4], &42u32.to_le_bytes());
        // la expands to lui+ori, lw is 1, j is 1, nop is 1.
        assert_eq!(p.insts.len(), 5);
        assert_eq!(p.text_labels["end"], 4);
    }

    #[test]
    fn li_picks_minimal_encoding() {
        let p = assemble(
            ".text\nli $t0, 5\nli $t1, -3\nli $t2, 0x8000\nli $t3, 0x10000\nli $t4, 0x12345678\n",
        )
        .unwrap();
        assert_eq!(
            p.insts,
            vec![
                Inst::Addi {
                    rt: Reg(8),
                    rs: Reg::ZERO,
                    imm: 5
                },
                Inst::Addi {
                    rt: Reg(9),
                    rs: Reg::ZERO,
                    imm: -3
                },
                Inst::Ori {
                    rt: Reg(10),
                    rs: Reg::ZERO,
                    imm: 0x8000
                },
                Inst::Lui {
                    rt: Reg(11),
                    imm: 1
                },
                Inst::Lui {
                    rt: Reg(12),
                    imm: 0x1234
                },
                Inst::Ori {
                    rt: Reg(12),
                    rs: Reg(12),
                    imm: 0x5678
                },
            ]
        );
    }

    #[test]
    fn branch_pseudos_expand_with_at() {
        let p = assemble(
            r#"
            .text
            top: blt $t0, $t1, top
                 bge $t0, $t1, top
        "#,
        )
        .unwrap();
        assert_eq!(p.insts.len(), 4);
        assert_eq!(
            p.insts[0],
            Inst::Slt {
                rd: Reg::AT,
                rs: Reg(8),
                rt: Reg(9)
            }
        );
        assert!(matches!(p.insts[1], Inst::Bne { target: 0, .. }));
        assert!(matches!(p.insts[3], Inst::Beq { target: 0, .. }));
    }

    #[test]
    fn data_directives_layout() {
        let p = assemble(
            r#"
            .data
            a: .byte 1, 2
            b: .word 0x11223344
            s: .asciiz "hi\n"
            sp: .space 3
            c: .byte 'A'
        "#,
        )
        .unwrap();
        // bytes 1,2 then pad to 4, then word, then "hi\n\0", space 3, 'A'
        assert_eq!(p.data[0], 1);
        assert_eq!(p.data[1], 2);
        assert_eq!(&p.data[4..8], &0x1122_3344u32.to_le_bytes());
        assert_eq!(&p.data[8..12], b"hi\n\0");
        assert_eq!(p.data[15], b'A');
        assert_eq!(p.data_labels["b"], DATA_BASE + 4);
        assert_eq!(p.data_labels["c"], DATA_BASE + 15);
    }

    #[test]
    fn word_labels_in_data() {
        let p = assemble(
            r#"
            .data
            ptr: .word target
            .text
            main: nop
            target: nop
        "#,
        )
        .unwrap();
        assert_eq!(&p.data[..4], &1u32.to_le_bytes(), "text label index stored");
    }

    #[test]
    fn errors_name_the_line() {
        let e = assemble(".text\nbogus $t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble(".text\nadd $t0, $t1\n").unwrap_err();
        assert!(e.message.contains("expected 3 operands"));
        let e = assemble(".text\nadd $t0, $t1, $woof\n").unwrap_err();
        assert!(e.message.contains("woof"));
        let e = assemble(".text\nbeq $t0, $t1, nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
        let e = assemble(".text\naddi $t0, $t1, 40000\n").unwrap_err();
        assert!(e.message.contains("out of i16 range"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble(".text\nx: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n.text\n  # indented comment\nnop # trailing\n\n").unwrap();
        assert_eq!(p.insts, vec![Inst::Nop]);
    }

    #[test]
    fn mem_operand_forms() {
        let p = assemble(".text\nlw $t0, 8($sp)\nlw $t1, ($sp)\nsw $t0, -4($sp)\n").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Lw {
                rt: Reg(8),
                base: Reg::SP,
                offset: 8
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Lw {
                rt: Reg(9),
                base: Reg::SP,
                offset: 0
            }
        );
        assert_eq!(
            p.insts[2],
            Inst::Sw {
                rt: Reg(8),
                base: Reg::SP,
                offset: -4
            }
        );
    }

    #[test]
    fn label_addressed_loads_expand() {
        let p = assemble(
            r#"
            .data
            v: .word 9
            .text
            lw $t0, v
        "#,
        )
        .unwrap();
        assert_eq!(p.insts.len(), 3);
        assert!(matches!(p.insts[0], Inst::Lui { rt: Reg::AT, .. }));
        assert!(matches!(
            p.insts[2],
            Inst::Lw {
                base: Reg::AT,
                offset: 0,
                ..
            }
        ));
    }

    #[test]
    fn entry_defaults_to_zero_without_main() {
        let p = assemble(".text\nnop\n").unwrap();
        assert_eq!(p.entry, 0);
    }
}

#[cfg(test)]
mod listing_tests {
    use super::*;

    #[test]
    fn listing_shows_labels_and_targets() {
        let p = assemble(
            r#"
            .data
            v: .word 1
            .text
            main:
                li  $t0, 3
            loop:
                addi $t0, $t0, -1
                bgtz $t0, loop
                jr  $ra
        "#,
        )
        .unwrap();
        let listing = p.listing();
        assert!(listing.contains("main:"));
        assert!(listing.contains("loop:"));
        assert!(listing.contains("addi $t0, $t0, -1"));
        assert!(listing.contains("@1"), "branch target index shown");
        assert!(listing.contains(".data  4 bytes"));
        // One line per instruction plus label and data lines.
        assert_eq!(listing.lines().count(), 4 + 2 + 2);
    }
}
