#![warn(missing_docs)]

//! # lowvolt-isa
//!
//! A 32-bit RISC instruction set (MIPS-flavoured) with a two-pass
//! assembler, an interpreter, and an ATOM-style profiling layer.
//!
//! This crate plays the role of the binary-instrumentation tools (ATOM,
//! Pixie) in the paper's §5.3 methodology: "the execution frequency of
//! individual assembly language instructions must be mapped to functional
//! block use". The [`profile`] module counts per-instruction executions,
//! maps them onto functional blocks (adder / shifter / multiplier), and
//! computes the activity variables the energy models need:
//!
//! - `fga` — the fraction of executed instructions that use a block, and
//! - `bga` — the fraction of cycles on which a block *run* begins (a run
//!   being a maximal streak of consecutive uses), i.e. how often the
//!   block's standby control has to toggle.
//!
//! # Example
//!
//! ```
//! use lowvolt_isa::asm::assemble;
//! use lowvolt_isa::cpu::Cpu;
//! use lowvolt_isa::profile::Profiler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(r#"
//!     .text
//! main:
//!     li   $t0, 0          # sum = 0
//!     li   $t1, 10         # i = 10
//! loop:
//!     add  $t0, $t0, $t1   # sum += i
//!     addi $t1, $t1, -1
//!     bgtz $t1, loop
//!     li   $v0, 10         # exit
//!     syscall
//! "#)?;
//! let mut cpu = Cpu::new(program);
//! let mut profiler = Profiler::standard();
//! cpu.run_profiled(1_000_000, &mut profiler)?;
//! let report = profiler.report();
//! let adder = report.unit(lowvolt_isa::blocks::FunctionalUnit::Adder);
//! assert!(adder.fga > 0.5, "the loop is adder-dominated");
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod bblocks;
pub mod blocks;
pub mod cpu;
pub mod error;
pub mod inst;
pub mod mem;
pub mod profile;

pub use asm::assemble;
pub use blocks::FunctionalUnit;
pub use cpu::Cpu;
pub use error::{AssembleError, ExecError};
pub use inst::{Inst, Reg};
pub use profile::Profiler;
