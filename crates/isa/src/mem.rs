//! Sparse paged byte-addressable memory.
//!
//! The data segment lives at [`DATA_BASE`] and the stack grows down from
//! [`STACK_TOP`]; paging keeps the gigabytes in between free.

use crate::error::ExecError;
use std::collections::HashMap;

/// Base address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;

/// Initial stack pointer (word-aligned top of the stack region).
pub const STACK_TOP: u32 = 0x7fff_fffc;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse paged memory.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates empty memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, address: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(address >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte (unmapped memory reads as zero).
    #[must_use]
    pub fn read_byte(&self, address: u32) -> u8 {
        match self.pages.get(&(address >> PAGE_BITS)) {
            Some(page) => page[(address as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, address: u32, value: u8) {
        self.page_mut(address)[(address as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadMemoryAccess`] if `address` is not 4-byte
    /// aligned.
    pub fn read_word(&self, address: u32) -> Result<u32, ExecError> {
        if !address.is_multiple_of(4) {
            return Err(ExecError::BadMemoryAccess {
                address,
                reason: "misaligned word load",
            });
        }
        Ok(u32::from_le_bytes([
            self.read_byte(address),
            self.read_byte(address + 1),
            self.read_byte(address + 2),
            self.read_byte(address + 3),
        ]))
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadMemoryAccess`] if `address` is not 4-byte
    /// aligned.
    pub fn write_word(&mut self, address: u32, value: u32) -> Result<(), ExecError> {
        if !address.is_multiple_of(4) {
            return Err(ExecError::BadMemoryAccess {
                address,
                reason: "misaligned word store",
            });
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_byte(address + i as u32, b);
        }
        Ok(())
    }

    /// Copies a byte slice into memory starting at `address`.
    pub fn write_bytes(&mut self, address: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(address + i as u32, b);
        }
    }

    /// Reads a NUL-terminated string starting at `address` (capped at 64
    /// KiB to bound runaway reads).
    #[must_use]
    pub fn read_cstring(&self, address: u32) -> String {
        let mut out = Vec::new();
        for i in 0..65_536 {
            let b = self.read_byte(address.wrapping_add(i));
            if b == 0 {
                break;
            }
            out.push(b);
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Number of resident pages (a footprint metric).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_default_zero() {
        let mut m = Memory::new();
        assert_eq!(m.read_byte(0x1234), 0);
        m.write_byte(0x1234, 0xab);
        assert_eq!(m.read_byte(0x1234), 0xab);
    }

    #[test]
    fn words_are_little_endian() {
        let mut m = Memory::new();
        m.write_word(DATA_BASE, 0x1234_5678).unwrap();
        assert_eq!(m.read_byte(DATA_BASE), 0x78);
        assert_eq!(m.read_byte(DATA_BASE + 3), 0x12);
        assert_eq!(m.read_word(DATA_BASE).unwrap(), 0x1234_5678);
    }

    #[test]
    fn misalignment_rejected() {
        let mut m = Memory::new();
        assert!(m.read_word(2).is_err());
        assert!(m.write_word(DATA_BASE + 1, 0).is_err());
    }

    #[test]
    fn words_span_pages() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_BITS) - 4; // last word of page 0
        m.write_word(addr as u32, 0xdead_beef).unwrap();
        assert_eq!(m.read_word(addr as u32).unwrap(), 0xdead_beef);
        // One page boundary straddle via bytes:
        m.write_bytes((1 << PAGE_BITS) - 2, &[1, 2, 3, 4]);
        assert_eq!(m.read_byte(1 << PAGE_BITS), 3);
    }

    #[test]
    fn cstring_reads_until_nul() {
        let mut m = Memory::new();
        m.write_bytes(DATA_BASE, b"hello\0world");
        assert_eq!(m.read_cstring(DATA_BASE), "hello");
    }

    #[test]
    fn stack_and_data_are_far_apart() {
        let mut m = Memory::new();
        m.write_word(STACK_TOP, 7).unwrap();
        m.write_word(DATA_BASE, 9).unwrap();
        assert_eq!(m.read_word(STACK_TOP).unwrap(), 7);
        assert_eq!(m.resident_pages(), 2);
    }
}
