//! The interpreter.
//!
//! A straightforward fetch–decode–execute loop over pre-decoded
//! instructions. There are no branch delay slots: branches take effect on
//! the next instruction, which keeps guest programs simple without
//! changing any instruction-mix statistics.

use std::collections::VecDeque;

use crate::asm::Program;
use crate::error::ExecError;
use crate::inst::{Inst, Reg};
use crate::mem::{Memory, DATA_BASE, STACK_TOP};
use crate::profile::Profiler;

/// Syscall numbers understood by [`Cpu`] (selected via `$v0`).
pub mod syscalls {
    /// Print `$a0` as a signed decimal integer.
    pub const PRINT_INT: u32 = 1;
    /// Print the NUL-terminated string at address `$a0`.
    pub const PRINT_STRING: u32 = 4;
    /// Pop one integer from the scripted input queue into `$v0`.
    pub const READ_INT: u32 = 5;
    /// Halt the program; `$a0` is the exit code.
    pub const EXIT: u32 = 10;
    /// Print the low byte of `$a0` as a character.
    pub const PRINT_CHAR: u32 = 11;
}

/// An executing program instance.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    hi: u32,
    lo: u32,
    pc: u32,
    program: Program,
    mem: Memory,
    halted: bool,
    exit_code: u32,
    output: String,
    input_queue: VecDeque<i32>,
    steps: u64,
}

impl Cpu {
    /// Creates a CPU with the program loaded: data segment copied to
    /// [`DATA_BASE`], `$sp` at [`STACK_TOP`], and the PC at the program
    /// entry point.
    #[must_use]
    pub fn new(program: Program) -> Cpu {
        let mut mem = Memory::new();
        mem.write_bytes(DATA_BASE, &program.data);
        let mut regs = [0u32; 32];
        regs[Reg::SP.0 as usize] = STACK_TOP;
        let pc = program.entry;
        Cpu {
            regs,
            hi: 0,
            lo: 0,
            pc,
            program,
            mem,
            halted: false,
            exit_code: 0,
            output: String::new(),
            input_queue: VecDeque::new(),
            steps: 0,
        }
    }

    /// Reads a register (`$zero` always reads 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Writes a register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = value;
        }
    }

    /// Whether the program has executed an exit syscall.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Exit code passed to the exit syscall.
    #[must_use]
    pub fn exit_code(&self) -> u32 {
        self.exit_code
    }

    /// Everything printed so far.
    #[must_use]
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Number of instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current program counter (instruction index).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Queues an integer for the `read_int` syscall.
    pub fn push_input(&mut self, value: i32) {
        self.input_queue.push_back(value);
    }

    /// Direct access to memory (for loading test fixtures or inspecting
    /// results).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The loaded program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Executes one instruction; returns it for instrumentation, or `None`
    /// if the program has already halted.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on PC escape, bad memory access, unknown
    /// syscall, or exhausted input.
    pub fn step(&mut self) -> Result<Option<Inst>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let len = self.program.insts.len();
        let Some(&inst) = self.program.insts.get(self.pc as usize) else {
            return Err(ExecError::PcOutOfRange { pc: self.pc, len });
        };
        self.steps += 1;
        let mut next_pc = self.pc + 1;
        match inst {
            Inst::Add { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt)));
            }
            Inst::Sub { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt)));
            }
            Inst::And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Inst::Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Inst::Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Inst::Nor { rd, rs, rt } => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))),
            Inst::Slt { rd, rs, rt } => {
                self.set_reg(rd, u32::from((self.reg(rs) as i32) < self.reg(rt) as i32));
            }
            Inst::Sltu { rd, rs, rt } => {
                self.set_reg(rd, u32::from(self.reg(rs) < self.reg(rt)));
            }
            Inst::Sllv { rd, rt, rs } => {
                self.set_reg(rd, self.reg(rt) << (self.reg(rs) & 31));
            }
            Inst::Srlv { rd, rt, rs } => {
                self.set_reg(rd, self.reg(rt) >> (self.reg(rs) & 31));
            }
            Inst::Srav { rd, rt, rs } => {
                self.set_reg(rd, ((self.reg(rt) as i32) >> (self.reg(rs) & 31)) as u32);
            }
            Inst::Sll { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) << shamt),
            Inst::Srl { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) >> shamt),
            Inst::Sra { rd, rt, shamt } => {
                self.set_reg(rd, ((self.reg(rt) as i32) >> shamt) as u32);
            }
            Inst::Mult { rs, rt } => {
                let p = i64::from(self.reg(rs) as i32) * i64::from(self.reg(rt) as i32);
                self.hi = (p as u64 >> 32) as u32;
                self.lo = p as u32;
            }
            Inst::Multu { rs, rt } => {
                let p = u64::from(self.reg(rs)) * u64::from(self.reg(rt));
                self.hi = (p >> 32) as u32;
                self.lo = p as u32;
            }
            Inst::Div { rs, rt } => {
                let (n, d) = (self.reg(rs) as i32, self.reg(rt) as i32);
                if d != 0 {
                    self.lo = n.wrapping_div(d) as u32;
                    self.hi = n.wrapping_rem(d) as u32;
                }
            }
            Inst::Divu { rs, rt } => {
                let (n, d) = (self.reg(rs), self.reg(rt));
                if let (Some(q), Some(r)) = (n.checked_div(d), n.checked_rem(d)) {
                    self.lo = q;
                    self.hi = r;
                }
            }
            Inst::Mfhi { rd } => self.set_reg(rd, self.hi),
            Inst::Mflo { rd } => self.set_reg(rd, self.lo),
            Inst::Addi { rt, rs, imm } => {
                self.set_reg(rt, self.reg(rs).wrapping_add(imm as i32 as u32));
            }
            Inst::Andi { rt, rs, imm } => self.set_reg(rt, self.reg(rs) & u32::from(imm)),
            Inst::Ori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) | u32::from(imm)),
            Inst::Xori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) ^ u32::from(imm)),
            Inst::Slti { rt, rs, imm } => {
                self.set_reg(rt, u32::from((self.reg(rs) as i32) < i32::from(imm)));
            }
            Inst::Sltiu { rt, rs, imm } => {
                self.set_reg(rt, u32::from(self.reg(rs) < imm as i32 as u32));
            }
            Inst::Lui { rt, imm } => self.set_reg(rt, u32::from(imm) << 16),
            Inst::Lw { rt, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                let v = self.mem.read_word(addr)?;
                self.set_reg(rt, v);
            }
            Inst::Sw { rt, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                self.mem.write_word(addr, self.reg(rt))?;
            }
            Inst::Lb { rt, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                self.set_reg(rt, self.mem.read_byte(addr) as i8 as i32 as u32);
            }
            Inst::Lbu { rt, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                self.set_reg(rt, u32::from(self.mem.read_byte(addr)));
            }
            Inst::Sb { rt, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                self.mem.write_byte(addr, self.reg(rt) as u8);
            }
            Inst::Beq { rs, rt, target } => {
                if self.reg(rs) == self.reg(rt) {
                    next_pc = target;
                }
            }
            Inst::Bne { rs, rt, target } => {
                if self.reg(rs) != self.reg(rt) {
                    next_pc = target;
                }
            }
            Inst::Blez { rs, target } => {
                if self.reg(rs) as i32 <= 0 {
                    next_pc = target;
                }
            }
            Inst::Bgtz { rs, target } => {
                if self.reg(rs) as i32 > 0 {
                    next_pc = target;
                }
            }
            Inst::Bltz { rs, target } => {
                if (self.reg(rs) as i32) < 0 {
                    next_pc = target;
                }
            }
            Inst::Bgez { rs, target } => {
                if self.reg(rs) as i32 >= 0 {
                    next_pc = target;
                }
            }
            Inst::J { target } => next_pc = target,
            Inst::Jal { target } => {
                self.set_reg(Reg::RA, self.pc + 1);
                next_pc = target;
            }
            Inst::Jr { rs } => next_pc = self.reg(rs),
            Inst::Jalr { rd, rs } => {
                let t = self.reg(rs);
                self.set_reg(rd, self.pc + 1);
                next_pc = t;
            }
            Inst::Syscall => self.syscall()?,
            Inst::Nop => {}
        }
        self.pc = next_pc;
        Ok(Some(inst))
    }

    fn syscall(&mut self) -> Result<(), ExecError> {
        let service = self.reg(Reg::V0);
        let a0 = self.reg(Reg::A0);
        match service {
            syscalls::PRINT_INT => {
                self.output.push_str(&(a0 as i32).to_string());
            }
            syscalls::PRINT_STRING => {
                let s = self.mem.read_cstring(a0);
                self.output.push_str(&s);
            }
            syscalls::READ_INT => {
                let v = self
                    .input_queue
                    .pop_front()
                    .ok_or(ExecError::InputExhausted)?;
                self.set_reg(Reg::V0, v as u32);
            }
            syscalls::EXIT => {
                self.halted = true;
                self.exit_code = a0;
            }
            syscalls::PRINT_CHAR => {
                self.output.push(char::from(a0 as u8));
            }
            other => return Err(ExecError::UnknownSyscall(other)),
        }
        Ok(())
    }

    /// Runs until exit or until `budget` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepBudgetExceeded`] if the budget runs out,
    /// or any error from [`Cpu::step`].
    pub fn run(&mut self, budget: u64) -> Result<u64, ExecError> {
        let start = self.steps;
        while !self.halted {
            if self.steps - start >= budget {
                return Err(ExecError::StepBudgetExceeded { budget });
            }
            self.step()?;
        }
        Ok(self.steps - start)
    }

    /// Runs like [`Cpu::run`] while feeding every executed instruction to
    /// a [`Profiler`] — the ATOM instrumentation hook.
    ///
    /// # Errors
    ///
    /// Same as [`Cpu::run`].
    pub fn run_profiled(&mut self, budget: u64, profiler: &mut Profiler) -> Result<u64, ExecError> {
        let start = self.steps;
        while !self.halted {
            if self.steps - start >= budget {
                return Err(ExecError::StepBudgetExceeded { budget });
            }
            if let Some(inst) = self.step()? {
                profiler.record(&inst);
            }
        }
        Ok(self.steps - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> Cpu {
        let program = assemble(src).expect("test programs assemble");
        let mut cpu = Cpu::new(program);
        cpu.run(1_000_000).expect("test programs run to exit");
        cpu
    }

    #[test]
    fn arithmetic_and_print() {
        let cpu = run_asm(
            r#"
            .text
            li   $t0, 6
            li   $t1, 7
            mult $t0, $t1
            mflo $a0
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "42");
        assert!(cpu.halted());
    }

    #[test]
    fn signed_arithmetic_wraps_and_compares() {
        let cpu = run_asm(
            r#"
            .text
            li   $t0, -5
            li   $t1, 3
            add  $t2, $t0, $t1     # -2
            slt  $t3, $t2, $zero   # 1
            sltu $t4, $t2, $zero   # 0 (unsigned -2 is huge)
            move $a0, $t3
            li   $v0, 1
            syscall
            move $a0, $t4
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "10");
    }

    #[test]
    fn shifts_behave() {
        let cpu = run_asm(
            r#"
            .text
            li   $t0, -16
            sra  $t1, $t0, 2      # -4
            srl  $t2, $t0, 28     # 0xf
            sll  $t3, $t0, 1     # -32
            move $a0, $t1
            li $v0, 1
            syscall
            li $a0, 32
            li $v0, 11
            syscall
            move $a0, $t2
            li $v0, 1
            syscall
            li $a0, 32
            li $v0, 11
            syscall
            move $a0, $t3
            li $v0, 1
            syscall
            li $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "-4 15 -32");
    }

    #[test]
    fn division_and_remainder() {
        let cpu = run_asm(
            r#"
            .text
            li   $t0, 17
            li   $t1, 5
            div  $t0, $t1
            mflo $a0          # 3
            li $v0, 1
            syscall
            mfhi $a0          # 2
            li $v0, 1
            syscall
            li $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "32");
    }

    #[test]
    fn division_by_zero_leaves_hilo() {
        let cpu = run_asm(
            r#"
            .text
            li   $t0, 9
            li   $t1, 4
            div  $t0, $t1     # lo=2, hi=1
            div  $t0, $zero   # unchanged
            mflo $a0
            li $v0, 1
            syscall
            li $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "2");
    }

    #[test]
    fn memory_and_data_segment() {
        let cpu = run_asm(
            r#"
            .data
            values: .word 10, 20, 30
            msg:    .asciiz "sum="
            .text
            la   $t0, values
            lw   $t1, 0($t0)
            lw   $t2, 4($t0)
            lw   $t3, 8($t0)
            add  $t1, $t1, $t2
            add  $t1, $t1, $t3
            la   $a0, msg
            li   $v0, 4
            syscall
            move $a0, $t1
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "sum=60");
    }

    #[test]
    fn byte_loads_sign_and_zero_extend() {
        let cpu = run_asm(
            r#"
            .data
            b: .byte 0xff
            .text
            la   $t0, b
            lb   $a0, 0($t0)   # -1
            li $v0, 1
            syscall
            lbu  $a0, 0($t0)   # 255
            li $v0, 1
            syscall
            li $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "-1255");
    }

    #[test]
    fn calls_and_stack() {
        let cpu = run_asm(
            r#"
            .text
            main:
                li   $a0, 5
                jal  double
                move $a0, $v0
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            double:
                addi $sp, $sp, -4
                sw   $ra, 0($sp)
                add  $v0, $a0, $a0
                lw   $ra, 0($sp)
                addi $sp, $sp, 4
                jr   $ra
        "#,
        );
        assert_eq!(cpu.output(), "10");
    }

    #[test]
    fn read_int_from_scripted_queue() {
        let program = assemble(
            r#"
            .text
            li $v0, 5
            syscall
            move $a0, $v0
            li $v0, 1
            syscall
            li $v0, 10
            syscall
        "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(program.clone());
        cpu.push_input(-123);
        cpu.run(1000).unwrap();
        assert_eq!(cpu.output(), "-123");
        // Without input the same program errors.
        let mut starved = Cpu::new(program);
        assert_eq!(starved.run(1000), Err(ExecError::InputExhausted));
    }

    #[test]
    fn budget_exhaustion_detected() {
        let program = assemble(
            r#"
            .text
            spin: j spin
        "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(program);
        assert_eq!(
            cpu.run(100),
            Err(ExecError::StepBudgetExceeded { budget: 100 })
        );
    }

    #[test]
    fn pc_escape_detected() {
        let program = assemble(
            r#"
            .text
            nop
        "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(program);
        cpu.step().unwrap();
        assert!(matches!(cpu.step(), Err(ExecError::PcOutOfRange { .. })));
    }

    #[test]
    fn zero_register_is_immutable() {
        let cpu = run_asm(
            r#"
            .text
            li   $zero, 99
            move $a0, $zero
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
        "#,
        );
        assert_eq!(cpu.output(), "0");
    }
}
