//! Instruction set definition.
//!
//! A classic 32-register RISC load/store ISA. Branch and jump targets are
//! pre-resolved *instruction indices* (the assembler resolves labels), so
//! the interpreter never does address arithmetic on the text segment.

use std::fmt;

/// One of the 32 general-purpose registers. Register 0 is hardwired zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register `$zero`.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary `$at`.
    pub const AT: Reg = Reg(1);
    /// First result register `$v0`.
    pub const V0: Reg = Reg(2);
    /// Second result register `$v1`.
    pub const V1: Reg = Reg(3);
    /// First argument register `$a0`.
    pub const A0: Reg = Reg(4);
    /// Stack pointer `$sp`.
    pub const SP: Reg = Reg(29);
    /// Return address `$ra`.
    pub const RA: Reg = Reg(31);

    /// Canonical MIPS-style register names, indexable by register number.
    pub const NAMES: [&'static str; 32] = [
        "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
        "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp",
        "fp", "ra",
    ];

    /// Looks a register up by name (without the `$`), accepting both
    /// symbolic (`t0`) and numeric (`8`) forms.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Reg> {
        if let Some(i) = Self::NAMES.iter().position(|&n| n == name) {
            return Some(Reg(i as u8));
        }
        name.parse::<u8>().ok().filter(|&i| i < 32).map(Reg)
    }

    /// The canonical name of this register.
    #[must_use]
    pub fn name(self) -> &'static str {
        Self::NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

/// A decoded instruction.
///
/// `target` fields of branches and jumps are instruction indices into the
/// program's text segment. Variant fields follow the uniform MIPS
/// field convention — `rd` destination, `rs`/`rt` sources, `base`+`offset`
/// for memory operands, `shamt` shift amounts, `imm` immediates — so the
/// fields are not documented individually.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd = rs + rt` (wrapping).
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs - rt` (wrapping).
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & rt`.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs | rt`.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs ^ rt`.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = !(rs | rt)`.
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = (rs as i32) < (rt as i32)`.
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs < rt` (unsigned).
    Sltu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rt << (rs & 31)`.
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    /// `rd = rt >> (rs & 31)` (logical).
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    /// `rd = (rt as i32) >> (rs & 31)` (arithmetic).
    Srav { rd: Reg, rt: Reg, rs: Reg },
    /// `rd = rt << shamt`.
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd = rt >> shamt` (logical).
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd = (rt as i32) >> shamt` (arithmetic).
    Sra { rd: Reg, rt: Reg, shamt: u8 },
    /// `(hi, lo) = rs * rt` (signed 64-bit product).
    Mult { rs: Reg, rt: Reg },
    /// `(hi, lo) = rs * rt` (unsigned 64-bit product).
    Multu { rs: Reg, rt: Reg },
    /// `lo = rs / rt`, `hi = rs % rt` (signed; division by zero leaves
    /// hi/lo unchanged, as on real hardware).
    Div { rs: Reg, rt: Reg },
    /// Unsigned divide.
    Divu { rs: Reg, rt: Reg },
    /// `rd = hi`.
    Mfhi { rd: Reg },
    /// `rd = lo`.
    Mflo { rd: Reg },
    /// `rt = rs + imm` (sign-extended, wrapping).
    Addi { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = rs & imm` (zero-extended).
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = rs | imm` (zero-extended).
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = rs ^ imm` (zero-extended).
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = (rs as i32) < imm`.
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = rs < imm` (unsigned compare of sign-extended imm).
    Sltiu { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = imm << 16`.
    Lui { rt: Reg, imm: u16 },
    /// `rt = mem32[rs + offset]`.
    Lw { rt: Reg, base: Reg, offset: i16 },
    /// `mem32[rs + offset] = rt`.
    Sw { rt: Reg, base: Reg, offset: i16 },
    /// `rt = sign_extend(mem8[rs + offset])`.
    Lb { rt: Reg, base: Reg, offset: i16 },
    /// `rt = zero_extend(mem8[rs + offset])`.
    Lbu { rt: Reg, base: Reg, offset: i16 },
    /// `mem8[rs + offset] = rt & 0xff`.
    Sb { rt: Reg, base: Reg, offset: i16 },
    /// Branch to `target` if `rs == rt`.
    Beq { rs: Reg, rt: Reg, target: u32 },
    /// Branch to `target` if `rs != rt`.
    Bne { rs: Reg, rt: Reg, target: u32 },
    /// Branch if `rs <= 0` (signed).
    Blez { rs: Reg, target: u32 },
    /// Branch if `rs > 0` (signed).
    Bgtz { rs: Reg, target: u32 },
    /// Branch if `rs < 0` (signed).
    Bltz { rs: Reg, target: u32 },
    /// Branch if `rs >= 0` (signed).
    Bgez { rs: Reg, target: u32 },
    /// Unconditional jump.
    J { target: u32 },
    /// Jump and link: `ra = pc + 1`, jump to `target`.
    Jal { target: u32 },
    /// Jump to the address (instruction index) in `rs`.
    Jr { rs: Reg },
    /// `rd = pc + 1`, jump to index in `rs`.
    Jalr { rd: Reg, rs: Reg },
    /// Environment call; `$v0` selects the service.
    Syscall,
    /// No operation.
    Nop,
}

impl Inst {
    /// Mnemonic of this instruction (the key the profiler aggregates by).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Add { .. } => "add",
            Inst::Sub { .. } => "sub",
            Inst::And { .. } => "and",
            Inst::Or { .. } => "or",
            Inst::Xor { .. } => "xor",
            Inst::Nor { .. } => "nor",
            Inst::Slt { .. } => "slt",
            Inst::Sltu { .. } => "sltu",
            Inst::Sllv { .. } => "sllv",
            Inst::Srlv { .. } => "srlv",
            Inst::Srav { .. } => "srav",
            Inst::Sll { .. } => "sll",
            Inst::Srl { .. } => "srl",
            Inst::Sra { .. } => "sra",
            Inst::Mult { .. } => "mult",
            Inst::Multu { .. } => "multu",
            Inst::Div { .. } => "div",
            Inst::Divu { .. } => "divu",
            Inst::Mfhi { .. } => "mfhi",
            Inst::Mflo { .. } => "mflo",
            Inst::Addi { .. } => "addi",
            Inst::Andi { .. } => "andi",
            Inst::Ori { .. } => "ori",
            Inst::Xori { .. } => "xori",
            Inst::Slti { .. } => "slti",
            Inst::Sltiu { .. } => "sltiu",
            Inst::Lui { .. } => "lui",
            Inst::Lw { .. } => "lw",
            Inst::Sw { .. } => "sw",
            Inst::Lb { .. } => "lb",
            Inst::Lbu { .. } => "lbu",
            Inst::Sb { .. } => "sb",
            Inst::Beq { .. } => "beq",
            Inst::Bne { .. } => "bne",
            Inst::Blez { .. } => "blez",
            Inst::Bgtz { .. } => "bgtz",
            Inst::Bltz { .. } => "bltz",
            Inst::Bgez { .. } => "bgez",
            Inst::J { .. } => "j",
            Inst::Jal { .. } => "jal",
            Inst::Jr { .. } => "jr",
            Inst::Jalr { .. } => "jalr",
            Inst::Syscall => "syscall",
            Inst::Nop => "nop",
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Add { rd, rs, rt }
            | Inst::Sub { rd, rs, rt }
            | Inst::And { rd, rs, rt }
            | Inst::Or { rd, rs, rt }
            | Inst::Xor { rd, rs, rt }
            | Inst::Nor { rd, rs, rt }
            | Inst::Slt { rd, rs, rt }
            | Inst::Sltu { rd, rs, rt } => {
                write!(f, "{} {rd}, {rs}, {rt}", self.mnemonic())
            }
            Inst::Sllv { rd, rt, rs } | Inst::Srlv { rd, rt, rs } | Inst::Srav { rd, rt, rs } => {
                write!(f, "{} {rd}, {rt}, {rs}", self.mnemonic())
            }
            Inst::Sll { rd, rt, shamt }
            | Inst::Srl { rd, rt, shamt }
            | Inst::Sra { rd, rt, shamt } => {
                write!(f, "{} {rd}, {rt}, {shamt}", self.mnemonic())
            }
            Inst::Mult { rs, rt }
            | Inst::Multu { rs, rt }
            | Inst::Div { rs, rt }
            | Inst::Divu { rs, rt } => {
                write!(f, "{} {rs}, {rt}", self.mnemonic())
            }
            Inst::Mfhi { rd } | Inst::Mflo { rd } => write!(f, "{} {rd}", self.mnemonic()),
            Inst::Addi { rt, rs, imm }
            | Inst::Slti { rt, rs, imm }
            | Inst::Sltiu { rt, rs, imm } => {
                write!(f, "{} {rt}, {rs}, {imm}", self.mnemonic())
            }
            Inst::Andi { rt, rs, imm } | Inst::Ori { rt, rs, imm } | Inst::Xori { rt, rs, imm } => {
                write!(f, "{} {rt}, {rs}, {imm:#x}", self.mnemonic())
            }
            Inst::Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Inst::Lw { rt, base, offset }
            | Inst::Sw { rt, base, offset }
            | Inst::Lb { rt, base, offset }
            | Inst::Lbu { rt, base, offset }
            | Inst::Sb { rt, base, offset } => {
                write!(f, "{} {rt}, {offset}({base})", self.mnemonic())
            }
            Inst::Beq { rs, rt, target } | Inst::Bne { rs, rt, target } => {
                write!(f, "{} {rs}, {rt}, @{target}", self.mnemonic())
            }
            Inst::Blez { rs, target }
            | Inst::Bgtz { rs, target }
            | Inst::Bltz { rs, target }
            | Inst::Bgez { rs, target } => write!(f, "{} {rs}, @{target}", self.mnemonic()),
            Inst::J { target } | Inst::Jal { target } => {
                write!(f, "{} @{target}", self.mnemonic())
            }
            Inst::Jr { rs } => write!(f, "jr {rs}"),
            Inst::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Inst::Syscall => write!(f, "syscall"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_by_name_and_number() {
        assert_eq!(Reg::by_name("t0"), Some(Reg(8)));
        assert_eq!(Reg::by_name("zero"), Some(Reg(0)));
        assert_eq!(Reg::by_name("ra"), Some(Reg(31)));
        assert_eq!(Reg::by_name("31"), Some(Reg(31)));
        assert_eq!(Reg::by_name("32"), None);
        assert_eq!(Reg::by_name("bogus"), None);
    }

    #[test]
    fn register_display() {
        assert_eq!(Reg(8).to_string(), "$t0");
        assert_eq!(Reg::ZERO.to_string(), "$zero");
        assert_eq!(Reg(29).name(), "sp");
    }

    #[test]
    fn mnemonics_and_display() {
        let i = Inst::Add {
            rd: Reg(8),
            rs: Reg(9),
            rt: Reg(10),
        };
        assert_eq!(i.mnemonic(), "add");
        assert_eq!(i.to_string(), "add $t0, $t1, $t2");
        let lw = Inst::Lw {
            rt: Reg(8),
            base: Reg(29),
            offset: -4,
        };
        assert_eq!(lw.to_string(), "lw $t0, -4($sp)");
        assert_eq!(Inst::Syscall.to_string(), "syscall");
        let b = Inst::Bne {
            rs: Reg(8),
            rt: Reg(0),
            target: 12,
        };
        assert_eq!(b.to_string(), "bne $t0, $zero, @12");
    }
}
