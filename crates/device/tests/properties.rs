//! Property-based tests for the device-model invariants.

use lowvolt_device::body::BodyEffect;
use lowvolt_device::capacitance::{GateCapacitance, JunctionCapacitance};
use lowvolt_device::delay::StageDelay;
use lowvolt_device::mosfet::Mosfet;
use lowvolt_device::on_current::AlphaPowerLaw;
use lowvolt_device::soias::SoiasDevice;
use lowvolt_device::units::{Farads, Micrometers, Volts};
use proptest::prelude::*;

proptest! {
    /// Drain current is monotonically non-decreasing in V_gs at fixed V_ds.
    #[test]
    fn drain_current_monotone_in_vgs(
        vt in 0.05f64..0.8,
        v1 in 0.0f64..3.0,
        dv in 0.001f64..1.0,
        vds in 0.05f64..3.0,
    ) {
        let m = Mosfet::nmos_with_vt(Volts(vt));
        let i1 = m.drain_current(Volts(v1), Volts(vds)).0;
        let i2 = m.drain_current(Volts(v1 + dv), Volts(vds)).0;
        prop_assert!(i2 >= i1);
    }

    /// Drain current is monotonically non-decreasing in V_ds (no CLM).
    #[test]
    fn drain_current_monotone_in_vds(
        vt in 0.05f64..0.8,
        vgs in 0.0f64..2.0,
        v1 in 0.0f64..3.0,
        dv in 0.001f64..1.0,
    ) {
        let m = Mosfet::nmos_with_vt(Volts(vt));
        let i1 = m.drain_current(Volts(vgs), Volts(v1)).0;
        let i2 = m.drain_current(Volts(vgs), Volts(v1 + dv)).0;
        prop_assert!(i2 >= i1 - i1.abs() * 1e-12);
    }

    /// Raising the threshold never raises the current.
    #[test]
    fn current_antitone_in_vt(
        vt in 0.05f64..0.6,
        dvt in 0.001f64..0.4,
        vgs in 0.0f64..2.0,
        vds in 0.05f64..3.0,
    ) {
        let lo = Mosfet::nmos_with_vt(Volts(vt));
        let hi = Mosfet::nmos_with_vt(Volts(vt + dvt));
        prop_assert!(hi.drain_current(Volts(vgs), Volts(vds)).0
            <= lo.drain_current(Volts(vgs), Volts(vds)).0);
    }

    /// Currents are always finite and non-negative.
    #[test]
    fn current_finite_nonnegative(
        vt in -0.5f64..1.5,
        vgs in -2.0f64..5.0,
        vds in -2.0f64..5.0,
    ) {
        let m = Mosfet::nmos_with_vt(Volts(vt));
        let i = m.drain_current(Volts(vgs), Volts(vds));
        prop_assert!(i.0.is_finite());
        prop_assert!(i.0 >= 0.0);
    }

    /// Body effect: reverse bias never lowers V_T, and the marginal shift
    /// shrinks with bias (concavity of the square-root law).
    #[test]
    fn body_effect_concave(vt0 in 0.1f64..0.6, v in 0.0f64..3.0) {
        let b = BodyEffect::with_vt0(Volts(vt0));
        let d1 = b.vt(Volts(v + 0.5)).0 - b.vt(Volts(v)).0;
        let d2 = b.vt(Volts(v + 1.0)).0 - b.vt(Volts(v + 0.5)).0;
        prop_assert!(d1 >= 0.0);
        prop_assert!(d2 <= d1 + 1e-12);
    }

    /// Body-effect bias solve always round-trips.
    #[test]
    fn body_bias_roundtrip(vt0 in 0.1f64..0.6, shift in 0.0f64..0.5) {
        let b = BodyEffect::with_vt0(Volts(vt0));
        let bias = b.bias_for_vt_shift(Volts(shift)).unwrap();
        let achieved = b.vt(bias).0 - vt0;
        prop_assert!((achieved - shift).abs() < 1e-9);
    }

    /// SOIAS threshold is antitone in back bias and bias_for_vt inverts vt.
    #[test]
    fn soias_vt_antitone_and_invertible(bias in 0.0f64..3.5) {
        let d = SoiasDevice::paper_fig6();
        let vt = d.vt(Volts(bias));
        prop_assert!(vt.0 <= d.vt(Volts(0.0)).0 + 1e-12);
        let solved = d.bias_for_vt(vt).unwrap();
        prop_assert!((d.vt(solved).0 - vt.0).abs() < 1e-9);
    }

    /// Effective switched gate capacitance is monotone in V_DD and bounded
    /// by [depletion_fraction·C_ox, C_ox].
    #[test]
    fn gate_cap_monotone_bounded(
        area in 0.5f64..100.0,
        vt in 0.1f64..0.8,
        v1 in 0.2f64..3.0,
        dv in 0.01f64..1.0,
    ) {
        let g = GateCapacitance::from_area(area, Volts(vt));
        let c1 = g.effective_switched(Volts(v1)).0;
        let c2 = g.effective_switched(Volts(v1 + dv)).0;
        prop_assert!(c2 >= c1 - c1 * 1e-12);
        prop_assert!(c1 <= g.c_ox().0 * (1.0 + 1e-12));
        prop_assert!(c1 >= g.c_ox().0 * 0.45 * (1.0 - 1e-12));
    }

    /// Junction capacitance is antitone in V_DD.
    #[test]
    fn junction_cap_antitone(
        c0 in 0.5f64..20.0,
        v1 in 0.2f64..3.0,
        dv in 0.01f64..1.0,
    ) {
        let j = JunctionCapacitance::with_c_j0(Farads::from_femtofarads(c0));
        let a = j.effective_switched(Volts(v1)).0;
        let b = j.effective_switched(Volts(v1 + dv)).0;
        prop_assert!(b <= a + a * 1e-12);
    }

    /// The iso-delay supply solve honours its contract: the returned supply
    /// meets the target delay to solver tolerance and never exceeds v_max.
    #[test]
    fn iso_delay_solution_meets_target(
        vt in 0.05f64..0.7,
        load_ff in 1.0f64..100.0,
        vdd_ref in 0.9f64..3.0,
    ) {
        prop_assume!(vdd_ref > vt + 0.2);
        let stage = StageDelay::new(
            AlphaPowerLaw::with_width(Micrometers(2.0)),
            Farads::from_femtofarads(load_ff),
            0.5,
        ).unwrap();
        let target = stage.delay(Volts(vdd_ref), Volts(vt));
        let solved = stage.supply_for_delay(target, Volts(vt), Volts(3.3)).unwrap();
        prop_assert!(solved.0 <= 3.3 + 1e-9);
        let achieved = stage.delay(solved, Volts(vt));
        prop_assert!((achieved.0 - target.0).abs() / target.0 < 1e-3);
    }
}
