//! The paper's Eq. 2 sub-threshold conduction law, standalone.
//!
//! ```text
//!                (V_gs − V_T) / (n·V_t)        −V_ds / V_t
//!     I  =  K · e                        · (1 − e           )
//! ```
//!
//! where `K` is a technology-dependent prefactor, `V_t = kT/q` is the
//! thermal voltage, and `n = 1 + Ω·t_ox/D` is the ideality factor. For
//! `V_ds ≳ 0.1 V` the drain term saturates and the current becomes
//! independent of `V_ds`, exactly as the paper notes.

use crate::error::DeviceError;
use crate::thermal::thermal_voltage;
use crate::units::{Amps, Kelvin, Volts};

/// Evaluates the paper's Eq. 2.
///
/// `prefactor` is the technology constant `K`; [`crate::mosfet::Mosfet`]
/// uses its EKV specific current for this role so the two models agree in
/// deep weak inversion.
///
/// ```
/// use lowvolt_device::subthreshold::eq2_current;
/// use lowvolt_device::units::{Amps, Kelvin, Volts};
///
/// // V_ds term saturates above ~0.1 V: currents at 0.5 V and 1.0 V match.
/// let i_half = eq2_current(Amps(1e-6), Volts(0.1), Volts(0.5), Volts(0.4), 1.5, Kelvin::ROOM);
/// let i_full = eq2_current(Amps(1e-6), Volts(0.1), Volts(1.0), Volts(0.4), 1.5, Kelvin::ROOM);
/// assert!((i_half.0 - i_full.0).abs() / i_full.0 < 1e-6);
/// ```
#[must_use]
pub fn eq2_current(
    prefactor: Amps,
    vgs: Volts,
    vds: Volts,
    vt0: Volts,
    ideality: f64,
    temperature: Kelvin,
) -> Amps {
    let vt = thermal_voltage(temperature).0;
    let gate = ((vgs.0 - vt0.0) / (ideality * vt)).exp();
    let drain = 1.0 - (-vds.0.max(0.0) / vt).exp();
    Amps(prefactor.0 * gate * drain)
}

/// [`eq2_current`] with the checked-numerics contract: every input must
/// be finite, the prefactor non-negative, the ideality and temperature
/// positive, and the resulting current finite — an overflowing exponent
/// (e.g. a wildly wrong `V_gs`) is reported instead of returned as `inf`.
///
/// This is the entry point the energy pipeline uses so that a corrupt
/// device parameter surfaces as a typed error at the device/core
/// boundary rather than as NaN energies downstream.
///
/// # Errors
///
/// Returns [`DeviceError::NonFinite`] for non-finite inputs or an
/// overflowed result, and [`DeviceError::InvalidParameter`] for a
/// negative prefactor, non-positive ideality, or non-positive
/// temperature.
pub fn checked_eq2_current(
    prefactor: Amps,
    vgs: Volts,
    vds: Volts,
    vt0: Volts,
    ideality: f64,
    temperature: Kelvin,
) -> Result<Amps, DeviceError> {
    for (what, v) in [
        ("prefactor", prefactor.0),
        ("vgs", vgs.0),
        ("vds", vds.0),
        ("vt0", vt0.0),
        ("ideality", ideality),
        ("temperature", temperature.0),
    ] {
        if !v.is_finite() {
            return Err(DeviceError::NonFinite { what, value: v });
        }
    }
    if prefactor.0 < 0.0 {
        return Err(DeviceError::InvalidParameter {
            name: "prefactor",
            value: prefactor.0,
            constraint: "must be non-negative",
        });
    }
    if ideality <= 0.0 {
        return Err(DeviceError::InvalidParameter {
            name: "ideality",
            value: ideality,
            constraint: "must be positive",
        });
    }
    if temperature.0 <= 0.0 {
        return Err(DeviceError::InvalidParameter {
            name: "temperature",
            value: temperature.0,
            constraint: "must be positive",
        });
    }
    let i = eq2_current(prefactor, vgs, vds, vt0, ideality, temperature);
    if !i.0.is_finite() {
        return Err(DeviceError::NonFinite {
            what: "subthreshold current",
            value: i.0,
        });
    }
    Ok(i)
}

/// Number of decades the off-current falls when the threshold voltage is
/// raised by `delta_vt`, i.e. `ΔV_T / S_th`.
///
/// The paper's Fig. 6 caption corresponds to ≈4 decades for a 0.364 V
/// threshold shift on a device with S ≈ 90 mV/dec.
#[must_use]
pub fn decades_per_vt_shift(delta_vt: Volts, ideality: f64, temperature: Kelvin) -> f64 {
    delta_vt.0 / crate::thermal::subthreshold_slope(ideality, temperature).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::ideality_for_slope;

    #[test]
    fn exponential_in_gate_voltage() {
        let i0 = eq2_current(
            Amps(1e-6),
            Volts(0.0),
            Volts(1.0),
            Volts(0.4),
            1.0,
            Kelvin::ROOM,
        );
        let i1 = eq2_current(
            Amps(1e-6),
            Volts(0.06),
            Volts(1.0),
            Volts(0.4),
            1.0,
            Kelvin::ROOM,
        );
        // 60 mV at n=1 and 300 K ≈ one decade.
        let decades = (i1.0 / i0.0).log10();
        assert!((decades - 1.0).abs() < 0.05, "decades = {decades}");
    }

    #[test]
    fn drain_term_linear_for_tiny_vds() {
        // For V_ds << V_t, (1 − e^{−V_ds/V_t}) ≈ V_ds/V_t.
        let i_small = eq2_current(
            Amps(1e-6),
            Volts(0.1),
            Volts(0.001),
            Volts(0.4),
            1.5,
            Kelvin::ROOM,
        );
        let i_double = eq2_current(
            Amps(1e-6),
            Volts(0.1),
            Volts(0.002),
            Volts(0.4),
            1.5,
            Kelvin::ROOM,
        );
        let ratio = i_double.0 / i_small.0;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn negative_vds_yields_zero() {
        let i = eq2_current(
            Amps(1e-6),
            Volts(0.1),
            Volts(-1.0),
            Volts(0.4),
            1.5,
            Kelvin::ROOM,
        );
        assert_eq!(i.0, 0.0);
    }

    #[test]
    fn fig6_anchor_four_decades() {
        // Fig. 6: V_T 0.448 V → 0.084 V is "~4 Dec" of off-current change.
        // That implies S ≈ 0.364/4 ≈ 91 mV/dec.
        let n = ideality_for_slope(Volts(0.091), Kelvin::ROOM);
        let decades = decades_per_vt_shift(Volts(0.448 - 0.084), n, Kelvin::ROOM);
        assert!((decades - 4.0).abs() < 0.05, "decades = {decades}");
    }

    #[test]
    fn checked_variant_rejects_non_physical_inputs() {
        let ok = checked_eq2_current(
            Amps(1e-6),
            Volts(0.1),
            Volts(1.0),
            Volts(0.4),
            1.5,
            Kelvin::ROOM,
        );
        assert!(ok.is_ok());
        assert!(matches!(
            checked_eq2_current(
                Amps(f64::NAN),
                Volts(0.1),
                Volts(1.0),
                Volts(0.4),
                1.5,
                Kelvin::ROOM
            ),
            Err(DeviceError::NonFinite { .. })
        ));
        assert!(matches!(
            checked_eq2_current(
                Amps(-1e-6),
                Volts(0.1),
                Volts(1.0),
                Volts(0.4),
                1.5,
                Kelvin::ROOM
            ),
            Err(DeviceError::InvalidParameter {
                name: "prefactor",
                ..
            })
        ));
        assert!(checked_eq2_current(
            Amps(1e-6),
            Volts(0.1),
            Volts(1.0),
            Volts(0.4),
            0.0,
            Kelvin::ROOM
        )
        .is_err());
        assert!(checked_eq2_current(
            Amps(1e-6),
            Volts(0.1),
            Volts(1.0),
            Volts(0.4),
            1.5,
            Kelvin(0.0)
        )
        .is_err());
        // A gate overdrive of thousands of volts overflows the exponent.
        assert!(matches!(
            checked_eq2_current(
                Amps(1e-6),
                Volts(1e5),
                Volts(1.0),
                Volts(0.4),
                1.0,
                Kelvin::ROOM
            ),
            Err(DeviceError::NonFinite {
                what: "subthreshold current",
                ..
            })
        ));
    }

    #[test]
    fn prefactor_scales_linearly() {
        let a = eq2_current(
            Amps(1e-6),
            Volts(0.1),
            Volts(1.0),
            Volts(0.4),
            1.5,
            Kelvin::ROOM,
        );
        let b = eq2_current(
            Amps(3e-6),
            Volts(0.1),
            Volts(1.0),
            Volts(0.4),
            1.5,
            Kelvin::ROOM,
        );
        assert!((b.0 / a.0 - 3.0).abs() < 1e-12);
    }
}
