//! Sakurai–Newton alpha-power-law drive-current model.
//!
//! Short-channel devices are velocity-saturated, so the saturation current
//! grows as `(V_gs − V_T)^α` with `α` between 1 (full velocity saturation)
//! and 2 (long-channel square law). This is the standard model behind
//! voltage-scaling delay analyses — including the fixed-throughput
//! `V_DD`/`V_T` trade-off of the paper's Figs. 3–4 — because the delay of a
//! gate is `t_d ∝ C_L·V_DD / I_Dsat(V_DD)`.

use crate::error::DeviceError;
use crate::units::{Amps, Micrometers, Volts};

/// Alpha-power-law drive model for a device (or a characterised gate's
/// effective pull-down path).
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaPowerLaw {
    /// Velocity-saturation index `α` (1 ≤ α ≤ 2).
    alpha: f64,
    /// Drivability factor `P_c` in A per metre of width per V^α.
    drivability: f64,
    /// Drain-saturation-voltage factor `P_v` in V^(1−α/2).
    vsat_factor: f64,
    /// Device width.
    width: Micrometers,
}

/// Default velocity-saturation index for a half-micron-class process; the
/// original alpha-power-law paper extracted α ≈ 1.3 for such devices.
pub const DEFAULT_ALPHA: f64 = 1.3;

/// Default drivability factor `P_c` (A / µm / V^α). Chosen so a 2 µm-wide
/// device delivers ≈0.3 mA at `V_gs − V_T = 1 V`, typical of a 0.5 µm
/// process.
pub const DEFAULT_DRIVABILITY: f64 = 150e-6;

/// Default saturation-voltage factor `P_v` (V^(1−α/2)): `V_dsat ≈ 0.6 V`
/// at 1 V of overdrive.
pub const DEFAULT_VSAT_FACTOR: f64 = 0.6;

impl AlphaPowerLaw {
    /// Model with the default half-micron-class parameters and the given
    /// width.
    #[must_use]
    pub fn with_width(width: Micrometers) -> AlphaPowerLaw {
        AlphaPowerLaw {
            alpha: DEFAULT_ALPHA,
            drivability: DEFAULT_DRIVABILITY,
            vsat_factor: DEFAULT_VSAT_FACTOR,
            width,
        }
    }

    /// Fully-specified constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `alpha` is outside
    /// `[1, 2]` or any factor is non-positive.
    pub fn new(
        alpha: f64,
        drivability: f64,
        vsat_factor: f64,
        width: Micrometers,
    ) -> Result<AlphaPowerLaw, DeviceError> {
        if !(1.0..=2.0).contains(&alpha) {
            return Err(DeviceError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must lie in [1, 2]",
            });
        }
        if drivability <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "drivability",
                value: drivability,
                constraint: "must be positive",
            });
        }
        if vsat_factor <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "vsat_factor",
                value: vsat_factor,
                constraint: "must be positive",
            });
        }
        if width.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "width",
                value: width.0,
                constraint: "must be positive",
            });
        }
        Ok(AlphaPowerLaw {
            alpha,
            drivability,
            vsat_factor,
            width,
        })
    }

    /// Velocity-saturation index `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Device width.
    #[must_use]
    pub fn width(&self) -> Micrometers {
        self.width
    }

    /// Saturation drain current `I_Dsat = P_c·W·(V_gs − V_T)^α`, zero when
    /// the overdrive is non-positive.
    #[must_use]
    pub fn saturation_current(&self, vgs: Volts, vt: Volts) -> Amps {
        let overdrive = vgs.0 - vt.0;
        if overdrive <= 0.0 {
            return Amps::ZERO;
        }
        Amps(self.drivability * self.width.0 * overdrive.powf(self.alpha))
    }

    /// Drain saturation voltage `V_dsat = P_v·(V_gs − V_T)^(α/2)`.
    #[must_use]
    pub fn saturation_voltage(&self, vgs: Volts, vt: Volts) -> Volts {
        let overdrive = (vgs.0 - vt.0).max(0.0);
        Volts(self.vsat_factor * overdrive.powf(self.alpha / 2.0))
    }

    /// Drain current including the triode (linear) region:
    /// `I_D = I_Dsat·(2 − V_ds/V_dsat)·(V_ds/V_dsat)` below `V_dsat`.
    #[must_use]
    pub fn drain_current(&self, vgs: Volts, vds: Volts, vt: Volts) -> Amps {
        let isat = self.saturation_current(vgs, vt);
        if isat.0 == 0.0 {
            return Amps::ZERO;
        }
        let vdsat = self.saturation_voltage(vgs, vt);
        if vds.0 >= vdsat.0 || vdsat.0 == 0.0 {
            isat
        } else {
            let x = vds.0 / vdsat.0;
            Amps(isat.0 * (2.0 - x) * x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AlphaPowerLaw {
        AlphaPowerLaw::with_width(Micrometers(2.0))
    }

    #[test]
    fn constructor_rejects_bad_alpha() {
        assert!(AlphaPowerLaw::new(0.9, 1e-4, 0.6, Micrometers(2.0)).is_err());
        assert!(AlphaPowerLaw::new(2.1, 1e-4, 0.6, Micrometers(2.0)).is_err());
        assert!(AlphaPowerLaw::new(1.3, -1.0, 0.6, Micrometers(2.0)).is_err());
        assert!(AlphaPowerLaw::new(1.3, 1e-4, 0.0, Micrometers(2.0)).is_err());
        assert!(AlphaPowerLaw::new(1.3, 1e-4, 0.6, Micrometers(0.0)).is_err());
        assert!(AlphaPowerLaw::new(1.3, 1e-4, 0.6, Micrometers(2.0)).is_ok());
    }

    #[test]
    fn zero_overdrive_means_zero_current() {
        let m = model();
        assert_eq!(m.saturation_current(Volts(0.4), Volts(0.4)), Amps::ZERO);
        assert_eq!(
            m.drain_current(Volts(0.2), Volts(1.0), Volts(0.4)),
            Amps::ZERO
        );
    }

    #[test]
    fn current_scales_with_overdrive_to_the_alpha() {
        let m = model();
        let i1 = m.saturation_current(Volts(1.4), Volts(0.4)).0;
        let i2 = m.saturation_current(Volts(2.4), Volts(0.4)).0;
        assert!((i2 / i1 - 2f64.powf(DEFAULT_ALPHA)).abs() < 1e-9);
    }

    #[test]
    fn triode_region_continuous_at_vdsat() {
        let m = model();
        let vgs = Volts(1.5);
        let vt = Volts(0.4);
        let vdsat = m.saturation_voltage(vgs, vt);
        let just_below = m.drain_current(vgs, Volts(vdsat.0 * 0.999_999), vt).0;
        let at = m.drain_current(vgs, vdsat, vt).0;
        assert!((just_below - at).abs() / at < 1e-4);
    }

    #[test]
    fn triode_current_rises_with_vds() {
        let m = model();
        let vgs = Volts(1.5);
        let vt = Volts(0.4);
        let lo = m.drain_current(vgs, Volts(0.05), vt).0;
        let hi = m.drain_current(vgs, Volts(0.2), vt).0;
        assert!(hi > lo);
    }

    #[test]
    fn default_magnitude_is_plausible() {
        // ~0.3 mA at 1 V overdrive for a 2 µm device.
        let m = model();
        let i = m.saturation_current(Volts(1.4), Volts(0.4)).0;
        assert!(i > 1e-4 && i < 1e-3, "i = {i}");
    }
}
