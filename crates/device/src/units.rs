//! Strongly-typed physical quantities.
//!
//! Each unit is a transparent `f64` newtype ([C-NEWTYPE]) so that a supply
//! voltage can never be passed where a capacitance is expected. Arithmetic
//! within a unit (`+`, `-`, scaling by `f64`) is provided for every type,
//! and the dimension-crossing products that the energy models need
//! (`V × A = W`, `W × s = J`, `F × V = C`, …) are implemented explicitly.
//!
//! ```
//! use lowvolt_device::units::{Volts, Farads, Joules};
//!
//! let vdd = Volts(1.5);
//! let c = Farads(20e-15);
//! let e: Joules = c * vdd * vdd; // C·V² switching energy
//! assert!((e.0 - 45e-15).abs() < 1e-18);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// `true` if the quantity is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electric current in amperes.
    Amps,
    "A"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);
unit!(
    /// Electric charge in coulombs.
    Coulombs,
    "C"
);
unit!(
    /// Length in micrometres (the natural unit for device geometry).
    Micrometers,
    "um"
);

impl Volts {
    /// Room-temperature-scale millivolt constructor for readability.
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Volts {
        Volts(mv * 1e-3)
    }
}

impl Farads {
    /// Femtofarad constructor (gate capacitances are naturally fF-scale).
    #[must_use]
    pub fn from_femtofarads(ff: f64) -> Farads {
        Farads(ff * 1e-15)
    }

    /// This capacitance expressed in femtofarads.
    #[must_use]
    pub fn to_femtofarads(self) -> f64 {
        self.0 * 1e15
    }
}

impl Seconds {
    /// Nanosecond constructor.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Seconds {
        Seconds(ns * 1e-9)
    }

    /// Picosecond constructor.
    #[must_use]
    pub fn from_picos(ps: f64) -> Seconds {
        Seconds(ps * 1e-12)
    }
}

impl Kelvin {
    /// Standard room temperature, 300 K.
    pub const ROOM: Kelvin = Kelvin(300.0);
}

// ---- dimension-crossing arithmetic ----

/// `P = V · I`
impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `P = I · V`
impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `E = P · t`
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `E = t · P`
impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `Q = C · V`
impl Mul<Volts> for Farads {
    type Output = Coulombs;
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

/// `E = Q · V` (completes the `C·V²` chain)
impl Mul<Volts> for Coulombs {
    type Output = Joules;
    fn mul(self, rhs: Volts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `Q = I · t`
impl Mul<Seconds> for Amps {
    type Output = Coulombs;
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

/// `I = Q / t`
impl Div<Seconds> for Coulombs {
    type Output = Amps;
    fn div(self, rhs: Seconds) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// `P = E / t`
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `t = E / P`
impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Hertz {
    /// Period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.0 != 0.0, "zero frequency has no period");
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// Frequency with this period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    #[must_use]
    pub fn frequency(self) -> Hertz {
        assert!(self.0 != 0.0, "zero period has no frequency");
        Hertz(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switching_energy_chain() {
        let e: Joules = Farads(10e-15) * Volts(2.0) * Volts(2.0);
        assert!((e.0 - 40e-15).abs() < 1e-20);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts(2.0) * Seconds(3.0);
        assert_eq!(e, Joules(6.0));
        let e2 = Seconds(3.0) * Watts(2.0);
        assert_eq!(e2, e);
    }

    #[test]
    fn leakage_energy_chain() {
        // I_leak · V_DD · t_cyc, as in the paper's Eq. 3.
        let e: Joules = (Amps(1e-9) * Volts(1.0)) * Seconds(1e-6);
        assert!((e.0 - 1e-15).abs() < 1e-24);
    }

    #[test]
    fn period_frequency_roundtrip() {
        let f = Hertz(1e6);
        assert!((f.period().frequency().0 - 1e6).abs() < 1e-3);
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        let r: f64 = Volts(3.0) / Volts(1.5);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Volts(0.5) < Volts(1.0));
        assert_eq!(Volts(0.5).max(Volts(1.0)), Volts(1.0));
        assert_eq!(Volts(0.5).min(Volts(1.0)), Volts(0.5));
        assert_eq!(Volts(-2.0).abs(), Volts(2.0));
    }

    #[test]
    fn sum_of_units() {
        let total: Farads = [Farads(1.0), Farads(2.5)].into_iter().sum();
        assert_eq!(total, Farads(3.5));
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(Volts(1.5).to_string(), "1.5 V");
        assert_eq!(Hertz(1e6).to_string(), "1000000 Hz");
    }

    #[test]
    fn convenience_constructors() {
        assert!((Volts::from_millivolts(250.0).0 - 0.25).abs() < 1e-15);
        assert!((Farads::from_femtofarads(33.0).0 - 33e-15).abs() < 1e-28);
        assert!((Farads(33e-15).to_femtofarads() - 33.0).abs() < 1e-9);
        assert!((Seconds::from_nanos(2.0).0 - 2e-9).abs() < 1e-20);
        assert!((Seconds::from_picos(42.0).0 - 42e-12).abs() < 1e-22);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Hertz(0.0).period();
    }
}
