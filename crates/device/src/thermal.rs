//! Thermal voltage and sub-threshold slope.
//!
//! The paper (§2) characterises sub-threshold conduction by the slope
//! `S_th`, "the amount of voltage required to drop the subthreshold current
//! by one decade", quoting typical room-temperature values of 60–90 mV per
//! decade with 60 mV/dec as the ideal lower limit.

use crate::units::{Kelvin, Volts};

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Thermal voltage `V_t = kT/q`.
///
/// At 300 K this is ≈ 25.85 mV.
///
/// ```
/// use lowvolt_device::thermal::thermal_voltage;
/// use lowvolt_device::units::Kelvin;
///
/// let vt = thermal_voltage(Kelvin::ROOM);
/// assert!((vt.0 - 0.02585).abs() < 1e-4);
/// ```
#[must_use]
pub fn thermal_voltage(temperature: Kelvin) -> Volts {
    Volts(BOLTZMANN * temperature.0 / ELEMENTARY_CHARGE)
}

/// Sub-threshold slope `S_th = n · V_t · ln(10)` in volts per decade of
/// current.
///
/// `n` is the sub-threshold ideality factor `1 + Ω·t_ox/D` from the paper's
/// Eq. 2 discussion; `n = 1` gives the ideal ≈60 mV/dec limit at room
/// temperature.
///
/// ```
/// use lowvolt_device::thermal::subthreshold_slope;
/// use lowvolt_device::units::Kelvin;
///
/// let ideal = subthreshold_slope(1.0, Kelvin::ROOM);
/// assert!((ideal.0 - 0.0595).abs() < 1e-3); // ≈60 mV/dec
/// let typical = subthreshold_slope(1.5, Kelvin::ROOM);
/// assert!((typical.0 - 0.0893).abs() < 1e-3); // ≈90 mV/dec
/// ```
#[must_use]
pub fn subthreshold_slope(ideality: f64, temperature: Kelvin) -> Volts {
    Volts(ideality * thermal_voltage(temperature).0 * std::f64::consts::LN_10)
}

/// Ideality factor `n` that yields a given sub-threshold slope at a given
/// temperature. Inverse of [`subthreshold_slope`].
#[must_use]
pub fn ideality_for_slope(slope: Volts, temperature: Kelvin) -> f64 {
    slope.0 / (thermal_voltage(temperature).0 * std::f64::consts::LN_10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn room_temperature_thermal_voltage() {
        let vt = thermal_voltage(Kelvin::ROOM);
        assert!((vt.0 - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn slope_bounds_match_paper() {
        // Paper: "typical values for S_th lie between 60 to 90 mV/(decade
        // current), with 60 mV/dec being the lower limit."
        let lower = subthreshold_slope(1.0, Kelvin::ROOM);
        let upper = subthreshold_slope(1.5, Kelvin::ROOM);
        assert!(lower.0 > 0.058 && lower.0 < 0.062);
        assert!(upper.0 > 0.086 && upper.0 < 0.092);
    }

    #[test]
    fn slope_scales_with_temperature() {
        let cold = subthreshold_slope(1.0, Kelvin(250.0));
        let hot = subthreshold_slope(1.0, Kelvin(400.0));
        assert!(hot.0 > cold.0);
        assert!((hot.0 / cold.0 - 400.0 / 250.0).abs() < 1e-9);
    }

    #[test]
    fn ideality_roundtrip() {
        for n in [1.0, 1.2, 1.5, 2.0] {
            let s = subthreshold_slope(n, Kelvin::ROOM);
            assert!((ideality_for_slope(s, Kelvin::ROOM) - n).abs() < 1e-12);
        }
    }
}
