//! SOIAS: silicon-on-insulator with active substrate (back gate).
//!
//! In a fully-depleted SOI film the front- and back-interface potentials
//! are coupled, so a voltage on the buried back gate shifts the front-gate
//! threshold *linearly* (Lim–Fossum model) — unlike the square-root bulk
//! body effect. The paper's Fig. 6 device moves its threshold from 0.448 V
//! (`V_gb = 0`) to 0.084 V (`V_gb = 3 V`), buying ~4 decades of off-current
//! reduction in standby and ~1.8× more drive current when active.

use crate::error::DeviceError;
use crate::mosfet::Mosfet;
use crate::units::{Farads, Micrometers, Volts};

/// Relative permittivity of SiO₂.
pub const EPS_OX: f64 = 3.9;

/// Relative permittivity of silicon.
pub const EPS_SI: f64 = 11.7;

/// Vacuum permittivity, F/m.
pub const EPS0: f64 = 8.854_187_8e-12;

/// Geometry of a fully-depleted SOIAS device stack (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoiasGeometry {
    /// Front-gate oxide thickness, nm.
    pub t_front_oxide_nm: f64,
    /// Silicon film thickness, nm.
    pub t_silicon_nm: f64,
    /// Buried (back) oxide thickness, nm.
    pub t_back_oxide_nm: f64,
}

impl SoiasGeometry {
    /// Geometry matching the paper's Fig. 6 device: `t_fox = 9 nm`,
    /// `t_si = 40 nm`, with the buried oxide chosen so the coupling ratio
    /// reproduces the measured ΔV_T = 0.364 V for ΔV_gb = 3 V
    /// (ratio ≈ 0.121).
    #[must_use]
    pub fn paper_fig6() -> SoiasGeometry {
        SoiasGeometry {
            t_front_oxide_nm: 9.0,
            t_silicon_nm: 40.0,
            t_back_oxide_nm: 60.0,
        }
    }

    /// Front-to-back threshold coupling ratio
    /// `r = (C_si·C_box) / (C_fox·(C_si + C_box))`
    /// where each `C` is the per-area capacitance of the corresponding
    /// layer. `dV_Tf/dV_gb = −r` while the film stays fully depleted.
    #[must_use]
    pub fn coupling_ratio(&self) -> f64 {
        let c_fox = EPS_OX / self.t_front_oxide_nm;
        let c_si = EPS_SI / self.t_silicon_nm;
        let c_box = EPS_OX / self.t_back_oxide_nm;
        (c_si * c_box) / (c_fox * (c_si + c_box))
    }

    /// Per-area back-gate capacitance seen by the back-gate driver
    /// (`C_box` in series with the silicon film), in F/m².
    #[must_use]
    pub fn back_gate_capacitance_per_area(&self) -> f64 {
        let c_si = EPS_SI * EPS0 / (self.t_silicon_nm * 1e-9);
        let c_box = EPS_OX * EPS0 / (self.t_back_oxide_nm * 1e-9);
        c_si * c_box / (c_si + c_box)
    }
}

/// A back-gated SOIAS device: a front-gate MOSFET whose threshold is set
/// by the back-gate bias.
///
/// ```
/// use lowvolt_device::soias::SoiasDevice;
/// use lowvolt_device::units::Volts;
///
/// let d = SoiasDevice::paper_fig6();
/// let active = d.front_device(Volts(3.0));   // low V_T: fast
/// let standby = d.front_device(Volts(0.0));  // high V_T: low leakage
/// let saving = standby.off_current(Volts(1.0)).0 / active.off_current(Volts(1.0)).0;
/// assert!(saving < 1e-3, "standby leaks orders of magnitude less");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SoiasDevice {
    geometry: SoiasGeometry,
    /// Threshold at zero back-gate bias (the high-V_T standby state).
    vt_at_zero_bias: Volts,
    /// Template front-gate transistor (geometry, transconductance, slope).
    template: Mosfet,
    /// Bias beyond which the back interface inverts and coupling stops.
    max_back_bias: Volts,
}

impl SoiasDevice {
    /// The paper's Fig. 6 NMOS device: `V_T(0 V) = 0.448 V`,
    /// `V_T(3 V) = 0.084 V`, `L_eff = 0.44 µm`, sub-threshold slope
    /// ≈ 90 mV/dec (the slope implied by the "~4 decades" annotation).
    #[must_use]
    pub fn paper_fig6() -> SoiasDevice {
        let geometry = SoiasGeometry::paper_fig6();
        let slope_ideality =
            crate::thermal::ideality_for_slope(Volts(0.091), crate::units::Kelvin::ROOM);
        SoiasDevice {
            geometry,
            vt_at_zero_bias: Volts(0.448),
            template: Mosfet::nmos_with_vt(Volts(0.448)).with_ideality(slope_ideality),
            max_back_bias: Volts(3.5),
        }
    }

    /// Creates a device from a geometry, standby threshold, and front-gate
    /// template transistor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any layer thickness is
    /// non-positive or `max_back_bias` is non-positive.
    pub fn new(
        geometry: SoiasGeometry,
        vt_at_zero_bias: Volts,
        template: Mosfet,
        max_back_bias: Volts,
    ) -> Result<SoiasDevice, DeviceError> {
        for (name, v) in [
            ("t_front_oxide_nm", geometry.t_front_oxide_nm),
            ("t_silicon_nm", geometry.t_silicon_nm),
            ("t_back_oxide_nm", geometry.t_back_oxide_nm),
        ] {
            if v <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be positive",
                });
            }
        }
        if max_back_bias.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "max_back_bias",
                value: max_back_bias.0,
                constraint: "must be positive",
            });
        }
        Ok(SoiasDevice {
            geometry,
            vt_at_zero_bias,
            template,
            max_back_bias,
        })
    }

    /// Device geometry.
    #[must_use]
    pub fn geometry(&self) -> SoiasGeometry {
        self.geometry
    }

    /// Front-gate threshold voltage at a given back-gate bias; linear in
    /// the bias (clamped at [`max_back_bias`](Self::new)) with slope
    /// `−coupling_ratio`.
    #[must_use]
    pub fn vt(&self, back_bias: Volts) -> Volts {
        let clamped = back_bias.0.clamp(0.0, self.max_back_bias.0);
        Volts(self.vt_at_zero_bias.0 - self.geometry.coupling_ratio() * clamped)
    }

    /// The front-gate transistor biased at a given back-gate voltage —
    /// i.e. the template device with its threshold shifted.
    #[must_use]
    pub fn front_device(&self, back_bias: Volts) -> Mosfet {
        self.template.clone().with_vt(self.vt(back_bias))
    }

    /// Back-gate capacitance for a block containing `total_gate_area_um2`
    /// of device area — the `C_bg` of the paper's Eq. 4 overhead term
    /// `bga·C_bg·V_bg²`.
    #[must_use]
    pub fn back_gate_capacitance(&self, total_gate_area_um2: f64) -> Farads {
        Farads(self.geometry.back_gate_capacitance_per_area() * total_gate_area_um2 * 1e-12)
    }

    /// Back-gate bias required to reach a target threshold.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::SolveFailed`] if the target is outside the
    /// reachable `[vt(max_bias), vt(0)]` range.
    pub fn bias_for_vt(&self, target: Volts) -> Result<Volts, DeviceError> {
        let lo = self.vt(self.max_back_bias);
        let hi = self.vt_at_zero_bias;
        if target.0 < lo.0 - 1e-12 || target.0 > hi.0 + 1e-12 {
            return Err(DeviceError::SolveFailed {
                what: "soias back-gate bias",
            });
        }
        Ok(Volts(
            (self.vt_at_zero_bias.0 - target.0) / self.geometry.coupling_ratio(),
        ))
    }

    /// Default channel length of the template device.
    #[must_use]
    pub fn channel_length(&self) -> Micrometers {
        self.template.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Volts;

    #[test]
    fn fig6_threshold_anchors() {
        let d = SoiasDevice::paper_fig6();
        assert!((d.vt(Volts(0.0)).0 - 0.448).abs() < 1e-9);
        // V_T(3 V) should land close to the measured 0.084 V.
        let vt3 = d.vt(Volts(3.0)).0;
        assert!((vt3 - 0.084).abs() < 0.02, "vt(3V) = {vt3}");
    }

    #[test]
    fn fig6_four_decades_of_off_current() {
        let d = SoiasDevice::paper_fig6();
        let standby = d.front_device(Volts(0.0)).off_current(Volts(1.0));
        let active = d.front_device(Volts(3.0)).off_current(Volts(1.0));
        let decades = (active.0 / standby.0).log10();
        assert!((decades - 4.0).abs() < 0.5, "decades = {decades}");
    }

    #[test]
    fn fig6_on_current_boost_at_1v() {
        // Paper: "an 80% switching current increase at 1 V operation"
        // (linear-region V_ds = 0.1 V measurement).
        let d = SoiasDevice::paper_fig6();
        let slow = d
            .front_device(Volts(0.0))
            .drain_current(Volts(1.0), Volts(0.1));
        let fast = d
            .front_device(Volts(3.0))
            .drain_current(Volts(1.0), Volts(0.1));
        let boost = fast.0 / slow.0;
        assert!(boost > 1.4 && boost < 2.3, "boost = {boost}");
    }

    #[test]
    fn coupling_ratio_matches_measured_shift() {
        let g = SoiasGeometry::paper_fig6();
        // ΔV_T = r·ΔV_gb: 0.364 V over 3 V → r ≈ 0.121.
        let r = g.coupling_ratio();
        assert!((r - 0.121).abs() < 0.01, "r = {r}");
    }

    #[test]
    fn bias_clamps_beyond_max() {
        let d = SoiasDevice::paper_fig6();
        assert_eq!(d.vt(Volts(100.0)), d.vt(Volts(3.5)));
        assert_eq!(d.vt(Volts(-5.0)), d.vt(Volts(0.0)));
    }

    #[test]
    fn bias_for_vt_roundtrips() {
        let d = SoiasDevice::paper_fig6();
        let bias = d.bias_for_vt(Volts(0.2)).expect("in range");
        assert!((d.vt(bias).0 - 0.2).abs() < 1e-12);
        assert!(d.bias_for_vt(Volts(0.9)).is_err());
        assert!(d.bias_for_vt(Volts(-0.5)).is_err());
    }

    #[test]
    fn back_gate_capacitance_scales_with_area() {
        let d = SoiasDevice::paper_fig6();
        let c1 = d.back_gate_capacitance(100.0);
        let c2 = d.back_gate_capacitance(200.0);
        assert!((c2.0 / c1.0 - 2.0).abs() < 1e-12);
        // ~0.05 fF/µm² scale: 100 µm² of gate area is a few fF.
        assert!(c1.to_femtofarads() > 1.0 && c1.to_femtofarads() < 100.0);
    }

    #[test]
    fn constructor_validates_geometry() {
        let bad = SoiasGeometry {
            t_front_oxide_nm: 0.0,
            t_silicon_nm: 40.0,
            t_back_oxide_nm: 60.0,
        };
        assert!(SoiasDevice::new(
            bad,
            Volts(0.45),
            Mosfet::nmos_with_vt(Volts(0.45)),
            Volts(3.0)
        )
        .is_err());
    }
}
