#![warn(missing_docs)]

//! # lowvolt-device
//!
//! Device-physics substrate for low-voltage digital design: analytic MOSFET
//! models sufficient to reproduce the device-level arguments of
//! Chandrakasan et al., *"Design Considerations and Tools for Low-voltage
//! Digital System Design"* (DAC 1996).
//!
//! The crate provides:
//!
//! - strongly-typed physical [`units`],
//! - the exponential sub-threshold conduction law of the paper's Eq. 2
//!   ([`subthreshold`]),
//! - a unified EKV-style DC drain-current model smooth across weak and
//!   strong inversion ([`mosfet::Mosfet::drain_current`]),
//! - the Sakurai–Newton alpha-power-law drive-current and gate-delay models
//!   used for voltage-scaling studies ([`on_current`], [`delay`]),
//! - bulk body effect and SOIAS back-gate threshold coupling ([`body`],
//!   [`soias`]),
//! - voltage-dependent gate/junction capacitance ([`capacitance`]), and
//! - technology descriptors tying these together ([`technology`]).
//!
//! # Example
//!
//! Reproduce the paper's Fig. 2 observation that lowering `V_T` from 0.4 V
//! to 0.25 V raises the off-current by orders of magnitude:
//!
//! ```
//! use lowvolt_device::units::Volts;
//! use lowvolt_device::mosfet::Mosfet;
//!
//! let lo = Mosfet::nmos_with_vt(Volts(0.25));
//! let hi = Mosfet::nmos_with_vt(Volts(0.40));
//! let off_lo = lo.drain_current(Volts(0.0), Volts(1.0));
//! let off_hi = hi.drain_current(Volts(0.0), Volts(1.0));
//! assert!(off_lo.0 > 50.0 * off_hi.0);
//! ```

pub mod body;
pub mod capacitance;
pub mod corners;
pub mod delay;
pub mod error;
pub mod mosfet;
pub mod on_current;
pub mod soias;
pub mod stack;
pub mod subthreshold;
pub mod technology;
pub mod thermal;
pub mod units;

pub use error::DeviceError;
pub use mosfet::{Mosfet, Polarity};
pub use technology::Technology;
