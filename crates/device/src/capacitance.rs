//! Voltage-dependent load-capacitance models.
//!
//! The paper's Fig. 1 shows that the *switched* capacitance of real
//! registers rises with `V_DD`, "attributed to the increase in gate
//! capacitance with voltage", and concludes that "it is necessary to take
//! capacitive non-linearities into account for accurate estimation of
//! power consumption".
//!
//! The mechanism: a MOS gate in depletion (below threshold) presents only
//! the series combination of `C_ox` and the depletion capacitance; once
//! inverted it presents the full `C_ox`. A digital node swinging `0→V_DD`
//! therefore spends a larger fraction of its swing at full `C_ox` as
//! `V_DD` grows, so the *swing-averaged* (effective switched) capacitance
//! increases with supply. Junction capacitance works the other way
//! (reverse bias widens the depletion region), but the gate term dominates.

use crate::error::DeviceError;
use crate::units::{Farads, Volts};

/// Oxide capacitance per unit area for a 9 nm gate oxide, fF/µm².
pub const COX_PER_AREA_FF_UM2: f64 = 3.84;

/// A voltage-dependent MOS gate capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCapacitance {
    /// Full inversion/accumulation capacitance `C_ox · area`.
    c_ox: Farads,
    /// Threshold voltage at which the channel inverts.
    vt: Volts,
    /// Depletion-region capacitance as a fraction of `C_ox` (0 < f < 1).
    depletion_fraction: f64,
    /// Width of the depletion→inversion transition, volts.
    transition_width: Volts,
}

impl GateCapacitance {
    /// Gate capacitance of `area_um2` µm² of 9 nm-oxide gate with a given
    /// threshold, using typical depletion parameters.
    #[must_use]
    pub fn from_area(area_um2: f64, vt: Volts) -> GateCapacitance {
        GateCapacitance {
            c_ox: Farads::from_femtofarads(COX_PER_AREA_FF_UM2 * area_um2),
            vt,
            depletion_fraction: 0.45,
            transition_width: Volts(0.12),
        }
    }

    /// Fully-specified constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `c_ox` or
    /// `transition_width` is non-positive, or `depletion_fraction` is
    /// outside `(0, 1)`.
    pub fn new(
        c_ox: Farads,
        vt: Volts,
        depletion_fraction: f64,
        transition_width: Volts,
    ) -> Result<GateCapacitance, DeviceError> {
        if c_ox.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "c_ox",
                value: c_ox.0,
                constraint: "must be positive",
            });
        }
        if !(0.0 < depletion_fraction && depletion_fraction < 1.0) {
            return Err(DeviceError::InvalidParameter {
                name: "depletion_fraction",
                value: depletion_fraction,
                constraint: "must lie in (0, 1)",
            });
        }
        if transition_width.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "transition_width",
                value: transition_width.0,
                constraint: "must be positive",
            });
        }
        Ok(GateCapacitance {
            c_ox,
            vt,
            depletion_fraction,
            transition_width,
        })
    }

    /// Full-inversion capacitance.
    #[must_use]
    pub fn c_ox(&self) -> Farads {
        self.c_ox
    }

    /// Small-signal gate capacitance at a gate bias `v`:
    /// a logistic blend from the depleted value to full `C_ox` centred at
    /// the threshold voltage.
    #[must_use]
    pub fn at_bias(&self, v: Volts) -> Farads {
        let x = (v.0 - self.vt.0) / self.transition_width.0;
        let sigmoid = 1.0 / (1.0 + (-x).exp());
        Farads(self.c_ox.0 * (self.depletion_fraction + (1.0 - self.depletion_fraction) * sigmoid))
    }

    /// Effective *switched* capacitance for a full `0 → V_DD` swing: the
    /// swing average `(1/V_DD)·∫₀^{V_DD} C(v) dv`, evaluated analytically.
    ///
    /// Monotonically non-decreasing in `V_DD` — the Fig. 1 effect.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive.
    #[must_use]
    pub fn effective_switched(&self, vdd: Volts) -> Farads {
        assert!(vdd.0 > 0.0, "swing must be positive");
        let w = self.transition_width.0;
        // ∫ sigmoid((v−vt)/w) dv = w·softplus((v−vt)/w)
        let softplus = |x: f64| if x > 34.0 { x } else { x.exp().ln_1p() };
        let integral_sigmoid =
            w * (softplus((vdd.0 - self.vt.0) / w) - softplus((0.0 - self.vt.0) / w));
        let avg =
            self.depletion_fraction + (1.0 - self.depletion_fraction) * integral_sigmoid / vdd.0;
        Farads(self.c_ox.0 * avg)
    }
}

/// A reverse-biased junction (drain/source diffusion) capacitance
/// `C_j(V) = C_j0 / (1 + V/φ_b)^m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JunctionCapacitance {
    /// Zero-bias capacitance.
    c_j0: Farads,
    /// Built-in potential `φ_b`.
    builtin: Volts,
    /// Grading coefficient `m` (0.3 for graded, 0.5 for abrupt junctions).
    grading: f64,
}

impl JunctionCapacitance {
    /// Junction with typical built-in potential (0.9 V) and grading (0.5).
    #[must_use]
    pub fn with_c_j0(c_j0: Farads) -> JunctionCapacitance {
        JunctionCapacitance {
            c_j0,
            builtin: Volts(0.9),
            grading: 0.5,
        }
    }

    /// Fully-specified constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `c_j0` or `builtin` is
    /// non-positive or `grading` is outside `(0, 1)`.
    pub fn new(
        c_j0: Farads,
        builtin: Volts,
        grading: f64,
    ) -> Result<JunctionCapacitance, DeviceError> {
        if c_j0.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "c_j0",
                value: c_j0.0,
                constraint: "must be positive",
            });
        }
        if builtin.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "builtin",
                value: builtin.0,
                constraint: "must be positive",
            });
        }
        if !(0.0 < grading && grading < 1.0) {
            return Err(DeviceError::InvalidParameter {
                name: "grading",
                value: grading,
                constraint: "must lie in (0, 1)",
            });
        }
        Ok(JunctionCapacitance {
            c_j0,
            builtin,
            grading,
        })
    }

    /// Small-signal junction capacitance at reverse bias `v ≥ 0`.
    #[must_use]
    pub fn at_bias(&self, v: Volts) -> Farads {
        Farads(self.c_j0.0 / (1.0 + v.0.max(0.0) / self.builtin.0).powf(self.grading))
    }

    /// Swing-averaged junction capacitance for a `0 → V_DD` node swing
    /// (analytic integral of the grading law). Decreases with `V_DD`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive.
    #[must_use]
    pub fn effective_switched(&self, vdd: Volts) -> Farads {
        assert!(vdd.0 > 0.0, "swing must be positive");
        let m = self.grading;
        let phi = self.builtin.0;
        // ∫₀^V C_j0 (1+v/φ)^(−m) dv = C_j0·φ/(1−m)·[(1+V/φ)^(1−m) − 1]
        let integral = self.c_j0.0 * phi / (1.0 - m) * ((1.0 + vdd.0 / phi).powf(1.0 - m) - 1.0);
        Farads(integral / vdd.0)
    }
}

/// The total capacitance hanging on a circuit node: MOS gates driven by
/// the node, junctions of devices whose drains connect to it, and fixed
/// interconnect capacitance.
///
/// This is the paper's non-linear `C_L` decomposition "consisting of gate,
/// junction, and interconnect components".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeCapacitance {
    /// Gate loads driven by this node.
    pub gates: Vec<GateCapacitance>,
    /// Junction loads on this node.
    pub junctions: Vec<JunctionCapacitance>,
    /// Bias-independent wiring capacitance.
    pub wire: Farads,
}

impl NodeCapacitance {
    /// An empty node-capacitance bundle.
    #[must_use]
    pub fn new() -> NodeCapacitance {
        NodeCapacitance::default()
    }

    /// Adds a gate load (builder style).
    #[must_use]
    pub fn with_gate(mut self, g: GateCapacitance) -> NodeCapacitance {
        self.gates.push(g);
        self
    }

    /// Adds a junction load (builder style).
    #[must_use]
    pub fn with_junction(mut self, j: JunctionCapacitance) -> NodeCapacitance {
        self.junctions.push(j);
        self
    }

    /// Sets the wire capacitance (builder style).
    #[must_use]
    pub fn with_wire(mut self, wire: Farads) -> NodeCapacitance {
        self.wire = wire;
        self
    }

    /// Effective switched capacitance of the node for a full-rail swing at
    /// the given supply.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive.
    #[must_use]
    pub fn effective_switched(&self, vdd: Volts) -> Farads {
        let gate: f64 = self.gates.iter().map(|g| g.effective_switched(vdd).0).sum();
        let junction: f64 = self
            .junctions
            .iter()
            .map(|j| j.effective_switched(vdd).0)
            .sum();
        Farads(gate + junction + self.wire.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_cap_rises_through_threshold() {
        let g = GateCapacitance::from_area(10.0, Volts(0.5));
        let below = g.at_bias(Volts(0.0)).0;
        let above = g.at_bias(Volts(1.5)).0;
        assert!(above > 1.5 * below);
        assert!((above - g.c_ox().0).abs() / g.c_ox().0 < 0.01);
    }

    #[test]
    fn effective_gate_cap_increases_with_vdd() {
        // The Fig. 1 effect.
        let g = GateCapacitance::from_area(10.0, Volts(0.6));
        let mut prev = 0.0;
        for vdd in [1.0, 1.5, 2.0, 2.5, 3.0] {
            let c = g.effective_switched(Volts(vdd)).0;
            assert!(c > prev, "effective cap must rise with vdd");
            prev = c;
        }
    }

    #[test]
    fn effective_gate_cap_bounded_by_cox() {
        let g = GateCapacitance::from_area(10.0, Volts(0.6));
        for vdd in [0.5, 1.0, 2.0, 3.0] {
            let c = g.effective_switched(Volts(vdd)).0;
            assert!(c > g.c_ox().0 * 0.44);
            assert!(c < g.c_ox().0 * 1.000_001);
        }
    }

    #[test]
    fn effective_matches_numerical_integral() {
        let g = GateCapacitance::from_area(5.0, Volts(0.45));
        let vdd = 2.3;
        let steps = 20_000;
        let mut acc = 0.0;
        for i in 0..steps {
            let v = (i as f64 + 0.5) / steps as f64 * vdd;
            acc += g.at_bias(Volts(v)).0;
        }
        let numeric = acc / steps as f64;
        let analytic = g.effective_switched(Volts(vdd)).0;
        assert!((numeric - analytic).abs() / analytic < 1e-4);
    }

    #[test]
    fn junction_cap_falls_with_bias_and_vdd() {
        let j = JunctionCapacitance::with_c_j0(Farads::from_femtofarads(5.0));
        assert!(j.at_bias(Volts(2.0)).0 < j.at_bias(Volts(0.0)).0);
        assert!(j.effective_switched(Volts(3.0)).0 < j.effective_switched(Volts(1.0)).0);
    }

    #[test]
    fn junction_effective_matches_numerical_integral() {
        let j = JunctionCapacitance::with_c_j0(Farads::from_femtofarads(5.0));
        let vdd = 2.0;
        let steps = 20_000;
        let mut acc = 0.0;
        for i in 0..steps {
            let v = (i as f64 + 0.5) / steps as f64 * vdd;
            acc += j.at_bias(Volts(v)).0;
        }
        let numeric = acc / steps as f64;
        let analytic = j.effective_switched(Volts(vdd)).0;
        assert!((numeric - analytic).abs() / analytic < 1e-4);
    }

    #[test]
    fn node_cap_sums_components() {
        let node = NodeCapacitance::new()
            .with_gate(GateCapacitance::from_area(10.0, Volts(0.5)))
            .with_junction(JunctionCapacitance::with_c_j0(Farads::from_femtofarads(
                4.0,
            )))
            .with_wire(Farads::from_femtofarads(2.0));
        let c = node.effective_switched(Volts(1.5));
        assert!(c.to_femtofarads() > 2.0);
        // Must exceed the wire alone and be below the zero-bias sum + wire.
        let upper = 10.0 * COX_PER_AREA_FF_UM2 + 4.0 + 2.0;
        assert!(c.to_femtofarads() < upper);
    }

    #[test]
    fn constructors_validate() {
        assert!(GateCapacitance::new(Farads(0.0), Volts(0.5), 0.4, Volts(0.1)).is_err());
        assert!(GateCapacitance::new(Farads(1e-15), Volts(0.5), 1.5, Volts(0.1)).is_err());
        assert!(GateCapacitance::new(Farads(1e-15), Volts(0.5), 0.4, Volts(0.0)).is_err());
        assert!(JunctionCapacitance::new(Farads(0.0), Volts(0.9), 0.5).is_err());
        assert!(JunctionCapacitance::new(Farads(1e-15), Volts(0.0), 0.5).is_err());
        assert!(JunctionCapacitance::new(Farads(1e-15), Volts(0.9), 1.2).is_err());
    }

    #[test]
    #[should_panic(expected = "swing must be positive")]
    fn zero_swing_panics() {
        let g = GateCapacitance::from_area(10.0, Volts(0.5));
        let _ = g.effective_switched(Volts(0.0));
    }
}
