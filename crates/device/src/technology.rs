//! Technology descriptors for the leakage-control options of the paper's §4.
//!
//! A [`Technology`] answers, for a block of logic, four questions that the
//! burst-mode energy models need:
//!
//! 1. what is the device threshold (and hence leakage and speed) while the
//!    block is **active**,
//! 2. what is the threshold/leakage while the block is **idle**,
//! 3. what voltage swing and capacitance does toggling between the two
//!    states cost (the `bga·C_bg·V_bg²` overhead of Eq. 4), and
//! 4. what is the drive current available for delay estimation.
//!
//! Four concrete constructions cover the paper's §4 options: fixed-V_T SOI
//! (the baseline of Eq. 3), back-gated SOIAS, multi-threshold CMOS sleep
//! transistors, and substrate-biased triple-well bulk.

use crate::body::BodyEffect;
use crate::error::DeviceError;
use crate::mosfet::Mosfet;
use crate::soias::SoiasDevice;
use crate::units::{Amps, Farads, Micrometers, Volts};

/// Which §4 leakage-control mechanism a technology uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechnologyKind {
    /// Fixed low threshold, no standby control (conventional SOI; Eq. 3).
    SoiFixedVt,
    /// Back-gated SOIAS dynamic threshold (Eq. 4).
    Soias,
    /// Multi-threshold CMOS: low-V_T logic gated by high-V_T sleep devices.
    Mtcmos,
    /// Triple-well bulk CMOS with dynamic substrate bias.
    SubstrateBias,
}

impl std::fmt::Display for TechnologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TechnologyKind::SoiFixedVt => "soi-fixed-vt",
            TechnologyKind::Soias => "soias",
            TechnologyKind::Mtcmos => "mtcmos",
            TechnologyKind::SubstrateBias => "substrate-bias",
        };
        write!(f, "{s}")
    }
}

/// A process/circuit technology option for one block of logic.
///
/// ```
/// use lowvolt_device::technology::Technology;
/// use lowvolt_device::soias::SoiasDevice;
/// use lowvolt_device::units::Volts;
///
/// let soias = Technology::soias(SoiasDevice::paper_fig6(), Volts(3.0))?;
/// // Standby leakage is orders of magnitude below active leakage:
/// let active = soias.active_off_current_per_um(Volts(1.0)).0;
/// let standby = soias.standby_off_current_per_um(Volts(1.0)).0;
/// assert!(standby < active / 1000.0);
/// # Ok::<(), lowvolt_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    name: String,
    kind: TechnologyKind,
    active_device: Mosfet,
    standby_device: Mosfet,
    /// Voltage swing on the control node when entering/leaving standby.
    control_swing: Volts,
    /// Control-node capacitance per µm² of controlled gate area, F/µm².
    control_cap_per_area: f64,
}

/// Fraction of a block's gate area spent on MTCMOS sleep devices; sleep
/// transistors are sized around 5–20 % of the gated logic in practice.
pub const MTCMOS_SLEEP_AREA_FRACTION: f64 = 0.10;

/// Well capacitance per µm² of block area for substrate-bias control,
/// F/µm². Wells are large-area junctions, so this is the dominant cost of
/// the substrate-bias approach.
pub const WELL_CAP_PER_AREA: f64 = 0.8e-15;

impl Technology {
    /// Conventional SOI with a fixed (low) threshold — the paper's `E_SOI`
    /// baseline. No standby state: the standby device equals the active
    /// device and the control swing is zero.
    #[must_use]
    pub fn soi_fixed_vt(vt: Volts) -> Technology {
        let device = Mosfet::nmos_with_vt(vt);
        Technology {
            name: format!("soi-fixed-vt({} mV)", (vt.0 * 1e3).round()),
            kind: TechnologyKind::SoiFixedVt,
            active_device: device.clone(),
            standby_device: device,
            control_swing: Volts::ZERO,
            control_cap_per_area: 0.0,
        }
    }

    /// Conventional fixed-V_T SOI built from an explicit device — use
    /// this to form an apples-to-apples Eq. 3 baseline sharing the exact
    /// device (threshold, slope, geometry) of another technology's active
    /// state.
    #[must_use]
    pub fn soi_fixed_vt_device(device: Mosfet) -> Technology {
        Technology {
            name: format!("soi-fixed-vt({} mV)", (device.vt0().0 * 1e3).round()),
            kind: TechnologyKind::SoiFixedVt,
            active_device: device.clone(),
            standby_device: device,
            control_swing: Volts::ZERO,
            control_cap_per_area: 0.0,
        }
    }

    /// Back-gated SOIAS: active at `active_back_bias` (low V_T), standby
    /// at zero back bias (high V_T).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the bias is not
    /// positive (a zero bias would make active and standby identical).
    pub fn soias(device: SoiasDevice, active_back_bias: Volts) -> Result<Technology, DeviceError> {
        if active_back_bias.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "active_back_bias",
                value: active_back_bias.0,
                constraint: "must be positive",
            });
        }
        Ok(Technology {
            name: format!("soias(bias {} V)", active_back_bias.0),
            kind: TechnologyKind::Soias,
            active_device: device.front_device(active_back_bias),
            standby_device: device.front_device(Volts::ZERO),
            control_swing: active_back_bias,
            control_cap_per_area: device.geometry().back_gate_capacitance_per_area() * 1e-12,
        })
    }

    /// Multi-threshold CMOS: logic built from `low_vt` devices, gated by
    /// series `high_vt` sleep transistors. In standby the sleep device's
    /// sub-threshold current bounds the block leakage; the control cost is
    /// switching the sleep transistors' gates through the full supply.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `high_vt ≤ low_vt`.
    pub fn mtcmos(low_vt: Volts, high_vt: Volts, vdd: Volts) -> Result<Technology, DeviceError> {
        if high_vt.0 <= low_vt.0 {
            return Err(DeviceError::InvalidParameter {
                name: "high_vt",
                value: high_vt.0,
                constraint: "must exceed low_vt",
            });
        }
        let sleep_gate_cap =
            crate::capacitance::COX_PER_AREA_FF_UM2 * 1e-15 * MTCMOS_SLEEP_AREA_FRACTION;
        Ok(Technology {
            name: format!(
                "mtcmos({}/{} mV)",
                (low_vt.0 * 1e3).round(),
                (high_vt.0 * 1e3).round()
            ),
            kind: TechnologyKind::Mtcmos,
            active_device: Mosfet::nmos_with_vt(low_vt),
            standby_device: Mosfet::nmos_with_vt(high_vt),
            control_swing: vdd,
            control_cap_per_area: sleep_gate_cap,
        })
    }

    /// Triple-well bulk CMOS with dynamic substrate bias: active at zero
    /// body bias, standby with `standby_bias` of reverse bias raising the
    /// threshold through the square-root body effect.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `standby_bias` is not
    /// positive.
    pub fn substrate_bias(
        body: BodyEffect,
        standby_bias: Volts,
    ) -> Result<Technology, DeviceError> {
        if standby_bias.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "standby_bias",
                value: standby_bias.0,
                constraint: "must be positive",
            });
        }
        Ok(Technology {
            name: format!("substrate-bias({} V)", standby_bias.0),
            kind: TechnologyKind::SubstrateBias,
            active_device: Mosfet::nmos_with_vt(body.vt0()),
            standby_device: Mosfet::nmos_with_vt(body.vt(standby_bias)),
            control_swing: standby_bias,
            control_cap_per_area: WELL_CAP_PER_AREA,
        })
    }

    /// Human-readable technology name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which control mechanism this technology uses.
    #[must_use]
    pub fn kind(&self) -> TechnologyKind {
        self.kind
    }

    /// The representative device while the block is active.
    #[must_use]
    pub fn active_device(&self) -> &Mosfet {
        &self.active_device
    }

    /// The representative device (or series-limiting device) in standby.
    #[must_use]
    pub fn standby_device(&self) -> &Mosfet {
        &self.standby_device
    }

    /// Threshold voltage during active operation.
    #[must_use]
    pub fn active_vt(&self) -> Volts {
        self.active_device.vt0()
    }

    /// Effective threshold voltage in standby.
    #[must_use]
    pub fn standby_vt(&self) -> Volts {
        self.standby_device.vt0()
    }

    /// Active-state off-current per µm of transistor width — the
    /// `I_leak(low)` of Eqs. 3–4, width-normalised.
    #[must_use]
    pub fn active_off_current_per_um(&self, vdd: Volts) -> Amps {
        Amps(self.active_device.off_current(vdd).0 / self.active_device.width().0)
    }

    /// Standby off-current per µm of width — the `I_leak(high)` of Eq. 4.
    #[must_use]
    pub fn standby_off_current_per_um(&self, vdd: Volts) -> Amps {
        Amps(self.standby_device.off_current(vdd).0 / self.standby_device.width().0)
    }

    /// Capacitance of the standby-control node for a block with the given
    /// total gate area — the `C_bg` of Eq. 4 (or sleep-gate / well
    /// capacitance for the other mechanisms).
    #[must_use]
    pub fn control_capacitance(&self, gate_area_um2: f64) -> Farads {
        Farads(self.control_cap_per_area * gate_area_um2)
    }

    /// Voltage swing of the standby-control node (`V_bg` of Eq. 4).
    #[must_use]
    pub fn control_swing(&self) -> Volts {
        self.control_swing
    }

    /// Whether this technology has a distinct standby state at all.
    #[must_use]
    pub fn has_standby_mode(&self) -> bool {
        self.kind != TechnologyKind::SoiFixedVt
    }

    /// Channel length of the active device.
    #[must_use]
    pub fn channel_length(&self) -> Micrometers {
        self.active_device.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soi_has_no_standby() {
        let t = Technology::soi_fixed_vt(Volts(0.2));
        assert!(!t.has_standby_mode());
        assert_eq!(t.active_vt(), t.standby_vt());
        assert_eq!(t.control_swing(), Volts::ZERO);
        assert_eq!(t.control_capacitance(1000.0), Farads::ZERO);
    }

    #[test]
    fn soias_standby_is_much_less_leaky() {
        let t = Technology::soias(SoiasDevice::paper_fig6(), Volts(3.0)).expect("valid");
        let active = t.active_off_current_per_um(Volts(1.0)).0;
        let standby = t.standby_off_current_per_um(Volts(1.0)).0;
        assert!(
            standby < active * 1e-3,
            "active={active}, standby={standby}"
        );
        assert!(t.has_standby_mode());
        assert!(t.control_capacitance(100.0).0 > 0.0);
    }

    #[test]
    fn mtcmos_orders_thresholds() {
        assert!(Technology::mtcmos(Volts(0.4), Volts(0.2), Volts(1.0)).is_err());
        let t = Technology::mtcmos(Volts(0.2), Volts(0.55), Volts(1.0)).expect("valid");
        assert!(t.standby_vt() > t.active_vt());
        assert_eq!(t.control_swing(), Volts(1.0));
    }

    #[test]
    fn substrate_bias_raises_standby_vt_by_sqrt_law() {
        let body = BodyEffect::with_vt0(Volts(0.25));
        let t = Technology::substrate_bias(body, Volts(2.0)).expect("valid");
        assert!(t.standby_vt() > t.active_vt());
        // The square-root law buys only a few hundred mV for 2 V of bias.
        let shift = t.standby_vt().0 - t.active_vt().0;
        assert!(shift > 0.1 && shift < 0.5, "shift = {shift}");
    }

    #[test]
    fn well_cap_exceeds_soias_back_gate_cap() {
        // The paper prefers SOIAS partly because the back-gate control
        // capacitance is small; a well is a large junction.
        let soias = Technology::soias(SoiasDevice::paper_fig6(), Volts(3.0)).expect("valid");
        let bulk = Technology::substrate_bias(BodyEffect::with_vt0(Volts(0.25)), Volts(2.0))
            .expect("valid");
        assert!(bulk.control_capacitance(100.0).0 > soias.control_capacitance(100.0).0);
    }

    #[test]
    fn invalid_biases_rejected() {
        assert!(Technology::soias(SoiasDevice::paper_fig6(), Volts(0.0)).is_err());
        assert!(
            Technology::substrate_bias(BodyEffect::with_vt0(Volts(0.25)), Volts(-1.0)).is_err()
        );
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(TechnologyKind::SoiFixedVt.to_string(), "soi-fixed-vt");
        assert_eq!(TechnologyKind::Soias.to_string(), "soias");
        assert_eq!(TechnologyKind::Mtcmos.to_string(), "mtcmos");
        assert_eq!(TechnologyKind::SubstrateBias.to_string(), "substrate-bias");
    }
}
