//! Alpha-power-law gate-delay model.
//!
//! A CMOS stage driving load `C_L` switches in
//! `t_d = k_d · C_L · V_DD / I_Dsat(V_DD)`, which with the alpha-power law
//! becomes the familiar
//!
//! ```text
//!     t_d = k · C_L · V_DD / (V_DD − V_T)^α
//! ```
//!
//! This expression is the engine behind the paper's Figs. 3–4: holding
//! `t_d` constant defines the iso-performance contour `V_DD(V_T)`, along
//! which switching energy falls but leakage rises as `V_T` is reduced.

use crate::error::DeviceError;
use crate::on_current::AlphaPowerLaw;
use crate::units::{Farads, Seconds, Volts};

/// Gate-delay model for a stage with a given drive and load.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDelay {
    drive: AlphaPowerLaw,
    load: Farads,
    /// Dimensionless delay fitting coefficient (≈0.5 for the 50 % swing
    /// point of a step-driven stage).
    k_delay: f64,
}

impl StageDelay {
    /// Creates a stage-delay model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `load` or `k_delay` is
    /// non-positive, or [`DeviceError::NonFinite`] if either is NaN or
    /// infinite (note `NaN <= 0.0` is false, so the range check alone
    /// would wave NaN through).
    pub fn new(
        drive: AlphaPowerLaw,
        load: Farads,
        k_delay: f64,
    ) -> Result<StageDelay, DeviceError> {
        if !load.0.is_finite() {
            return Err(DeviceError::NonFinite {
                what: "load",
                value: load.0,
            });
        }
        if load.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "load",
                value: load.0,
                constraint: "must be positive",
            });
        }
        if !k_delay.is_finite() {
            return Err(DeviceError::NonFinite {
                what: "k_delay",
                value: k_delay,
            });
        }
        if k_delay <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "k_delay",
                value: k_delay,
                constraint: "must be positive",
            });
        }
        Ok(StageDelay {
            drive,
            load,
            k_delay,
        })
    }

    /// The drive model.
    #[must_use]
    pub fn drive(&self) -> &AlphaPowerLaw {
        &self.drive
    }

    /// The load capacitance.
    #[must_use]
    pub fn load(&self) -> Farads {
        self.load
    }

    /// Propagation delay at the given supply and threshold.
    ///
    /// Returns `Seconds(f64::INFINITY)` when `V_DD ≤ V_T` (the gate cannot
    /// switch; the device never turns on above threshold).
    #[must_use]
    pub fn delay(&self, vdd: Volts, vt: Volts) -> Seconds {
        let isat = self.drive.saturation_current(vdd, vt);
        if isat.0 <= 0.0 {
            return Seconds(f64::INFINITY);
        }
        Seconds(self.k_delay * self.load.0 * vdd.0 / isat.0)
    }

    /// Solves for the supply voltage that achieves a target delay at a
    /// given threshold — one point of the paper's Fig. 3 iso-delay curve.
    ///
    /// Uses bisection over `V_DD ∈ (V_T, v_max]`; the delay is strictly
    /// decreasing in `V_DD` over that interval for `α > 1`, so the root is
    /// unique when it exists.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::SolveFailed`] if even `v_max` cannot meet the
    /// target delay.
    pub fn supply_for_delay(
        &self,
        target: Seconds,
        vt: Volts,
        v_max: Volts,
    ) -> Result<Volts, DeviceError> {
        let fail = DeviceError::SolveFailed {
            what: "iso-delay vdd",
        };
        if !target.0.is_finite() {
            return Err(DeviceError::NonFinite {
                what: "target delay",
                value: target.0,
            });
        }
        if target.0 <= 0.0 || self.delay(v_max, vt).0 > target.0 {
            return Err(fail);
        }
        let mut lo = vt.0.max(0.0) + 1e-9;
        let mut hi = v_max.0;
        // delay(lo) is huge, delay(hi) <= target: bisect on delay - target.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.delay(Volts(mid), vt).0 > target.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let v = Volts(0.5 * (lo + hi));
        if self.delay(v, vt).is_finite() {
            Ok(v)
        } else {
            Err(fail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::on_current::AlphaPowerLaw;
    use crate::units::Micrometers;

    fn stage() -> StageDelay {
        StageDelay::new(
            AlphaPowerLaw::with_width(Micrometers(2.0)),
            Farads::from_femtofarads(20.0),
            0.5,
        )
        .expect("valid stage")
    }

    #[test]
    fn constructor_validates() {
        let d = AlphaPowerLaw::with_width(Micrometers(2.0));
        assert!(StageDelay::new(d.clone(), Farads(0.0), 0.5).is_err());
        assert!(StageDelay::new(d.clone(), Farads(1e-15), -1.0).is_err());
        assert!(matches!(
            StageDelay::new(d.clone(), Farads(f64::NAN), 0.5),
            Err(DeviceError::NonFinite { .. })
        ));
        assert!(matches!(
            StageDelay::new(d, Farads(1e-15), f64::INFINITY),
            Err(DeviceError::NonFinite { .. })
        ));
    }

    #[test]
    fn delay_decreases_with_supply() {
        let s = stage();
        let d1 = s.delay(Volts(1.0), Volts(0.4));
        let d2 = s.delay(Volts(2.0), Volts(0.4));
        assert!(d2 < d1);
    }

    #[test]
    fn delay_increases_with_threshold() {
        let s = stage();
        let d1 = s.delay(Volts(1.0), Volts(0.2));
        let d2 = s.delay(Volts(1.0), Volts(0.6));
        assert!(d2 > d1);
    }

    #[test]
    fn below_threshold_delay_is_infinite() {
        let s = stage();
        assert!(s.delay(Volts(0.3), Volts(0.4)).0.is_infinite());
    }

    #[test]
    fn iso_delay_solve_roundtrips() {
        let s = stage();
        let vt = Volts(0.35);
        let vdd = Volts(1.3);
        let t = s.delay(vdd, vt);
        let solved = s.supply_for_delay(t, vt, Volts(3.3)).expect("solvable");
        assert!((solved.0 - vdd.0).abs() < 1e-6, "solved = {solved}");
    }

    #[test]
    fn iso_delay_supply_falls_as_vt_falls() {
        // The essence of the paper's Fig. 3.
        let s = stage();
        let target = s.delay(Volts(2.0), Volts(0.6));
        let mut prev = f64::INFINITY;
        for vt_mv in [600.0, 450.0, 300.0, 150.0, 50.0] {
            let v = s
                .supply_for_delay(target, Volts(vt_mv * 1e-3), Volts(3.3))
                .expect("solvable");
            assert!(v.0 < prev, "vdd should fall monotonically with vt");
            prev = v.0;
        }
    }

    #[test]
    fn unreachable_delay_errors() {
        let s = stage();
        assert!(s
            .supply_for_delay(Seconds(1e-18), Volts(0.4), Volts(3.3))
            .is_err());
        assert!(s
            .supply_for_delay(Seconds(0.0), Volts(0.4), Volts(3.3))
            .is_err());
        assert!(matches!(
            s.supply_for_delay(Seconds(f64::NAN), Volts(0.4), Volts(3.3)),
            Err(DeviceError::NonFinite { .. })
        ));
    }
}
