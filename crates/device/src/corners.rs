//! Process corners and environmental conditions.
//!
//! Low-voltage design margins are corner-dominated: at `V_DD` near `V_T`,
//! a ±50 mV threshold shift moves delay by tens of percent and leakage by
//! an order of magnitude. The corner model perturbs a nominal device by
//! the classic slow/typical/fast parameter shifts and an operating
//! temperature, so every higher-level analysis can be re-run across
//! corners.

use crate::error::DeviceError;
use crate::mosfet::Mosfet;
use crate::units::{Kelvin, Volts};

/// A classic three-corner process model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Slow process: high `V_T`, low transconductance.
    Slow,
    /// Typical process.
    Typical,
    /// Fast process: low `V_T`, high transconductance.
    Fast,
}

impl Corner {
    /// All corners, slow to fast.
    pub const ALL: [Corner; 3] = [Corner::Slow, Corner::Typical, Corner::Fast];

    /// Threshold-voltage shift applied to the nominal device.
    #[must_use]
    pub fn vt_shift(self) -> Volts {
        match self {
            Corner::Slow => Volts(0.05),
            Corner::Typical => Volts(0.0),
            Corner::Fast => Volts(-0.05),
        }
    }

    /// Transconductance multiplier applied to the nominal device.
    #[must_use]
    pub fn k_prime_factor(self) -> f64 {
        match self {
            Corner::Slow => 0.85,
            Corner::Typical => 1.0,
            Corner::Fast => 1.15,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Corner::Slow => "slow",
            Corner::Typical => "typical",
            Corner::Fast => "fast",
        }
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// An operating condition: process corner plus junction temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Condition {
    /// Process corner.
    pub corner: Corner,
    /// Junction temperature.
    pub temperature: Kelvin,
}

impl Condition {
    /// Nominal: typical process at room temperature.
    #[must_use]
    pub fn nominal() -> Condition {
        Condition {
            corner: Corner::Typical,
            temperature: Kelvin::ROOM,
        }
    }

    /// The worst *leakage* condition: fast process, hot junction.
    #[must_use]
    pub fn worst_leakage() -> Condition {
        Condition {
            corner: Corner::Fast,
            temperature: Kelvin(358.0), // 85 °C
        }
    }

    /// The worst *speed* condition: slow process, hot junction (mobility-
    /// limited regime typical of the era's supply levels).
    #[must_use]
    pub fn worst_speed() -> Condition {
        Condition {
            corner: Corner::Slow,
            temperature: Kelvin(358.0),
        }
    }

    /// Applies this condition to a nominal device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the corner shift
    /// pushes the device's parameters out of their valid range — not
    /// possible for devices built by this crate's constructors, but a
    /// hand-built near-boundary device is rejected rather than panicked
    /// on.
    pub fn apply(&self, nominal: &Mosfet) -> Result<Mosfet, DeviceError> {
        let vt = Volts(nominal.vt0().0 + self.corner.vt_shift().0);
        Ok(Mosfet::new(
            nominal.polarity(),
            vt,
            nominal.ideality(),
            nominal.width(),
            nominal.length(),
            nominal.k_prime() * self.corner.k_prime_factor(),
        )?
        .at_temperature(self.temperature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> Mosfet {
        Mosfet::nmos_with_vt(Volts(0.25))
    }

    #[test]
    fn corner_ordering_on_current() {
        let vdd = Volts(1.0);
        let on = |c: Corner| {
            Condition {
                corner: c,
                temperature: Kelvin::ROOM,
            }
            .apply(&nominal())
            .unwrap()
            .on_current(vdd)
            .0
        };
        assert!(on(Corner::Slow) < on(Corner::Typical));
        assert!(on(Corner::Typical) < on(Corner::Fast));
    }

    #[test]
    fn corner_ordering_leakage() {
        let off = |c: Corner| {
            Condition {
                corner: c,
                temperature: Kelvin::ROOM,
            }
            .apply(&nominal())
            .unwrap()
            .off_current(Volts(1.0))
            .0
        };
        // A 100 mV slow→fast V_T swing is >1 decade of leakage.
        assert!(off(Corner::Fast) > 10.0 * off(Corner::Slow));
    }

    #[test]
    fn worst_leakage_condition_dominates() {
        let nominal_leak = Condition::nominal()
            .apply(&nominal())
            .unwrap()
            .off_current(Volts(1.0))
            .0;
        let worst_leak = Condition::worst_leakage()
            .apply(&nominal())
            .unwrap()
            .off_current(Volts(1.0))
            .0;
        assert!(
            worst_leak > 10.0 * nominal_leak,
            "fast+hot: {worst_leak} vs nominal {nominal_leak}"
        );
    }

    #[test]
    fn worst_speed_condition_is_slowest() {
        // Compare drive at a low supply where V_T dominates.
        let vdd = Volts(0.8);
        let nominal_on = Condition::nominal()
            .apply(&nominal())
            .unwrap()
            .on_current(vdd)
            .0;
        let worst_on = Condition::worst_speed()
            .apply(&nominal())
            .unwrap()
            .on_current(vdd)
            .0;
        assert!(worst_on < nominal_on);
    }

    #[test]
    fn names_and_shift_signs() {
        assert_eq!(Corner::Slow.to_string(), "slow");
        assert!(Corner::Slow.vt_shift().0 > 0.0);
        assert!(Corner::Fast.vt_shift().0 < 0.0);
        assert_eq!(Corner::Typical.k_prime_factor(), 1.0);
        assert_eq!(Condition::nominal().corner, Corner::Typical);
    }
}
