//! MOSFET device description and unified DC drain-current model.
//!
//! The drain current uses the EKV interpolation, which is smooth and
//! physically correct across weak inversion (the exponential sub-threshold
//! law of the paper's Eq. 2), moderate inversion, and strong inversion
//! (square law), in both the linear and saturation drain regimes. This is
//! the model behind the I–V figures (paper Figs. 2 and 6).
//!
//! The separate alpha-power-law model in [`crate::on_current`] is used for
//! delay/energy estimation, where velocity saturation matters more than
//! smoothness.

use crate::error::DeviceError;
use crate::subthreshold;
use crate::thermal::thermal_voltage;
use crate::units::{Amps, Kelvin, Micrometers, Volts};

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// n-channel device.
    Nmos,
    /// p-channel device.
    Pmos,
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::Nmos => write!(f, "nmos"),
            Polarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// An analytic MOSFET.
///
/// All voltages supplied to the evaluation methods are *source-referenced
/// magnitudes*: for a PMOS device pass `|V_gs|` and `|V_ds|`. The polarity
/// tag selects default transconductance and lets circuit layers distinguish
/// pull-up from pull-down networks.
///
/// ```
/// use lowvolt_device::mosfet::Mosfet;
/// use lowvolt_device::units::Volts;
///
/// let m = Mosfet::nmos_with_vt(Volts(0.4));
/// // Sub-threshold current grows exponentially with V_gs:
/// let i1 = m.drain_current(Volts(0.10), Volts(1.0));
/// let i2 = m.drain_current(Volts(0.20), Volts(1.0));
/// assert!(i2.0 / i1.0 > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet {
    polarity: Polarity,
    vt0: Volts,
    ideality: f64,
    width: Micrometers,
    length: Micrometers,
    /// Process transconductance `µ·C_ox` in A/V².
    k_prime: f64,
    /// Channel-length-modulation coefficient, 1/V.
    lambda: f64,
    /// Drain-induced barrier lowering coefficient η, V/V: the effective
    /// threshold drops by `η·V_ds`. Zero by default (long-channel).
    dibl: f64,
    temperature: Kelvin,
}

/// Default drawn channel length, matching the paper's Fig. 6 device
/// (`L_eff = 0.44 µm`).
pub const DEFAULT_LENGTH: Micrometers = Micrometers(0.44);

/// Default device width.
pub const DEFAULT_WIDTH: Micrometers = Micrometers(2.0);

/// Default NMOS process transconductance `µ_n·C_ox`, A/V².
pub const DEFAULT_KPRIME_NMOS: f64 = 100e-6;

/// Default PMOS process transconductance `µ_p·C_ox`, A/V².
pub const DEFAULT_KPRIME_PMOS: f64 = 40e-6;

/// Default sub-threshold ideality factor (S ≈ 80 mV/dec at 300 K, inside
/// the paper's quoted 60–90 mV/dec range).
pub const DEFAULT_IDEALITY: f64 = 1.35;

impl Mosfet {
    /// Creates an NMOS device with the default geometry and the given
    /// zero-bias threshold voltage.
    #[must_use]
    pub fn nmos_with_vt(vt0: Volts) -> Mosfet {
        Mosfet {
            polarity: Polarity::Nmos,
            vt0,
            ideality: DEFAULT_IDEALITY,
            width: DEFAULT_WIDTH,
            length: DEFAULT_LENGTH,
            k_prime: DEFAULT_KPRIME_NMOS,
            lambda: 0.0,
            dibl: 0.0,
            temperature: Kelvin::ROOM,
        }
    }

    /// Creates a PMOS device with the default geometry and the given
    /// zero-bias threshold-voltage *magnitude*.
    #[must_use]
    pub fn pmos_with_vt(vt0: Volts) -> Mosfet {
        Mosfet {
            polarity: Polarity::Pmos,
            k_prime: DEFAULT_KPRIME_PMOS,
            ..Mosfet::nmos_with_vt(vt0)
        }
    }

    /// Fully-specified constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any of the geometry or
    /// process parameters is non-positive, if `ideality < 1`, or if `vt0`
    /// lies outside the plausible `[-1 V, +2 V]` range.
    pub fn new(
        polarity: Polarity,
        vt0: Volts,
        ideality: f64,
        width: Micrometers,
        length: Micrometers,
        k_prime: f64,
    ) -> Result<Mosfet, DeviceError> {
        if !(-1.0..=2.0).contains(&vt0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "vt0",
                value: vt0.0,
                constraint: "must lie in [-1 V, 2 V]",
            });
        }
        if ideality < 1.0 || !ideality.is_finite() {
            return Err(DeviceError::InvalidParameter {
                name: "ideality",
                value: ideality,
                constraint: "must be >= 1",
            });
        }
        if width.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "width",
                value: width.0,
                constraint: "must be positive",
            });
        }
        if length.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "length",
                value: length.0,
                constraint: "must be positive",
            });
        }
        if k_prime <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "k_prime",
                value: k_prime,
                constraint: "must be positive",
            });
        }
        Ok(Mosfet {
            polarity,
            vt0,
            ideality,
            width,
            length,
            k_prime,
            lambda: 0.0,
            dibl: 0.0,
            temperature: Kelvin::ROOM,
        })
    }

    /// Returns a copy with the given threshold voltage.
    #[must_use]
    pub fn with_vt(mut self, vt0: Volts) -> Mosfet {
        self.vt0 = vt0;
        self
    }

    /// Returns a copy with the given sub-threshold ideality factor.
    ///
    /// # Panics
    ///
    /// Panics if `ideality < 1`.
    #[must_use]
    pub fn with_ideality(mut self, ideality: f64) -> Mosfet {
        assert!(ideality >= 1.0, "ideality factor must be >= 1");
        self.ideality = ideality;
        self
    }

    /// Returns a copy with the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive.
    #[must_use]
    pub fn with_width(mut self, width: Micrometers) -> Mosfet {
        assert!(width.0 > 0.0, "width must be positive");
        self.width = width;
        self
    }

    /// Returns a copy with the given channel-length-modulation coefficient.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Mosfet {
        self.lambda = lambda;
        self
    }

    /// Returns a copy with the given DIBL coefficient `η` (the effective
    /// threshold falls by `η·V_ds`, raising leakage at high drain bias —
    /// the short-channel effect that makes supply scaling itself a
    /// leakage lever).
    ///
    /// # Panics
    ///
    /// Panics if `dibl` is negative.
    #[must_use]
    pub fn with_dibl(mut self, dibl: f64) -> Mosfet {
        assert!(dibl >= 0.0, "dibl coefficient must be non-negative");
        self.dibl = dibl;
        self
    }

    /// Returns a copy evaluated at the given temperature.
    #[must_use]
    pub fn at_temperature(mut self, temperature: Kelvin) -> Mosfet {
        self.temperature = temperature;
        self
    }

    /// Channel polarity.
    #[must_use]
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Zero-bias threshold voltage.
    #[must_use]
    pub fn vt0(&self) -> Volts {
        self.vt0
    }

    /// Sub-threshold ideality factor `n`.
    #[must_use]
    pub fn ideality(&self) -> f64 {
        self.ideality
    }

    /// Device width.
    #[must_use]
    pub fn width(&self) -> Micrometers {
        self.width
    }

    /// Device length.
    #[must_use]
    pub fn length(&self) -> Micrometers {
        self.length
    }

    /// Process transconductance `µ·C_ox` in A/V².
    #[must_use]
    pub fn k_prime(&self) -> f64 {
        self.k_prime
    }

    /// Evaluation temperature.
    #[must_use]
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Aspect ratio `W/L`.
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        self.width.0 / self.length.0
    }

    /// EKV specific current `I_S = 2·n·µC_ox·(W/L)·V_t²`: the current scale
    /// at the boundary between weak and strong inversion.
    #[must_use]
    pub fn specific_current(&self) -> Amps {
        let vt = thermal_voltage(self.temperature).0;
        Amps(2.0 * self.ideality * self.k_prime * self.aspect_ratio() * vt * vt)
    }

    /// Unified DC drain current at a source-referenced bias point.
    ///
    /// Uses the EKV interpolation
    /// `I_D = I_S·(ln²(1+e^{(v_p)/(2V_t)}) − ln²(1+e^{(v_p−V_ds)/(2V_t)}))`
    /// with pinch-off voltage `v_p = (V_gs − V_T0)/n`, multiplied by the
    /// optional channel-length-modulation factor `(1 + λ·V_ds)`.
    ///
    /// In weak inversion this reduces to the paper's Eq. 2 exponential
    /// (including the `(1 − e^{−V_ds/V_t})` drain term); in strong
    /// inversion it reduces to the familiar square-law linear/saturation
    /// expressions.
    ///
    /// Negative `vds` values are clamped to zero (the model is
    /// source-referenced; swap terminals for reverse conduction).
    #[must_use]
    pub fn drain_current(&self, vgs: Volts, vds: Volts) -> Amps {
        let vds = vds.max(Volts::ZERO);
        let vt = thermal_voltage(self.temperature).0;
        let vt_eff = self.vt0.0 - self.dibl * vds.0;
        let vp = (vgs.0 - vt_eff) / self.ideality;
        let forward = softplus(vp / (2.0 * vt)).powi(2);
        let reverse = softplus((vp - vds.0) / (2.0 * vt)).powi(2);
        let clm = 1.0 + self.lambda * vds.0;
        Amps(self.specific_current().0 * (forward - reverse).max(0.0) * clm)
    }

    /// Off-state leakage current `I_D(V_gs = 0, V_ds = V_dd)`.
    ///
    /// This is the quantity the paper's leakage-energy terms
    /// (`I_leak(low)`, `I_leak(high)` in Eqs. 3–4) refer to.
    #[must_use]
    pub fn off_current(&self, vdd: Volts) -> Amps {
        self.drain_current(Volts::ZERO, vdd)
    }

    /// On-state current `I_D(V_gs = V_dd, V_ds = V_dd)` from the unified
    /// model. For delay estimation prefer
    /// [`crate::on_current::AlphaPowerLaw`], which models velocity
    /// saturation.
    #[must_use]
    pub fn on_current(&self, vdd: Volts) -> Amps {
        self.drain_current(vdd, vdd)
    }

    /// Sub-threshold slope of this device in volts per decade. See
    /// [`crate::thermal::subthreshold_slope`].
    #[must_use]
    pub fn subthreshold_slope(&self) -> Volts {
        crate::thermal::subthreshold_slope(self.ideality, self.temperature)
    }

    /// The idealised weak-inversion current of the paper's Eq. 2,
    /// `I = K·e^{(V_gs−V_T)/(n·V_t)}·(1 − e^{−V_ds/V_t})`, with `K` set to
    /// this device's specific current. Exposed for model cross-validation;
    /// [`Mosfet::drain_current`] agrees with it deep in weak inversion.
    #[must_use]
    pub fn eq2_subthreshold_current(&self, vgs: Volts, vds: Volts) -> Amps {
        subthreshold::eq2_current(
            self.specific_current(),
            vgs,
            vds,
            self.vt0,
            self.ideality,
            self.temperature,
        )
    }
}

/// Numerically-stable `ln(1 + e^x)`.
fn softplus(x: f64) -> f64 {
    if x > 34.0 {
        // e^x overflows the addition's significance long before f64 range.
        x
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos(vt: f64) -> Mosfet {
        Mosfet::nmos_with_vt(Volts(vt))
    }

    #[test]
    fn constructor_validates() {
        assert!(Mosfet::new(
            Polarity::Nmos,
            Volts(5.0),
            1.3,
            DEFAULT_WIDTH,
            DEFAULT_LENGTH,
            1e-4
        )
        .is_err());
        assert!(Mosfet::new(
            Polarity::Nmos,
            Volts(0.4),
            0.5,
            DEFAULT_WIDTH,
            DEFAULT_LENGTH,
            1e-4
        )
        .is_err());
        assert!(Mosfet::new(
            Polarity::Nmos,
            Volts(0.4),
            1.3,
            Micrometers(-1.0),
            DEFAULT_LENGTH,
            1e-4
        )
        .is_err());
        assert!(Mosfet::new(
            Polarity::Nmos,
            Volts(0.4),
            1.3,
            DEFAULT_WIDTH,
            DEFAULT_LENGTH,
            0.0
        )
        .is_err());
        assert!(Mosfet::new(
            Polarity::Pmos,
            Volts(0.4),
            1.3,
            DEFAULT_WIDTH,
            DEFAULT_LENGTH,
            4e-5
        )
        .is_ok());
    }

    #[test]
    fn subthreshold_is_exponential_with_correct_slope() {
        let m = nmos(0.4);
        // One slope-voltage increase in V_gs must raise current ~10x.
        let s = m.subthreshold_slope().0;
        let i1 = m.drain_current(Volts(0.05), Volts(1.0));
        let i2 = m.drain_current(Volts(0.05 + s), Volts(1.0));
        let ratio = i2.0 / i1.0;
        assert!((ratio - 10.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn matches_eq2_deep_in_weak_inversion() {
        let m = nmos(0.5);
        for vgs in [0.0, 0.1, 0.2] {
            let unified = m.drain_current(Volts(vgs), Volts(1.0)).0;
            let eq2 = m.eq2_subthreshold_current(Volts(vgs), Volts(1.0)).0;
            // EKV's ln²(1+e^{x/2}) ≈ e^x/... agrees with the pure
            // exponential to within a few percent deep below threshold.
            let rel = (unified - eq2).abs() / eq2;
            assert!(rel < 0.10, "vgs={vgs}: unified={unified}, eq2={eq2}");
        }
    }

    #[test]
    fn strong_inversion_square_law_saturation() {
        let m = nmos(0.4);
        // Saturation current should scale ~quadratically with overdrive.
        let i1 = m.drain_current(Volts(1.4), Volts(2.0)).0;
        let i2 = m.drain_current(Volts(2.4), Volts(3.0)).0;
        let ratio = i2 / i1; // (2/1)² = 4 expected
        assert!((ratio - 4.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn linear_region_current_proportional_to_vds() {
        let m = nmos(0.4);
        let i1 = m.drain_current(Volts(1.5), Volts(0.05)).0;
        let i2 = m.drain_current(Volts(1.5), Volts(0.10)).0;
        let ratio = i2 / i1;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn off_current_drops_about_a_decade_per_slope_of_vt() {
        let m_lo = nmos(0.25);
        let m_hi = nmos(0.40);
        let decades = (m_lo.off_current(Volts(1.0)).0 / m_hi.off_current(Volts(1.0)).0).log10();
        let expected = 0.15 / m_lo.subthreshold_slope().0;
        assert!(
            (decades - expected).abs() < 0.1,
            "decades = {decades}, expected = {expected}"
        );
    }

    #[test]
    fn saturation_current_independent_of_vds_without_clm() {
        let m = nmos(0.4);
        let i1 = m.drain_current(Volts(1.0), Volts(1.5)).0;
        let i2 = m.drain_current(Volts(1.0), Volts(3.0)).0;
        assert!((i1 - i2).abs() / i1 < 1e-6);
    }

    #[test]
    fn clm_raises_saturation_current() {
        let m = nmos(0.4).with_lambda(0.1);
        let i1 = m.drain_current(Volts(1.0), Volts(1.5)).0;
        let i2 = m.drain_current(Volts(1.0), Volts(3.0)).0;
        assert!(i2 > i1);
    }

    #[test]
    fn negative_vds_clamps_to_zero_current() {
        let m = nmos(0.4);
        assert_eq!(m.drain_current(Volts(1.0), Volts(-0.5)).0, 0.0);
    }

    #[test]
    fn width_scales_current_linearly() {
        let m1 = nmos(0.4);
        let m2 = nmos(0.4).with_width(Micrometers(4.0));
        let r = m2.on_current(Volts(1.0)).0 / m1.on_current(Volts(1.0)).0;
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pmos_has_lower_transconductance_by_default() {
        let n = Mosfet::nmos_with_vt(Volts(0.4));
        let p = Mosfet::pmos_with_vt(Volts(0.4));
        assert!(p.on_current(Volts(1.5)).0 < n.on_current(Volts(1.5)).0);
        assert_eq!(p.polarity(), Polarity::Pmos);
    }

    #[test]
    fn hotter_device_leaks_more() {
        let cold = nmos(0.4).at_temperature(Kelvin(300.0));
        let hot = nmos(0.4).at_temperature(Kelvin(360.0));
        assert!(hot.off_current(Volts(1.0)).0 > 5.0 * cold.off_current(Volts(1.0)).0);
    }

    #[test]
    fn softplus_stable_for_large_inputs() {
        assert_eq!(softplus(1000.0), 1000.0);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(softplus(-50.0) > 0.0);
        assert!(softplus(-50.0) < 1e-20);
    }
}

#[cfg(test)]
mod dibl_tests {
    use super::*;

    #[test]
    fn dibl_raises_leakage_with_drain_bias() {
        let plain = Mosfet::nmos_with_vt(Volts(0.3));
        let short = Mosfet::nmos_with_vt(Volts(0.3)).with_dibl(0.08);
        // At low V_ds the two agree; at high V_ds the DIBL device leaks
        // an order of magnitude more.
        let lo_ratio = short.off_current(Volts(0.1)).0 / plain.off_current(Volts(0.1)).0;
        let hi_ratio = short.off_current(Volts(2.0)).0 / plain.off_current(Volts(2.0)).0;
        assert!(lo_ratio < 1.5, "lo_ratio = {lo_ratio}");
        assert!(hi_ratio > 10.0, "hi_ratio = {hi_ratio}");
    }

    #[test]
    fn dibl_makes_supply_scaling_a_leakage_lever() {
        // With DIBL, halving V_DD cuts leakage super-linearly — one more
        // reason the paper's voltage scaling saves energy.
        let short = Mosfet::nmos_with_vt(Volts(0.3)).with_dibl(0.08);
        let high = short.off_current(Volts(2.0)).0;
        let low = short.off_current(Volts(1.0)).0;
        assert!(high / low > 5.0, "ratio = {}", high / low);
    }

    #[test]
    #[should_panic(expected = "dibl coefficient")]
    fn negative_dibl_rejected() {
        let _ = Mosfet::nmos_with_vt(Volts(0.3)).with_dibl(-0.1);
    }
}
