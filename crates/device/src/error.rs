//! Error type for device-model construction and evaluation.

use std::error::Error;
use std::fmt;

/// Error returned when a device model is constructed with, or evaluated at,
/// a non-physical operating point.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A model parameter is outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be positive"`.
        constraint: &'static str,
    },
    /// A bias-point solve failed to converge.
    SolveFailed {
        /// What was being solved for.
        what: &'static str,
    },
    /// A model evaluation produced (or was handed) a non-finite number —
    /// the checked-numerics guard on the device layer.
    NonFinite {
        /// Which quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            DeviceError::SolveFailed { what } => {
                write!(f, "bias solve failed to converge for {what}")
            }
            DeviceError::NonFinite { what, value } => {
                write!(
                    f,
                    "non-finite {what} = {value}: model inputs and outputs must be finite"
                )
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DeviceError::InvalidParameter {
            name: "vt0",
            value: -3.0,
            constraint: "must lie within the supply range",
        };
        let s = e.to_string();
        assert!(s.contains("vt0"));
        assert!(s.contains("-3"));
        let e2 = DeviceError::SolveFailed {
            what: "iso-delay vdd",
        };
        assert!(e2.to_string().contains("iso-delay vdd"));
        let e3 = DeviceError::NonFinite {
            what: "stage delay",
            value: f64::INFINITY,
        };
        assert!(e3.to_string().contains("stage delay"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
