//! The transistor-stack effect on sub-threshold leakage.
//!
//! Two series OFF devices leak roughly an order of magnitude less than
//! one: the intermediate node floats up until the top device sees a
//! negative V_gs and both see reduced V_ds. This self-reverse-biasing is
//! why MTCMOS sleep devices and stacked NAND pull-downs are such
//! effective leakage limiters, and quantifying it lets the §4 technology
//! comparison treat gate topologies honestly.
//!
//! The effect is DIBL-driven: with a long-channel (zero-DIBL) device the
//! factor is a modest ~2× (only the top device's negative V_gs helps);
//! with a realistic short-channel DIBL coefficient the reduced V_ds of
//! both devices raises their effective thresholds and the classic ~10×
//! appears.

use crate::error::DeviceError;
use crate::mosfet::Mosfet;
use crate::units::{Amps, Volts};

/// Result of a two-device stack leakage solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackLeakage {
    /// Equilibrium voltage of the intermediate node.
    pub intermediate: Volts,
    /// Leakage current through the stack.
    pub current: Amps,
    /// Reduction factor relative to a single off device at full `V_dd`.
    pub reduction_factor: f64,
}

/// Solves the leakage of two identical series OFF devices (both gates at
/// 0 V) across a supply `vdd`.
///
/// The intermediate node settles where the top device's current
/// (`V_gs = −V_x`, `V_ds = V_dd − V_x`) equals the bottom's (`V_gs = 0`,
/// `V_ds = V_x`); solved by bisection, both sides being monotone in
/// `V_x` in opposite directions.
///
/// # Errors
///
/// Returns [`DeviceError::InvalidParameter`] if `vdd` is not positive.
pub fn two_stack_leakage(device: &Mosfet, vdd: Volts) -> Result<StackLeakage, DeviceError> {
    if vdd.0 <= 0.0 {
        return Err(DeviceError::InvalidParameter {
            name: "vdd",
            value: vdd.0,
            constraint: "must be positive",
        });
    }
    let top = |vx: f64| device.drain_current(Volts(-vx), Volts(vdd.0 - vx)).0;
    let bottom = |vx: f64| device.drain_current(Volts::ZERO, Volts(vx)).0;
    // At vx = 0 the top conducts more (full V_ds, zero V_gs) and the
    // bottom none; at vx = vdd the reverse. Bisect on the difference.
    let (mut lo, mut hi) = (0.0f64, vdd.0);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if top(mid) > bottom(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let vx = 0.5 * (lo + hi);
    let current = Amps(bottom(vx).max(top(vx)));
    let single = device.off_current(vdd);
    Ok(StackLeakage {
        intermediate: Volts(vx),
        current,
        reduction_factor: single.0 / current.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Mosfet {
        // A short-channel device: the stack effect is DIBL-driven.
        Mosfet::nmos_with_vt(Volts(0.2)).with_dibl(0.07)
    }

    #[test]
    fn stack_leaks_much_less_than_single_device() {
        let s = two_stack_leakage(&device(), Volts(1.0)).expect("solves");
        assert!(
            s.reduction_factor > 5.0 && s.reduction_factor < 100.0,
            "factor = {}",
            s.reduction_factor
        );
    }

    #[test]
    fn intermediate_node_floats_to_a_small_positive_voltage() {
        let s = two_stack_leakage(&device(), Volts(1.0)).expect("solves");
        // The classic result: V_x settles around 50-150 mV.
        assert!(
            s.intermediate.0 > 0.01 && s.intermediate.0 < 0.3,
            "vx = {}",
            s.intermediate
        );
    }

    #[test]
    fn currents_balance_at_equilibrium() {
        let d = device();
        let s = two_stack_leakage(&d, Volts(1.2)).expect("solves");
        let top = d
            .drain_current(Volts(-s.intermediate.0), Volts(1.2 - s.intermediate.0))
            .0;
        let bottom = d.drain_current(Volts::ZERO, s.intermediate).0;
        assert!((top - bottom).abs() / bottom < 1e-6);
    }

    #[test]
    fn reduction_ordering_and_dibl_dependence() {
        // Lower threshold still leaks more in absolute terms, and the
        // long-channel (no-DIBL) stack factor is much smaller.
        let lo = two_stack_leakage(
            &Mosfet::nmos_with_vt(Volts(0.1)).with_dibl(0.07),
            Volts(1.0),
        )
        .unwrap();
        let hi = two_stack_leakage(
            &Mosfet::nmos_with_vt(Volts(0.4)).with_dibl(0.07),
            Volts(1.0),
        )
        .unwrap();
        assert!(
            lo.current.0 > hi.current.0,
            "absolute leakage still ordered"
        );
        let long_channel =
            two_stack_leakage(&Mosfet::nmos_with_vt(Volts(0.2)), Volts(1.0)).unwrap();
        assert!(
            long_channel.reduction_factor < 3.0,
            "no DIBL, small factor: {}",
            long_channel.reduction_factor
        );
        assert!(lo.reduction_factor > long_channel.reduction_factor);
    }

    #[test]
    fn invalid_supply_rejected() {
        assert!(two_stack_leakage(&device(), Volts(0.0)).is_err());
        assert!(two_stack_leakage(&device(), Volts(-1.0)).is_err());
    }
}
