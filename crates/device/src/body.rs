//! Bulk-CMOS body (substrate-bias) effect.
//!
//! The paper (§4) describes dynamically raising `V_T` during idle periods
//! by reverse-biasing the substrate, and notes the key drawback: "the
//! threshold voltage changes in a square root fashion with respect to
//! source to bulk voltage and therefore a large voltage may be required to
//! change V_T by a few hundred mV". This module implements exactly that
//! square-root law so the trade-off can be quantified.

use crate::error::DeviceError;
use crate::units::Volts;

/// Body-effect model `V_T(V_sb) = V_T0 + γ(√(2φ_F + V_sb) − √(2φ_F))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyEffect {
    /// Zero-bias threshold voltage.
    vt0: Volts,
    /// Body-effect coefficient γ, in V^½.
    gamma: f64,
    /// Surface potential `2φ_F`, in volts.
    surface_potential: Volts,
}

/// Typical body-effect coefficient for a 0.5 µm bulk process, V^½.
pub const DEFAULT_GAMMA: f64 = 0.4;

/// Typical surface potential `2φ_F` ≈ 0.7 V.
pub const DEFAULT_SURFACE_POTENTIAL: Volts = Volts(0.7);

impl BodyEffect {
    /// Model with default γ and surface potential.
    #[must_use]
    pub fn with_vt0(vt0: Volts) -> BodyEffect {
        BodyEffect {
            vt0,
            gamma: DEFAULT_GAMMA,
            surface_potential: DEFAULT_SURFACE_POTENTIAL,
        }
    }

    /// Fully-specified constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `gamma` is negative or
    /// the surface potential is non-positive.
    pub fn new(
        vt0: Volts,
        gamma: f64,
        surface_potential: Volts,
    ) -> Result<BodyEffect, DeviceError> {
        if gamma < 0.0 || !gamma.is_finite() {
            return Err(DeviceError::InvalidParameter {
                name: "gamma",
                value: gamma,
                constraint: "must be non-negative",
            });
        }
        if surface_potential.0 <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "surface_potential",
                value: surface_potential.0,
                constraint: "must be positive",
            });
        }
        Ok(BodyEffect {
            vt0,
            gamma,
            surface_potential,
        })
    }

    /// Zero-bias threshold voltage.
    #[must_use]
    pub fn vt0(&self) -> Volts {
        self.vt0
    }

    /// Threshold voltage under a source-to-bulk reverse bias `V_sb ≥ 0`.
    ///
    /// Forward bias (negative `V_sb`) is supported down to the point where
    /// `2φ_F + V_sb` reaches zero, beyond which it clamps.
    #[must_use]
    pub fn vt(&self, vsb: Volts) -> Volts {
        let base = (self.surface_potential.0 + vsb.0).max(0.0).sqrt();
        let zero = self.surface_potential.0.sqrt();
        Volts(self.vt0.0 + self.gamma * (base - zero))
    }

    /// Substrate bias required to *raise* the threshold by `delta_vt ≥ 0`.
    ///
    /// Inverting the square-root law:
    /// `V_sb = (ΔV_T/γ + √(2φ_F))² − 2φ_F`.
    ///
    /// This is the quantity the paper warns about — a few hundred mV of
    /// `ΔV_T` costs several volts of bias.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `delta_vt` is negative
    /// or `gamma` is zero (no body effect to exploit).
    pub fn bias_for_vt_shift(&self, delta_vt: Volts) -> Result<Volts, DeviceError> {
        if delta_vt.0 < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "delta_vt",
                value: delta_vt.0,
                constraint: "must be non-negative",
            });
        }
        if self.gamma == 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "gamma",
                value: 0.0,
                constraint: "must be positive to shift vt via substrate bias",
            });
        }
        let root = delta_vt.0 / self.gamma + self.surface_potential.0.sqrt();
        Ok(Volts(root * root - self.surface_potential.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bias_gives_vt0() {
        let b = BodyEffect::with_vt0(Volts(0.3));
        assert!((b.vt(Volts::ZERO).0 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn reverse_bias_raises_vt_sublinearly() {
        let b = BodyEffect::with_vt0(Volts(0.3));
        let d1 = b.vt(Volts(1.0)).0 - b.vt0().0;
        let d2 = b.vt(Volts(2.0)).0 - b.vt0().0;
        assert!(d1 > 0.0);
        assert!(d2 > d1);
        // Square-root law: doubling the bias gives less than double the shift.
        assert!(d2 < 2.0 * d1);
    }

    #[test]
    fn forward_bias_lowers_vt() {
        let b = BodyEffect::with_vt0(Volts(0.3));
        assert!(b.vt(Volts(-0.3)).0 < 0.3);
    }

    #[test]
    fn bias_solve_roundtrips() {
        let b = BodyEffect::with_vt0(Volts(0.25));
        let bias = b.bias_for_vt_shift(Volts(0.2)).expect("solvable");
        let achieved = b.vt(bias).0 - b.vt0().0;
        assert!((achieved - 0.2).abs() < 1e-12);
    }

    #[test]
    fn hundreds_of_mv_shift_needs_volts_of_bias() {
        // The paper's §4 warning, quantified: a 300 mV threshold shift on a
        // typical process needs multiple volts of substrate bias.
        let b = BodyEffect::with_vt0(Volts(0.25));
        let bias = b.bias_for_vt_shift(Volts(0.3)).expect("solvable");
        assert!(bias.0 > 1.5, "bias = {bias}");
    }

    #[test]
    fn constructor_validates() {
        assert!(BodyEffect::new(Volts(0.3), -0.1, Volts(0.7)).is_err());
        assert!(BodyEffect::new(Volts(0.3), 0.4, Volts(0.0)).is_err());
        assert!(BodyEffect::new(Volts(0.3), 0.4, Volts(0.7)).is_ok());
    }

    #[test]
    fn negative_shift_rejected() {
        let b = BodyEffect::with_vt0(Volts(0.3));
        assert!(b.bias_for_vt_shift(Volts(-0.1)).is_err());
    }
}
