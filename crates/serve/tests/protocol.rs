//! Protocol robustness: malformed JSON, unknown job kinds, oversized
//! lines, and mid-write client disconnects must each yield a structured
//! `error` event (or a clean connection drop) without killing the
//! daemon — and no journal or cache temp files may be left behind.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use lowvolt_serve::client;
use lowvolt_serve::server::Server;

/// Binds an in-process daemon on an ephemeral port with its own state
/// directory; returns the address, the state dir, and the serve thread.
fn start(name: &str) -> (String, PathBuf, std::thread::JoinHandle<()>) {
    let state = std::env::temp_dir().join(format!(
        "lowvolt_serve_protocol_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&state);
    let server = Server::bind("127.0.0.1:0", &state).expect("binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, state, handle)
}

/// A raw protocol connection (no client-library conveniences) so tests
/// can send byte-exact garbage.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connects");
        let writer = stream.try_clone().expect("clones");
        let mut conn = Conn {
            reader: BufReader::new(stream),
            writer,
        };
        let hello = conn.recv();
        assert!(hello.contains("\"event\":\"hello\""), "{hello}");
        conn
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("writes");
        self.writer.write_all(b"\n").expect("writes newline");
        self.writer.flush().expect("flushes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("reads");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        line.trim_end().to_string()
    }
}

/// Every `*.tmp` file anywhere under the daemon's state directory.
fn temp_files(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            found.extend(temp_files(&path));
        } else if path.extension().is_some_and(|e| e == "tmp") {
            found.push(path);
        }
    }
    found
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let bye = client::control(addr, "shutdown").expect("shutdown answers");
    assert!(bye.contains("\"event\":\"bye\""), "{bye}");
    handle.join().expect("serve thread exits cleanly");
}

#[test]
fn malformed_json_gets_a_structured_error_and_the_connection_survives() {
    let (addr, state, handle) = start("malformed");
    let mut conn = Conn::open(&addr);

    conn.send("this is not json {{{");
    let err = conn.recv();
    assert!(err.contains("\"event\":\"error\""), "{err}");

    // Same connection, same daemon: still serving.
    conn.send("{\"cmd\":\"ping\"}");
    assert!(conn.recv().contains("\"event\":\"pong\""));

    // Non-object JSON and tag-less objects are rejected with messages,
    // not drops.
    conn.send("[1,2,3]");
    assert!(conn.recv().contains("JSON object"));
    conn.send("{\"neither\":true}");
    assert!(conn.recv().contains("`job` or `cmd`"));

    shutdown(&addr, handle);
    assert!(temp_files(&state).is_empty());
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn unknown_job_kinds_and_commands_are_rejected_by_name() {
    let (addr, state, handle) = start("unknown");
    let mut conn = Conn::open(&addr);

    conn.send("{\"job\":\"mine-bitcoin\"}");
    let err = conn.recv();
    assert!(err.contains("unknown job kind `mine-bitcoin`"), "{err}");
    assert!(
        err.contains("campaign, optimize, lint, sta, profile"),
        "{err}"
    );

    conn.send("{\"cmd\":\"reboot\"}");
    let err = conn.recv();
    assert!(err.contains("unknown command `reboot`"), "{err}");

    // A well-formed job with a bad field value is also a structured
    // error, not a crash.
    conn.send("{\"job\":\"campaign\",\"vectors\":\"many\"}");
    let err = conn.recv();
    assert!(err.contains("non-negative integer"), "{err}");

    shutdown(&addr, handle);
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn oversized_lines_are_rejected_and_the_stream_stays_in_sync() {
    let (addr, state, handle) = start("oversized");
    let mut conn = Conn::open(&addr);

    // One line just past the 1 MiB cap. The daemon must consume the
    // whole line (staying in sync) and answer with an error event.
    let huge = "x".repeat((1 << 20) + 1);
    conn.send(&huge);
    let err = conn.recv();
    assert!(err.contains("exceeds"), "{err}");

    // The very next line must parse as its own request.
    conn.send("{\"cmd\":\"ping\"}");
    assert!(conn.recv().contains("\"event\":\"pong\""));

    shutdown(&addr, handle);
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn mid_write_disconnect_is_a_clean_drop() {
    let (addr, state, handle) = start("disconnect");

    // Half a request with no newline, then hang up.
    {
        let mut stream = TcpStream::connect(&addr).expect("connects");
        let mut hello = String::new();
        BufReader::new(stream.try_clone().expect("clones"))
            .read_line(&mut hello)
            .expect("hello");
        stream.write_all(b"{\"job\":\"camp").expect("partial write");
        stream.flush().expect("flushes");
    } // dropped here, mid-request

    // Hang up before even reading the hello.
    drop(TcpStream::connect(&addr).expect("connects"));

    // The daemon must still be alive and serving new connections.
    let mut conn = Conn::open(&addr);
    conn.send("{\"cmd\":\"ping\"}");
    assert!(conn.recv().contains("\"event\":\"pong\""));

    shutdown(&addr, handle);
    assert!(temp_files(&state).is_empty());
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn stats_reports_daemon_counters() {
    let (addr, state, handle) = start("stats");
    let mut conn = Conn::open(&addr);
    conn.send("{\"job\":\"mine-bitcoin\"}");
    let _ = conn.recv();
    conn.send("{\"cmd\":\"stats\"}");
    let stats = conn.recv();
    assert!(stats.contains("\"event\":\"stats\""), "{stats}");
    assert!(stats.contains("\"serve.connections\":"), "{stats}");
    assert!(stats.contains("\"serve.requests.bad\":"), "{stats}");
    shutdown(&addr, handle);
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn resubmitted_campaign_replays_the_journal_and_leaves_no_temp_files() {
    let (addr, state, handle) = start("resubmit");
    let request =
        "{\"job\":\"campaign\",\"width\":2,\"vectors\":4,\"threads\":2,\"shard_items\":7}";

    let mut progress: Vec<(u64, u64)> = Vec::new();
    let first = client::submit_line(&addr, request, &mut |e| {
        if let client::Event::Progress { done, total } = e {
            progress.push((*done, *total));
        }
    })
    .expect("first submission completes");
    assert_eq!(first.status, "ok");
    assert!(first.journal_records > 0);
    assert_eq!(first.replayed, 0);
    assert!(first.computed > 0);
    assert!(progress.len() >= 2, "one progress event per shard round");
    for w in progress.windows(2) {
        assert!(w[1].0 > w[0].0, "monotone progress: {progress:?}");
    }
    let (done, total) = *progress.last().expect("has progress");
    assert_eq!(done, total);

    // Same request again: the journal satisfies every item, the golden
    // traces come from the cache, and the payload is unchanged.
    let again = client::submit_line(&addr, request, &mut |_| {}).expect("resubmission completes");
    assert_eq!(again.payload, first.payload, "byte-identical resubmission");
    assert_eq!(again.computed, 0, "nothing re-executes");
    assert_eq!(again.replayed, first.computed);
    assert!(
        again.metrics.contains("\"cache.hits\""),
        "{}",
        again.metrics
    );

    assert!(temp_files(&state).is_empty(), "{:?}", temp_files(&state));
    shutdown(&addr, handle);
    std::fs::remove_dir_all(&state).ok();
}
