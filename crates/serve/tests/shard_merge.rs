//! Shard-merge determinism: splitting a packed campaign's stimulus into
//! arbitrary vector shards and folding the per-shard classifications
//! with [`FaultOutcome::merge`] reproduces the unsharded
//! [`run_campaign_packed`] result bit-for-bit — for random shard sizes
//! and worker counts 1/2/8. This is the algebraic core of the serve
//! daemon's resume guarantee: a job interrupted at any shard boundary
//! and finished later reports exactly what an uninterrupted run would.

use lowvolt_circuit::compiled::run_campaign_packed;
use lowvolt_circuit::faults::{
    standard_targets, stuck_at_universe, CampaignOptions, FaultOutcome, FaultTarget, GateFault,
};
use lowvolt_circuit::logic::Bit;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_exec::ExecPolicy;
use lowvolt_obs::noop;
use proptest::prelude::*;

/// One of the combinational standard datapaths at the given width.
fn target(index: usize, width: usize) -> FaultTarget {
    let mut all = standard_targets(width).expect("standard targets build");
    // 0 = adder, 1 = shifter, 2 = multiplier, 3 = alu (the register
    // bank is clocked; the packed runner drives it too, but the
    // combinational ones keep case runtime down).
    all.swap_remove(index % 4)
}

/// Deterministic stimulus: `total` vectors from the seeded PRNG stream.
fn vectors(width: usize, seed: u64, total: usize) -> Vec<Vec<Bit>> {
    let mut src = PatternSource::random(width, seed).expect("width in range");
    (0..total).map(|_| src.next_pattern()).collect()
}

/// Classifies every fault in `faults` over exactly `stimulus`,
/// returning outcomes in fault order.
fn classify(
    policy: &ExecPolicy,
    target: &FaultTarget,
    faults: &[GateFault],
    stimulus: &[Vec<Bit>],
) -> Vec<FaultOutcome> {
    let mut src = PatternSource::replay(stimulus.to_vec()).expect("replay");
    let res = run_campaign_packed(
        policy,
        noop(),
        target,
        faults,
        &mut src,
        stimulus.len(),
        CampaignOptions::default(),
    )
    .expect("campaign runs");
    res.reports
        .into_iter()
        .map(|r| r.expect("uninterrupted run resolves every fault").outcome)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For a random vector budget split into random shard sizes, the
    /// per-fault merge of per-shard classifications equals the
    /// unsharded classification — at 1, 2, and 8 workers on both
    /// sides, in every combination.
    #[test]
    fn merged_shards_equal_the_unsharded_campaign(
        target_index in 0usize..4,
        seed in any::<u64>(),
        total in 1usize..150,
        // Shard boundaries: cut points drawn as raw sizes, re-walked
        // below so they always cover `total` exactly.
        raw_sizes in prop::collection::vec(1usize..70, 1..6),
    ) {
        let target = target(target_index, 2);
        let faults = stuck_at_universe(&target.netlist);
        let stimulus = vectors(target.inputs.len(), seed, total);

        let baseline = classify(&ExecPolicy::with_threads(1), &target, &faults, &stimulus);

        for workers in [1usize, 2, 8] {
            let policy = ExecPolicy::with_threads(workers);

            // The whole range at this worker count must already match
            // the single-threaded baseline (thread-count determinism).
            let whole = classify(&policy, &target, &faults, &stimulus);
            prop_assert_eq!(&whole, &baseline, "workers={}", workers);

            // Walk the random shard sizes across the vector range.
            let mut merged: Vec<Option<FaultOutcome>> = vec![None; faults.len()];
            let mut start = 0usize;
            let mut cuts = raw_sizes.iter().cycle();
            while start < total {
                let len = (*cuts.next().expect("cycle never ends")).min(total - start);
                let shard = classify(&policy, &target, &faults, &stimulus[start..start + len]);
                for (slot, outcome) in merged.iter_mut().zip(shard) {
                    *slot = Some(match slot.take() {
                        Some(acc) => acc.merge(outcome),
                        None => outcome,
                    });
                }
                start += len;
            }
            let merged: Vec<FaultOutcome> =
                merged.into_iter().map(|o| o.expect("covered")).collect();
            prop_assert_eq!(&merged, &baseline, "workers={}", workers);
        }
    }
}

/// A fixed heavier case outside proptest: word-boundary-straddling
/// shard sizes (63/64/65) over a 130-vector range, which exercises
/// repacking — a shard of 65 vectors spans two words that the full run
/// packs differently.
#[test]
fn word_straddling_shards_merge_exactly() {
    let target = target(0, 4);
    let faults = stuck_at_universe(&target.netlist);
    let stimulus = vectors(target.inputs.len(), 0xA5A5, 130);
    let policy = ExecPolicy::with_threads(2);
    let whole = classify(&policy, &target, &faults, &stimulus);

    for sizes in [[63usize, 64, 65], [65, 63, 64], [64, 65, 63]] {
        let mut merged: Vec<Option<FaultOutcome>> = vec![None; faults.len()];
        let mut start = 0usize;
        for size in sizes {
            if start >= stimulus.len() {
                break;
            }
            let len = size.min(stimulus.len() - start);
            let shard = classify(&policy, &target, &faults, &stimulus[start..start + len]);
            for (slot, outcome) in merged.iter_mut().zip(shard) {
                *slot = Some(match slot.take() {
                    Some(acc) => acc.merge(outcome),
                    None => outcome,
                });
            }
            start += len;
        }
        let merged: Vec<FaultOutcome> = merged.into_iter().map(|o| o.expect("covered")).collect();
        assert_eq!(merged, whole, "sizes {sizes:?}");
    }
}
