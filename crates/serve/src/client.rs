//! A minimal blocking client for the serve protocol, used by
//! `lowvolt submit` and the conformance tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::jobs::JobError;
use crate::json::Json;

/// Everything a finished job reported.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// `"ok"` or `"gate_failed"`.
    pub status: String,
    /// The report payload, byte-identical to the equivalent CLI run.
    pub payload: String,
    /// The job's single-line metrics report (JSON object text).
    pub metrics: String,
    /// Journal items replayed from a previous submission.
    pub replayed: u64,
    /// Journal items newly computed by this submission.
    pub computed: u64,
    /// Records on the job's journal after completion.
    pub journal_records: u64,
}

/// A streamed event observed while a submission runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The job was accepted under this id (16 hex digits).
    Accepted {
        /// Job identity as rendered by the daemon.
        id: String,
    },
    /// `done` of `total` journal items complete.
    Progress {
        /// Items complete so far.
        done: u64,
        /// Items in the whole job.
        total: u64,
    },
    /// A non-payload diagnostic.
    Warning {
        /// Warning text.
        message: String,
    },
}

/// Connects to `addr`, submits one request line, and streams events to
/// `on_event` until the final `result` arrives.
///
/// # Errors
///
/// [`JobError`] on connection failure, protocol violations, or a
/// daemon-side `error` event (whose message is passed through).
pub fn submit_line(
    addr: &str,
    request: &str,
    on_event: &mut dyn FnMut(&Event),
) -> Result<SubmitOutcome, JobError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| JobError(format!("cannot connect to {addr}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| JobError(format!("cannot clone connection: {e}")))?;
    let mut reader = BufReader::new(stream);

    let mut hello = String::new();
    reader
        .read_line(&mut hello)
        .map_err(|e| JobError(format!("connection lost reading hello: {e}")))?;
    let hello = Json::parse(hello.trim_end())
        .map_err(|e| JobError(format!("malformed hello from daemon: {e}")))?;
    if hello.get("event").and_then(Json::as_str) != Some("hello") {
        return Err(JobError("daemon did not say hello".to_string()));
    }

    writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| JobError(format!("cannot send request: {e}")))?;

    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| JobError(format!("connection lost: {e}")))?;
        if n == 0 {
            return Err(JobError(
                "daemon closed the connection before the result".to_string(),
            ));
        }
        let event = Json::parse(line.trim_end())
            .map_err(|e| JobError(format!("malformed event from daemon: {e}")))?;
        match event.get("event").and_then(Json::as_str) {
            Some("accepted") => {
                let id = event
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                on_event(&Event::Accepted { id });
            }
            Some("progress") => {
                let done = event.get("done").and_then(Json::as_u64).unwrap_or(0);
                let total = event.get("total").and_then(Json::as_u64).unwrap_or(0);
                on_event(&Event::Progress { done, total });
            }
            Some("warning") => {
                let message = event
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                on_event(&Event::Warning { message });
            }
            Some("result") => {
                let field_str = |key: &str| {
                    event
                        .get(key)
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string()
                };
                let field_u64 = |key: &str| event.get(key).and_then(Json::as_u64).unwrap_or(0);
                return Ok(SubmitOutcome {
                    status: field_str("status"),
                    payload: field_str("payload"),
                    metrics: event
                        .get("metrics")
                        .map(std::string::ToString::to_string)
                        .unwrap_or_default(),
                    replayed: field_u64("replayed"),
                    computed: field_u64("computed"),
                    journal_records: field_u64("journal_records"),
                });
            }
            Some("error") => {
                let message = event
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("daemon reported an error")
                    .to_string();
                return Err(JobError(message));
            }
            other => return Err(JobError(format!("unexpected event from daemon: {other:?}"))),
        }
    }
}

/// Sends one control command (`ping`, `stats`, `shutdown`) and returns
/// the daemon's answer line.
///
/// # Errors
///
/// [`JobError`] on connection or protocol failure.
pub fn control(addr: &str, cmd: &str) -> Result<String, JobError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| JobError(format!("cannot connect to {addr}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| JobError(format!("cannot clone connection: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut hello = String::new();
    reader
        .read_line(&mut hello)
        .map_err(|e| JobError(format!("connection lost reading hello: {e}")))?;
    writer
        .write_all(format!("{{\"cmd\":\"{cmd}\"}}\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| JobError(format!("cannot send command: {e}")))?;
    let mut answer = String::new();
    reader
        .read_line(&mut answer)
        .map_err(|e| JobError(format!("connection lost: {e}")))?;
    Ok(answer.trim_end().to_string())
}
