//! `lowvolt-serve`: a sharded campaign/sweep job service.
//!
//! The daemon (`lowvolt serve`) listens on TCP, speaks one JSON object
//! per line, and runs the same five job kinds as the CLI — `campaign`,
//! `optimize`, `lint`, `sta`, `profile` — with three guarantees:
//!
//! 1. **Byte-identity**: a job's result payload is byte-for-byte the
//!    stdout of the equivalent CLI command, because both call the same
//!    [`jobs`] layer.
//! 2. **Durability**: campaign jobs shard their fault universe into
//!    journal rounds (`LVJR0001`); a killed daemon resumes completed
//!    shards on resubmission instead of recomputing them, and golden
//!    traces persist in a shared `LVGC0001` cache.
//! 3. **Determinism**: sharding never changes results — per-word fault
//!    classification is pointwise, and shard merge is a commutative
//!    max over the engine's class precedence
//!    ([`lowvolt_circuit::faults::FaultOutcome::merge`]).
//!
//! Module map: [`json`] (dependency-free JSON), [`proto`] (wire
//! format), [`jobs`] (shared job execution, also used by the CLI),
//! [`server`] (daemon), [`client`] (blocking client for
//! `lowvolt submit` and tests).

pub mod client;
pub mod jobs;
pub mod json;
pub mod proto;
pub mod server;
