//! The line-delimited JSON wire protocol.
//!
//! One JSON object per `\n`-terminated line, at most
//! [`MAX_LINE_BYTES`] bytes. Requests are either a job description
//! (`{"job": "campaign", ...}`) or a control command
//! (`{"cmd": "ping" | "stats" | "shutdown"}`). Every server line is an
//! event object tagged `"event"`: `hello` on connect, then per job
//! `accepted` → `progress`* / `warning`* → `result`, or `error` for a
//! rejected line. Malformed input never kills the connection — the
//! server answers with a structured `error` event and keeps reading.

use lowvolt_exec::fnv64;

use crate::jobs::{
    CampaignSpec, Engine, JobError, LintSpec, OptimizeSpec, OptimizeStaTarget, ProfileSpec,
    ProgramSource, SourceSpec, StaSpec,
};
use crate::json::{escape, Json};

/// Hard cap on one protocol line (request or event), newline excluded.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Protocol revision announced in the `hello` event.
pub const PROTO_VERSION: u64 = 1;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a job and stream its events.
    Job(Box<JobRequest>),
    /// Liveness probe; answered with `pong`.
    Ping,
    /// Daemon counter snapshot; answered with `stats`.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// A job description plus its scheduling knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// What to run.
    pub kind: JobKind,
    /// Worker threads (`None` = the daemon's environment default).
    pub threads: Option<usize>,
    /// Campaign shard size / optimize tile size override.
    pub shard_items: Option<usize>,
}

/// The five job kinds and their specs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Stuck-at fault campaign.
    Campaign(CampaignSpec),
    /// V_DD/V_T design-space sweep.
    Optimize(OptimizeSpec),
    /// Low-voltage design lint.
    Lint(LintSpec),
    /// Static timing analysis.
    Sta(StaSpec),
    /// ISA-level program profile.
    Profile(ProfileSpec),
}

impl JobKind {
    /// The job kind's wire name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Campaign(_) => "campaign",
            JobKind::Optimize(_) => "optimize",
            JobKind::Lint(_) => "lint",
            JobKind::Sta(_) => "sta",
            JobKind::Profile(_) => "profile",
        }
    }
}

impl JobRequest {
    /// A stable identity for the job: the FNV-1a hash of a canonical
    /// encoding of everything that affects the result payload (kind,
    /// source, knobs, thread count — but *not* `shard_items`, which
    /// only changes progress granularity). Resubmitting the same job
    /// after a daemon restart therefore maps to the same journal file
    /// and resumes instead of recomputing.
    #[must_use]
    pub fn id(&self) -> u64 {
        fnv64(self.canonical().as_bytes())
    }

    fn canonical(&self) -> String {
        let source = |s: &SourceSpec| match s {
            SourceSpec::Builtin => "builtin".to_string(),
            SourceSpec::Netlist { path } => format!("netlist:{path}"),
            SourceSpec::Generate {
                gates,
                seed,
                inputs,
                dff_fraction,
            } => format!("generate:{gates}:{seed}:{inputs:?}:{dff_fraction:?}"),
        };
        let body = match &self.kind {
            JobKind::Campaign(c) => format!(
                "campaign|{}|w={}|v={}|seed={}|engine={:?}|retries={}|timeout={:?}",
                source(&c.source),
                c.width,
                c.vectors,
                c.seed,
                c.engine,
                c.max_retries,
                c.item_timeout_ms
            ),
            JobKind::Optimize(o) => format!(
                "optimize|delay={}|mhz={}|activity={}|sta={}",
                o.delay_ps,
                o.throughput_mhz,
                o.activity,
                o.sta.as_ref().map_or("none".to_string(), |s| format!(
                    "{}|{}|w={}",
                    source(&s.source),
                    s.circuit,
                    s.width
                ))
            ),
            JobKind::Lint(l) => format!(
                "lint|{}|fixture={:?}|circuit={}|w={}|json={}|allow={:?}|deny={:?}|budget={:?}",
                source(&l.source),
                l.fixture,
                l.circuit,
                l.width,
                l.json,
                l.allow,
                l.deny,
                l.leakage_budget_uw
            ),
            JobKind::Sta(s) => format!(
                "sta|{}|circuit={}|w={}|vdd={:?}|vt={:?}|req={:?}|json={}",
                source(&s.source),
                s.circuit,
                s.width,
                s.vdd,
                s.vt,
                s.required_ps,
                s.json
            ),
            JobKind::Profile(p) => {
                let src = match &p.source {
                    ProgramSource::Example(name) => format!("example:{name}"),
                    ProgramSource::Text(text) => format!("text:{:016x}", fnv64(text.as_bytes())),
                };
                format!(
                    "profile|{src}|budget={}|hyst={}|duty={:?}|blocks={}",
                    p.budget, p.hysteresis, p.duty, p.blocks
                )
            }
        };
        format!("{body}|threads={:?}", self.threads)
    }
}

fn field_u64(v: &Json, key: &str) -> Result<Option<u64>, JobError> {
    match v.get(key) {
        None => Ok(None),
        Some(j) if j.is_null() => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| JobError(format!("`{key}` must be a non-negative integer"))),
    }
}

fn field_f64(v: &Json, key: &str) -> Result<Option<f64>, JobError> {
    match v.get(key) {
        None => Ok(None),
        Some(j) if j.is_null() => Ok(None),
        Some(j) => j
            .as_f64()
            .map(Some)
            .ok_or_else(|| JobError(format!("`{key}` must be a number"))),
    }
}

fn field_str(v: &Json, key: &str) -> Result<Option<String>, JobError> {
    match v.get(key) {
        None => Ok(None),
        Some(j) if j.is_null() => Ok(None),
        Some(j) => j
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| JobError(format!("`{key}` must be a string"))),
    }
}

fn field_bool(v: &Json, key: &str) -> Result<bool, JobError> {
    match v.get(key) {
        None => Ok(false),
        Some(j) if j.is_null() => Ok(false),
        Some(j) => j
            .as_bool()
            .ok_or_else(|| JobError(format!("`{key}` must be a boolean"))),
    }
}

fn parse_source(v: &Json) -> Result<SourceSpec, JobError> {
    let Some(src) = v.get("source") else {
        return Ok(SourceSpec::Builtin);
    };
    if src.is_null() {
        return Ok(SourceSpec::Builtin);
    }
    let kind = field_str(src, "kind")?
        .ok_or_else(|| JobError("`source` needs a `kind` field".to_string()))?;
    match kind.as_str() {
        "builtin" => Ok(SourceSpec::Builtin),
        "netlist" => {
            let path = field_str(src, "path")?
                .ok_or_else(|| JobError("netlist source needs a `path`".to_string()))?;
            Ok(SourceSpec::Netlist { path })
        }
        "generate" => {
            let gates = field_u64(src, "gates")?
                .ok_or_else(|| JobError("generate source needs `gates`".to_string()))?;
            Ok(SourceSpec::Generate {
                gates,
                seed: field_u64(src, "seed")?.unwrap_or(42),
                inputs: field_u64(src, "inputs")?,
                dff_fraction: field_f64(src, "dff_fraction")?,
            })
        }
        other => Err(JobError(format!(
            "unknown source kind `{other}` (builtin, netlist, generate)"
        ))),
    }
}

/// Parses one request line (already length-checked and
/// newline-stripped).
///
/// # Errors
///
/// Malformed JSON, missing tags, unknown job kinds, and mistyped
/// fields all return a message for the `error` event.
pub fn parse_request(line: &str) -> Result<Request, JobError> {
    let v = Json::parse(line).map_err(|e| JobError(e.to_string()))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(JobError("request must be a JSON object".to_string()));
    }
    if let Some(cmd) = field_str(&v, "cmd")? {
        return match cmd.as_str() {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JobError(format!(
                "unknown command `{other}` (ping, stats, shutdown)"
            ))),
        };
    }
    let Some(job) = field_str(&v, "job")? else {
        return Err(JobError("request needs a `job` or `cmd` field".to_string()));
    };
    let source = parse_source(&v)?;
    let kind = match job.as_str() {
        "campaign" => {
            let mut spec = CampaignSpec::new(source);
            if let Some(w) = field_u64(&v, "width")? {
                spec.width = usize::try_from(w).unwrap_or(usize::MAX);
            }
            if let Some(n) = field_u64(&v, "vectors")? {
                spec.vectors = usize::try_from(n).unwrap_or(usize::MAX);
            }
            if let Some(s) = field_u64(&v, "seed")? {
                spec.seed = s;
            }
            if let Some(e) = field_str(&v, "engine")? {
                spec.engine = Engine::parse(&e)?;
            }
            if let Some(r) = field_u64(&v, "max_retries")? {
                spec.max_retries = u32::try_from(r).unwrap_or(u32::MAX);
            }
            spec.item_timeout_ms = field_u64(&v, "item_timeout_ms")?;
            JobKind::Campaign(spec)
        }
        "optimize" => {
            let mut spec = OptimizeSpec::new();
            if let Some(d) = field_f64(&v, "delay_ps")? {
                spec.delay_ps = d;
            }
            if let Some(m) = field_f64(&v, "throughput_mhz")? {
                spec.throughput_mhz = m;
            }
            if let Some(a) = field_f64(&v, "activity")? {
                spec.activity = a;
            }
            if field_bool(&v, "sta")? {
                spec.sta = Some(OptimizeStaTarget {
                    source,
                    circuit: field_str(&v, "circuit")?.unwrap_or_else(|| "adder".to_string()),
                    width: field_u64(&v, "width")?
                        .map_or(8, |w| usize::try_from(w).unwrap_or(usize::MAX)),
                });
            }
            JobKind::Optimize(spec)
        }
        "lint" => {
            let mut spec = LintSpec::new(source);
            spec.fixture = field_str(&v, "fixture")?;
            if let Some(c) = field_str(&v, "circuit")? {
                spec.circuit = c;
            }
            if let Some(w) = field_u64(&v, "width")? {
                spec.width = usize::try_from(w).unwrap_or(usize::MAX);
            }
            spec.json = field_bool(&v, "json")?;
            spec.allow = field_str(&v, "allow")?;
            spec.deny = field_str(&v, "deny")?;
            spec.leakage_budget_uw = field_f64(&v, "leakage_budget_uw")?;
            JobKind::Lint(spec)
        }
        "sta" => {
            let mut spec = StaSpec::new(source);
            if let Some(c) = field_str(&v, "circuit")? {
                spec.circuit = c;
            }
            if let Some(w) = field_u64(&v, "width")? {
                spec.width = usize::try_from(w).unwrap_or(usize::MAX);
            }
            spec.vdd = field_f64(&v, "vdd")?;
            spec.vt = field_f64(&v, "vt")?;
            spec.required_ps = field_f64(&v, "required_ps")?;
            spec.json = field_bool(&v, "json")?;
            JobKind::Sta(spec)
        }
        "profile" => {
            let program = if let Some(example) = field_str(&v, "example")? {
                ProgramSource::Example(example)
            } else if let Some(text) = field_str(&v, "text")? {
                ProgramSource::Text(text)
            } else if let Some(path) = field_str(&v, "path")? {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| JobError(format!("cannot read {path}: {e}")))?;
                ProgramSource::Text(text)
            } else {
                return Err(JobError(
                    "profile job needs `example`, `text`, or `path`".to_string(),
                ));
            };
            let mut spec = ProfileSpec::new(program);
            if let Some(b) = field_u64(&v, "budget")? {
                spec.budget = b;
            }
            if let Some(h) = field_u64(&v, "hysteresis")? {
                spec.hysteresis = h;
            }
            spec.duty = field_f64(&v, "duty")?;
            spec.blocks = field_bool(&v, "blocks")?;
            JobKind::Profile(spec)
        }
        other => {
            return Err(JobError(format!(
                "unknown job kind `{other}` (campaign, optimize, lint, sta, profile)"
            )))
        }
    };
    Ok(Request::Job(Box::new(JobRequest {
        kind,
        threads: field_u64(&v, "threads")?.map(|t| usize::try_from(t).unwrap_or(usize::MAX)),
        shard_items: field_u64(&v, "shard_items")?
            .map(|s| usize::try_from(s).unwrap_or(usize::MAX)),
    })))
}

/// The `hello` event sent on connect.
#[must_use]
pub fn hello_event() -> String {
    format!("{{\"event\":\"hello\",\"service\":\"lowvolt-serve\",\"proto\":{PROTO_VERSION}}}")
}

/// The `accepted` event acknowledging a job line.
#[must_use]
pub fn accepted_event(id: u64, kind: &str) -> String {
    format!("{{\"event\":\"accepted\",\"id\":\"{id:016x}\",\"kind\":\"{kind}\"}}")
}

/// A `progress` event: shard rounds done/total plus a counter
/// snapshot (non-zero catalog counters only).
#[must_use]
pub fn progress_event(id: u64, done: u64, total: u64, counters: &str) -> String {
    format!(
        "{{\"event\":\"progress\",\"id\":\"{id:016x}\",\"done\":{done},\"total\":{total},\"counters\":{counters}}}"
    )
}

/// A `warning` event carrying a non-payload diagnostic.
#[must_use]
pub fn warning_event(id: u64, message: &str) -> String {
    format!(
        "{{\"event\":\"warning\",\"id\":\"{id:016x}\",\"message\":\"{}\"}}",
        escape(message)
    )
}

/// The final `result` event: status, shard accounting, the payload
/// (byte-identical to the CLI report), and the job's full metrics
/// report.
#[must_use]
pub fn result_event(
    id: u64,
    status: &str,
    replayed: u64,
    computed: u64,
    journal_records: u64,
    payload: &str,
    metrics: &str,
) -> String {
    format!(
        "{{\"event\":\"result\",\"id\":\"{id:016x}\",\"status\":\"{status}\",\"replayed\":{replayed},\"computed\":{computed},\"journal_records\":{journal_records},\"payload\":\"{}\",\"metrics\":{metrics}}}",
        escape(payload)
    )
}

/// An `error` event for a rejected request line.
#[must_use]
pub fn error_event(message: &str) -> String {
    format!(
        "{{\"event\":\"error\",\"message\":\"{}\"}}",
        escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_job_kind() {
        let r = parse_request(
            "{\"job\":\"campaign\",\"width\":2,\"vectors\":4,\"engine\":\"compiled\",\"threads\":2}",
        )
        .unwrap();
        let Request::Job(job) = r else {
            panic!("expected job")
        };
        assert_eq!(job.kind.name(), "campaign");
        assert_eq!(job.threads, Some(2));
        let JobKind::Campaign(spec) = &job.kind else {
            panic!("expected campaign")
        };
        assert_eq!(spec.engine, Engine::Compiled);
        assert_eq!((spec.width, spec.vectors), (2, 4));

        for (line, kind) in [
            ("{\"job\":\"optimize\",\"delay_ps\":150}", "optimize"),
            ("{\"job\":\"lint\",\"circuit\":\"adder\"}", "lint"),
            ("{\"job\":\"sta\",\"json\":true}", "sta"),
            ("{\"job\":\"profile\",\"example\":\"idea\"}", "profile"),
        ] {
            let Request::Job(job) = parse_request(line).unwrap() else {
                panic!("expected job for {line}")
            };
            assert_eq!(job.kind.name(), kind, "{line}");
        }
    }

    #[test]
    fn parses_sources() {
        let netlist = parse_request(
            "{\"job\":\"sta\",\"source\":{\"kind\":\"netlist\",\"path\":\"x.blif\"}}",
        )
        .unwrap();
        let Request::Job(job) = netlist else { panic!() };
        let JobKind::Sta(spec) = &job.kind else {
            panic!()
        };
        assert_eq!(
            spec.source,
            SourceSpec::Netlist {
                path: "x.blif".to_string()
            }
        );
        let gen = parse_request(
            "{\"job\":\"campaign\",\"source\":{\"kind\":\"generate\",\"gates\":100,\"seed\":7}}",
        )
        .unwrap();
        let Request::Job(job) = gen else { panic!() };
        let JobKind::Campaign(spec) = &job.kind else {
            panic!()
        };
        assert_eq!(
            spec.source,
            SourceSpec::Generate {
                gates: 100,
                seed: 7,
                inputs: None,
                dff_fraction: None
            }
        );
        let err = parse_request("{\"job\":\"sta\",\"source\":{\"kind\":\"quantum\"}}").unwrap_err();
        assert!(err.0.contains("unknown source kind"), "{err}");
    }

    #[test]
    fn commands_and_errors() {
        assert_eq!(parse_request("{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("{\"cmd\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request("{\"cmd\":\"stats\"}").unwrap(),
            Request::Stats
        );
        let err = parse_request("{\"job\":\"mine-bitcoin\"}").unwrap_err();
        assert!(err.0.contains("unknown job kind"), "{err}");
        let err = parse_request("not json at all").unwrap_err();
        assert!(err.0.contains("invalid JSON"), "{err}");
        let err = parse_request("[1,2,3]").unwrap_err();
        assert!(err.0.contains("JSON object"), "{err}");
        let err = parse_request("{\"neither\":true}").unwrap_err();
        assert!(err.0.contains("`job` or `cmd`"), "{err}");
        let err = parse_request("{\"job\":\"campaign\",\"vectors\":\"many\"}").unwrap_err();
        assert!(err.0.contains("non-negative integer"), "{err}");
    }

    #[test]
    fn job_id_ignores_shard_items_but_not_threads() {
        let base = parse_request("{\"job\":\"campaign\",\"threads\":2,\"shard_items\":5}");
        let resharded = parse_request("{\"job\":\"campaign\",\"threads\":2,\"shard_items\":50}");
        let rethreaded = parse_request("{\"job\":\"campaign\",\"threads\":4,\"shard_items\":5}");
        let id = |r: Result<Request, JobError>| match r.unwrap() {
            Request::Job(j) => j.id(),
            _ => panic!("expected job"),
        };
        let (a, b, c) = (id(base), id(resharded), id(rethreaded));
        assert_eq!(a, b, "shard size must not change the job identity");
        assert_ne!(a, c, "thread count changes the payload header");
    }

    #[test]
    fn events_are_single_line_parsable_json() {
        for line in [
            hello_event(),
            accepted_event(7, "campaign"),
            progress_event(7, 3, 10, "{}"),
            warning_event(7, "tail \"quoted\"\ndiscarded"),
            result_event(7, "ok", 1, 2, 3, "table\nrows", "{\"counters\":{}}"),
            error_event("bad\nline"),
        ] {
            assert!(!line.contains('\n'), "events must be single lines: {line}");
            let v = Json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(v.get("event").is_some(), "{line}");
        }
    }
}
