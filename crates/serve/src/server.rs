//! The `lowvolt serve` daemon: a TCP accept loop, one handler thread
//! per connection, and journal/cache-backed job execution.
//!
//! State layout under the daemon's state directory:
//!
//! ```text
//! <state>/cache/                   shared LVGC0001 golden-trace cache
//! <state>/jobs/job-<id16>.lvjr     LVJR0001 journal per campaign job id
//! ```
//!
//! A campaign job's journal is keyed by the job identity
//! ([`crate::proto::JobRequest::id`]), so resubmitting the same job —
//! including after the daemon was killed mid-job — resumes from the
//! journal instead of recomputing, and the final payload is
//! byte-identical to an uninterrupted run. Orphaned cache temp files
//! from a kill are swept at bind time.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use lowvolt_exec::{ByteCache, ExecPolicy};
use lowvolt_obs::{names, MetricsRegistry, Recorder};

use crate::jobs::{
    run_campaign_job, run_lint_job, run_optimize_job, run_profile_job, run_sta_job,
    CampaignPersist, JobError, JobSink, RunMode,
};
use crate::proto::{
    accepted_event, error_event, hello_event, parse_request, progress_event, result_event,
    warning_event, JobKind, JobRequest, Request, MAX_LINE_BYTES,
};

/// Default campaign shard size (journal items per round) when the
/// request does not specify `shard_items`.
pub const DEFAULT_SHARD_ITEMS: usize = 256;

/// A daemon-level failure (bind, state-directory, or accept error).
#[derive(Debug)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServeError {}

struct ServerState {
    cache: ByteCache,
    jobs_dir: PathBuf,
    registry: MetricsRegistry,
    active: Mutex<std::collections::HashSet<u64>>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// The campaign/sweep job service.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the service socket and prepares the state directory
    /// (creating `cache/` and `jobs/`, sweeping orphaned cache temp
    /// files from a previous kill).
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the address cannot be bound or the state
    /// directory cannot be created.
    pub fn bind(addr: &str, state_dir: impl Into<PathBuf>) -> Result<Server, ServeError> {
        let state_dir = state_dir.into();
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError(format!("cannot listen on {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError(format!("cannot resolve bound address: {e}")))?;
        let cache =
            ByteCache::open(state_dir.join("cache")).map_err(|e| ServeError(e.to_string()))?;
        cache.sweep_temp_files();
        let jobs_dir = state_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)
            .map_err(|e| ServeError(format!("cannot create {}: {e}", jobs_dir.display())))?;
        sweep_tmp(&jobs_dir);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                cache,
                jobs_dir,
                registry: MetricsRegistry::new(),
                active: Mutex::new(std::collections::HashSet::new()),
                shutdown: AtomicBool::new(false),
                addr: local,
            }),
        })
    }

    /// The actually-bound socket address (resolves `:0` listens).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Accepts and serves connections until a `shutdown` command
    /// arrives. Each connection gets its own handler thread; in-flight
    /// jobs on other connections are not waited for (their journal
    /// records survive for a resumed submission).
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the accept loop itself fails.
    pub fn run(&self) -> Result<(), ServeError> {
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => return Err(ServeError(format!("accept failed: {e}"))),
            };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
        Ok(())
    }
}

fn sweep_tmp(dir: &std::path::Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") && path.is_file() {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// `{"name":count,...}` for every non-zero catalog counter.
fn counters_json(registry: &MetricsRegistry) -> String {
    let mut out = String::from("{");
    let snapshot = registry.snapshot();
    let mut first = true;
    for (name, value) in snapshot.counters() {
        if *value == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push('}');
    out
}

/// The full metrics report as a single-line JSON object (the obs JSON
/// is pretty-printed; names and values never contain newlines, so
/// stripping them keeps it valid).
fn metrics_json(registry: &MetricsRegistry) -> String {
    registry.snapshot().to_json().replace('\n', "")
}

enum LineRead {
    Eof,
    Line(String),
    Oversized,
}

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes.
/// Longer lines are consumed to their newline and reported as
/// [`LineRead::Oversized`] so the connection stays in sync.
fn read_line_capped<R: BufRead>(reader: &mut R) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if oversized {
                return Ok(LineRead::Oversized);
            }
            if buf.is_empty() {
                return Ok(LineRead::Eof);
            }
            // A trailing line without a newline still counts.
            return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        match newline {
            Some(i) => {
                if !oversized && buf.len() + i <= MAX_LINE_BYTES {
                    buf.extend_from_slice(&available[..i]);
                } else {
                    oversized = true;
                }
                reader.consume(i + 1);
                if oversized {
                    return Ok(LineRead::Oversized);
                }
                let mut line = String::from_utf8_lossy(&buf).into_owned();
                if line.ends_with('\r') {
                    line.pop();
                }
                return Ok(LineRead::Line(line));
            }
            None => {
                let n = available.len();
                if !oversized && buf.len() + n <= MAX_LINE_BYTES {
                    buf.extend_from_slice(available);
                } else {
                    oversized = true;
                    buf.clear();
                }
                reader.consume(n);
            }
        }
    }
}

/// Writes one event line; returns `false` once the client is gone so
/// callers can stop emitting without aborting the job (journaled work
/// is never wasted by a disconnect).
fn send(stream: &mut TcpStream, event: &str) -> bool {
    stream
        .write_all(event.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    state.registry.add(names::SERVE_CONNECTIONS, 1);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    if !send(&mut writer, &hello_event()) {
        return;
    }
    loop {
        let line = match read_line_capped(&mut reader) {
            Ok(LineRead::Eof) => return,
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Oversized) => {
                state.registry.add(names::SERVE_REQUESTS_BAD, 1);
                if !send(
                    &mut writer,
                    &error_event(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
                ) {
                    return;
                }
                continue;
            }
            // A mid-write disconnect or reset: clean drop.
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(e) => {
                state.registry.add(names::SERVE_REQUESTS_BAD, 1);
                if !send(&mut writer, &error_event(&e.0)) {
                    return;
                }
            }
            Ok(Request::Ping) => {
                if !send(&mut writer, "{\"event\":\"pong\"}") {
                    return;
                }
            }
            Ok(Request::Stats) => {
                let event = format!(
                    "{{\"event\":\"stats\",\"counters\":{}}}",
                    counters_json(&state.registry)
                );
                if !send(&mut writer, &event) {
                    return;
                }
            }
            Ok(Request::Shutdown) => {
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = send(&mut writer, "{\"event\":\"bye\"}");
                // Unblock the accept loop so `run` observes the flag.
                let _ = TcpStream::connect(state.addr);
                return;
            }
            Ok(Request::Job(job)) => {
                if !run_job(state, &mut writer, &job) {
                    return;
                }
            }
        }
    }
}

/// Streams a job's progress/warning events to the client.
struct StreamSink<'a> {
    writer: &'a mut TcpStream,
    registry: &'a MetricsRegistry,
    id: u64,
    connected: bool,
}

impl JobSink for StreamSink<'_> {
    fn progress(&mut self, done: u64, total: u64) {
        if self.connected {
            let event = progress_event(self.id, done, total, &counters_json(self.registry));
            self.connected = send(self.writer, &event);
        }
    }

    fn warning(&mut self, message: &str) {
        if self.connected {
            self.connected = send(self.writer, &warning_event(self.id, message));
        }
    }
}

/// Removes the job id from the active set even on unwind.
struct ActiveGuard<'a> {
    state: &'a ServerState,
    id: u64,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut active) = self.state.active.lock() {
            active.remove(&self.id);
        }
    }
}

/// Runs one job and emits its event stream. Returns `false` once the
/// client connection is gone.
fn run_job(state: &ServerState, writer: &mut TcpStream, job: &JobRequest) -> bool {
    let id = job.id();
    {
        let Ok(mut active) = state.active.lock() else {
            return send(writer, &error_event("daemon state poisoned"));
        };
        if !active.insert(id) {
            return send(
                writer,
                &error_event(&format!(
                    "job {id:016x} is already running (identical submission in flight)"
                )),
            );
        }
    }
    let _guard = ActiveGuard { state, id };
    state.registry.add(names::SERVE_JOBS, 1);
    if !send(writer, &accepted_event(id, job.kind.name())) {
        // Client gone before the job even started: skip the work.
        return false;
    }
    let policy = match job.threads {
        Some(n) => ExecPolicy::with_threads(n),
        None => ExecPolicy::from_env(),
    };
    let registry = MetricsRegistry::new();
    let outcome = execute_kind(state, writer, job, id, &policy, &registry);
    match outcome {
        Err(e) => send(writer, &error_event(&e.0)),
        Ok(done) => {
            let event = result_event(
                id,
                done.status,
                done.replayed,
                done.computed,
                done.journal_records,
                &done.payload,
                &metrics_json(&registry),
            );
            send(writer, &event)
        }
    }
}

struct JobDone {
    status: &'static str,
    payload: String,
    replayed: u64,
    computed: u64,
    journal_records: u64,
}

impl JobDone {
    fn plain(payload: String) -> JobDone {
        JobDone {
            status: "ok",
            payload,
            replayed: 0,
            computed: 0,
            journal_records: 0,
        }
    }
}

fn execute_kind(
    state: &ServerState,
    writer: &mut TcpStream,
    job: &JobRequest,
    id: u64,
    policy: &ExecPolicy,
    registry: &MetricsRegistry,
) -> Result<JobDone, JobError> {
    let mut sink = StreamSink {
        writer,
        registry,
        id,
        connected: true,
    };
    match &job.kind {
        JobKind::Campaign(spec) => {
            let journal = state.jobs_dir.join(format!("job-{id:016x}.lvjr"));
            let journal = journal.display().to_string();
            let persist = CampaignPersist {
                checkpoint: Some(&journal),
                resume: true,
                cache: Some(&state.cache),
                mode: RunMode::Sharded {
                    shard_items: job.shard_items.unwrap_or(DEFAULT_SHARD_ITEMS).max(1),
                },
                announce: false,
            };
            let outcome = run_campaign_job(policy, registry, spec, &persist, &mut sink)?;
            Ok(JobDone {
                status: "ok",
                payload: outcome.payload,
                replayed: outcome.replayed,
                computed: outcome.computed,
                journal_records: outcome.journal_records,
            })
        }
        JobKind::Optimize(spec) => {
            let mut spec = spec.clone();
            if let Some(tile) = job.shard_items {
                spec.tile_points = tile.max(1);
            }
            Ok(JobDone::plain(run_optimize_job(policy, &spec, &mut sink)?))
        }
        JobKind::Lint(spec) => {
            let outcome = run_lint_job(policy, registry, spec)?;
            Ok(JobDone {
                status: if outcome.gate_failed {
                    "gate_failed"
                } else {
                    "ok"
                },
                payload: outcome.payload,
                replayed: 0,
                computed: 0,
                journal_records: 0,
            })
        }
        JobKind::Sta(spec) => Ok(JobDone::plain(run_sta_job(policy, registry, spec)?)),
        JobKind::Profile(spec) => Ok(JobDone::plain(run_profile_job(registry, spec)?)),
    }
}
