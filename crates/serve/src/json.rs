//! A minimal JSON reader/writer for the wire protocol.
//!
//! The service speaks one JSON object per line; this module parses and
//! serializes exactly the JSON the protocol needs (objects, arrays,
//! strings with escapes, finite numbers, booleans, null) with no
//! external dependency. Object key order is preserved on parse and
//! emitted in insertion order on write, so canonical encodings are
//! stable.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                reason: "trailing characters after value".to_string(),
            });
        }
        Ok(value)
    }

    /// Object field lookup; `None` for non-objects and absent keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for JSON `null` (used to distinguish explicit null from absent).
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the protocol never produces them, but a
        // defensive null beats emitting an unparsable token.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

/// Escapes a string for embedding between JSON double quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn err(at: usize, reason: impl Into<String>) -> JsonError {
    JsonError {
        at,
        reason: reason.into(),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(err(*pos, format!("unexpected byte 0x{b:02x}"))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "non-UTF-8 number"))?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => Err(err(start, format!("malformed number `{text}`"))),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    // Caller guarantees bytes[*pos] == b'"'.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: require the paired \uXXXX.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired surrogate"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(err(*pos, "invalid \\u escape")),
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(err(*pos, "raw control character in string"));
            }
            Some(_) => {
                // Copy one UTF-8 scalar (the input is a &str, so
                // boundaries are valid by construction).
                let rest = match std::str::from_utf8(&bytes[*pos..]) {
                    Ok(r) => r,
                    Err(_) => return Err(err(*pos, "invalid UTF-8")),
                };
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err(err(*pos, "unterminated string")),
                }
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let Some(slice) = bytes.get(at..at + 4) else {
        return Err(err(at, "truncated \\u escape"));
    };
    let text = std::str::from_utf8(slice).map_err(|_| err(at, "invalid \\u escape"))?;
    u32::from_str_radix(text, 16).map_err(|_| err(at, "invalid \\u escape"))
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:`"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "round trip of {text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash ünïcode";
        let encoded = Json::Str(original.to_string()).to_string();
        let back = Json::parse(&encoded).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("Aé")
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn malformed_inputs_are_rejected_with_position() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\":1} extra",
            "nan",
            "1e999",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn object_lookup_and_number_accessors() {
        let v = Json::parse("{\"n\":42,\"neg\":-1,\"frac\":1.5,\"s\":\"x\"}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-1.0));
        assert_eq!(v.get("frac").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn large_integers_survive_display() {
        let v = Json::Num(9_007_199_254_740_992.0);
        assert_eq!(v.to_string(), "9007199254740992");
    }
}
