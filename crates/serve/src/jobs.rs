//! The shared job layer: every service job kind (`campaign`,
//! `optimize`, `lint`, `sta`, `profile`) is executed and rendered here,
//! and the `lowvolt` CLI delegates to the same functions — so a result
//! payload streamed over the socket is byte-identical to the
//! corresponding CLI run *by construction*, not by parallel
//! maintenance.
//!
//! Campaign jobs additionally support sharded execution: the fault
//! universe (injections for the event engine, 64-vector stimulus words
//! for the compiled engine) is processed in bounded rounds through the
//! `LVJR0001` checkpoint journal, with a progress callback after every
//! round. Because per-item results are deterministic for any thread
//! count and journal replay decodes to the same classification the
//! simulator computes, the final table is byte-identical whether the
//! job ran in one shot, in shards, or across a daemon kill/restart.

use std::collections::HashMap;

use lowvolt_circuit::compiled::run_campaign_packed;
use lowvolt_circuit::faults::{
    run_campaign_resilient, standard_targets, stuck_at_universe, CampaignOptions, FaultTarget,
    ResilientCampaign,
};
use lowvolt_circuit::ring::RingOscillator;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_core::optimizer::{CriticalPathModel, FixedThroughputOptimizer};
use lowvolt_core::report::{fmt_sig, Table};
use lowvolt_device::units::{Micrometers, Seconds, Volts, Watts};
use lowvolt_exec::{ByteCache, CheckpointJournal, CheckpointSpec, ExecPolicy, FaultPolicy};
use lowvolt_io::{generate, parse_path, GeneratorConfig, ImportedCircuit, IoError};
use lowvolt_isa::bblocks::BlockProfile;
use lowvolt_isa::cpu::Cpu;
use lowvolt_isa::profile::Profiler;
use lowvolt_lint::{seeded_defect, standard_lint_targets, Defect, LintConfig, LintTarget, Linter};
use lowvolt_obs::{names, span, Recorder};
use lowvolt_sta::{analyze, load_profile, StaConfig, NOMINAL_VDD, NOMINAL_VT};

/// A job failed: carries the user-facing message (identical to the
/// message the CLI would print for the same failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError(pub String);

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JobError {}

impl From<String> for JobError {
    fn from(s: String) -> JobError {
        JobError(s)
    }
}

impl From<lowvolt_circuit::CircuitError> for JobError {
    fn from(e: lowvolt_circuit::CircuitError) -> JobError {
        JobError(e.to_string())
    }
}

impl From<lowvolt_core::error::CoreError> for JobError {
    fn from(e: lowvolt_core::error::CoreError) -> JobError {
        JobError(e.to_string())
    }
}

impl From<lowvolt_device::error::DeviceError> for JobError {
    fn from(e: lowvolt_device::error::DeviceError) -> JobError {
        JobError(e.to_string())
    }
}

impl From<lowvolt_lint::UnknownRule> for JobError {
    fn from(e: lowvolt_lint::UnknownRule) -> JobError {
        JobError(format!("{e} (see `lowvolt lint --rules` for the catalog)"))
    }
}

impl From<lowvolt_lint::LintError> for JobError {
    fn from(e: lowvolt_lint::LintError) -> JobError {
        JobError(e.to_string())
    }
}

/// Streaming side-channel for long jobs: shard-round progress and
/// non-payload warnings. The daemon forwards these to the client as
/// `progress` / `warning` events; the CLI uses [`NullSink`].
pub trait JobSink {
    /// `done` of `total` journal items are complete after this round.
    fn progress(&mut self, done: u64, total: u64);
    /// A non-fatal diagnostic that is *not* part of the result payload.
    fn warning(&mut self, message: &str);
}

/// A sink that discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl JobSink for NullSink {
    fn progress(&mut self, _done: u64, _total: u64) {}
    fn warning(&mut self, _message: &str) {}
}

/// Which circuit a job runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceSpec {
    /// The command's own `--circuit` selection (standard datapaths).
    Builtin,
    /// A gate-level netlist imported from a `.blif` / `.bench` /
    /// `.isc` file.
    Netlist {
        /// File path, format detected by extension.
        path: String,
    },
    /// A seeded deterministic random netlist.
    Generate {
        /// Gate count.
        gates: u64,
        /// PRNG seed; the same seed reproduces the identical circuit.
        seed: u64,
        /// Primary-input count override.
        inputs: Option<u64>,
        /// Flip-flop share override.
        dff_fraction: Option<f64>,
    },
}

impl SourceSpec {
    /// Resolves the spec to an imported circuit; [`SourceSpec::Builtin`]
    /// resolves to `None` (the command falls back to its `--circuit`
    /// selection).
    ///
    /// # Errors
    ///
    /// Import failures surface as a single `PATH:LINE:COL: message`
    /// error; generator failures carry the generator's message.
    pub fn resolve(&self) -> Result<Option<ImportedCircuit>, JobError> {
        match self {
            SourceSpec::Builtin => Ok(None),
            SourceSpec::Netlist { path } => match parse_path(std::path::Path::new(path)) {
                Ok(c) => Ok(Some(c)),
                // Anchor parse errors at PATH:LINE:COL; file errors
                // already name the path in their Display form.
                Err(e @ IoError::Parse { .. }) => Err(JobError(format!("{path}:{e}"))),
                Err(e) => Err(JobError(e.to_string())),
            },
            SourceSpec::Generate {
                gates,
                seed,
                inputs,
                dff_fraction,
            } => {
                let mut cfg =
                    GeneratorConfig::new(usize::try_from(*gates).unwrap_or(usize::MAX), *seed);
                if let Some(k) = inputs {
                    cfg.inputs = usize::try_from(*k).unwrap_or(usize::MAX);
                }
                if let Some(f) = dff_fraction {
                    cfg.dff_fraction = *f;
                }
                Ok(Some(generate(&cfg).map_err(|e| JobError(e.to_string()))?))
            }
        }
    }
}

/// An imported circuit as a fault-campaign target.
#[must_use]
pub fn imported_fault_target(c: &ImportedCircuit) -> FaultTarget {
    FaultTarget {
        name: c.name.clone(),
        netlist: c.netlist.clone(),
        inputs: c.inputs.clone(),
        outputs: c.outputs.clone(),
        clock: c.clock,
    }
}

/// An imported circuit as a lint target: no power intent (the imported
/// formats carry none), so the power pass's intent checks are skipped
/// and leakage is priced for the whole design at the default threshold.
#[must_use]
pub fn imported_lint_target(c: &ImportedCircuit) -> LintTarget {
    LintTarget {
        name: c.name.clone(),
        netlist: c.netlist.clone(),
        inputs: c.inputs.clone(),
        outputs: c.outputs.clone(),
        clock: c.clock,
        intent: None,
        switch_view: None,
    }
}

/// Selects standard lint/timing targets by exact name (`adder8`) or
/// family name (`adder`); `all` returns every standard datapath.
///
/// # Errors
///
/// Unknown names list the valid family names.
pub fn select_standard_targets(name: &str, width: usize) -> Result<Vec<LintTarget>, JobError> {
    let all = standard_lint_targets(width).map_err(|e| JobError(e.to_string()))?;
    match name {
        "all" => Ok(all),
        name => {
            let chosen: Vec<_> = all
                .into_iter()
                .filter(|t| t.name == name || t.name.trim_end_matches(char::is_numeric) == name)
                .collect();
            if chosen.is_empty() {
                return Err(JobError(format!(
                    "unknown circuit `{name}` (adder, shifter, multiplier, alu, registers, all)"
                )));
            }
            Ok(chosen)
        }
    }
}

/// Which simulation engine a campaign runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The event-driven simulator (default; handles every circuit).
    Event,
    /// The bit-parallel levelized engine (64 vectors per word).
    Compiled,
}

impl Engine {
    /// Parses an engine name as the `--engine` flag / `"engine"` job
    /// field spells it.
    ///
    /// # Errors
    ///
    /// Unknown names list the valid engines.
    pub fn parse(name: &str) -> Result<Engine, JobError> {
        match name {
            "event" => Ok(Engine::Event),
            "compiled" => Ok(Engine::Compiled),
            other => Err(JobError(format!(
                "unknown engine `{other}` (event, compiled)"
            ))),
        }
    }
}

/// What a stuck-at campaign runs: circuit source, stimulus shape, and
/// per-injection fault policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Circuit source; [`SourceSpec::Builtin`] runs the standard
    /// datapaths at `width`.
    pub source: SourceSpec,
    /// Datapath width for builtin targets.
    pub width: usize,
    /// Stimulus vectors per injection.
    pub vectors: usize,
    /// Base stimulus seed (target `i` uses `seed + i`).
    pub seed: u64,
    /// Simulation engine.
    pub engine: Engine,
    /// Retries per failing injection.
    pub max_retries: u32,
    /// Cooperative per-item deadline.
    pub item_timeout_ms: Option<u64>,
}

impl CampaignSpec {
    /// A spec with the CLI's defaults for the given source.
    #[must_use]
    pub fn new(source: SourceSpec) -> CampaignSpec {
        CampaignSpec {
            source,
            width: 8,
            vectors: 32,
            seed: 42,
            engine: Engine::Event,
            max_retries: 0,
            item_timeout_ms: None,
        }
    }
}

/// How one campaign run is scheduled and persisted.
#[derive(Debug)]
pub struct CampaignPersist<'a> {
    /// `LVJR0001` journal path; `None` runs unjournaled (only valid
    /// with [`RunMode::Once`]).
    pub checkpoint: Option<&'a str>,
    /// Replay an existing journal instead of truncating it.
    pub resume: bool,
    /// Golden-trace cache shared across runs.
    pub cache: Option<&'a ByteCache>,
    /// One bounded pass (CLI) or journal-backed rounds (daemon).
    pub mode: RunMode,
    /// Whether persistence details (checkpoint path, cache directory,
    /// fault policy) are announced in the payload header and warnings
    /// are appended to the payload. The daemon turns this off so a
    /// job's payload is byte-identical to a *clean* CLI run regardless
    /// of the daemon's own journaling.
    pub announce: bool,
}

impl Default for CampaignPersist<'_> {
    fn default() -> Self {
        CampaignPersist {
            checkpoint: None,
            resume: false,
            cache: None,
            mode: RunMode::Once {
                interrupt_after: None,
            },
            announce: true,
        }
    }
}

/// Campaign scheduling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// One pass, optionally stopping after a number of new items (the
    /// CLI's `--interrupt-after`).
    Once {
        /// Stop after this many newly computed items.
        interrupt_after: Option<usize>,
    },
    /// Journal-backed shard rounds of at most `shard_items` new items
    /// each, looping until every item is complete. Requires a
    /// checkpoint path.
    Sharded {
        /// New items per round.
        shard_items: usize,
    },
}

/// A finished (or interrupted) campaign: the rendered payload plus
/// shard accounting for the service's result event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// The full report, byte-identical to the CLI's stdout string.
    pub payload: String,
    /// Journal items (injections or stimulus words) in the whole job.
    pub total_items: u64,
    /// Items already on the journal when this run started.
    pub replayed: u64,
    /// Items newly computed by this run.
    pub computed: u64,
    /// Items still pending (nonzero only for interrupted `Once` runs).
    pub pending: u64,
    /// Records on the journal after the run (0 when unjournaled).
    pub journal_records: u64,
}

/// One shard round's aggregate over all targets.
struct Round {
    table: Table,
    computed: usize,
    skipped: usize,
    records: u64,
    warnings: Vec<String>,
}

/// Runs a stuck-at fault campaign and renders the coverage report.
///
/// In [`RunMode::Sharded`] the fault universe is processed in journal
/// rounds of `shard_items`, with `sink.progress` called after every
/// round; the final payload is byte-identical to a clean one-shot run.
///
/// # Errors
///
/// Returns the same user-facing messages the CLI prints for bad
/// sources, refused circuits, and journal/cache failures.
pub fn run_campaign_job(
    policy: &ExecPolicy,
    rec: &dyn Recorder,
    spec: &CampaignSpec,
    persist: &CampaignPersist<'_>,
    sink: &mut dyn JobSink,
) -> Result<CampaignOutcome, JobError> {
    let imported = spec.source.resolve()?;
    let targets = match &imported {
        Some(c) => vec![imported_fault_target(c)],
        None => standard_targets(spec.width).map_err(|e| JobError(e.to_string()))?,
    };
    let faults_per: Vec<_> = targets
        .iter()
        .map(|t| stuck_at_universe(&t.netlist))
        .collect();
    let items_for = |i: usize| -> u64 {
        match spec.engine {
            Engine::Event => faults_per[i].len() as u64,
            Engine::Compiled => spec.vectors.div_ceil(64) as u64,
        }
    };
    let total_items: u64 = (0..targets.len()).map(items_for).sum();

    // Header block: everything before the first blank line may vary
    // between a fresh, interrupted, and resumed run; the coverage table
    // after it must not (the CI resume gate diffs the table).
    let mut out = match &imported {
        Some(c) => format!(
            "stuck-at fault campaign: {} ({} gates), {} vectors/injection, {} worker thread(s)\n",
            c.name,
            c.netlist.gate_count(),
            spec.vectors,
            policy.threads()
        ),
        None => format!(
            "stuck-at fault campaign: width {}, {} vectors/injection, {} worker thread(s)\n",
            spec.width,
            spec.vectors,
            policy.threads()
        ),
    };
    if spec.engine == Engine::Compiled {
        out.push_str(
            "engine: compiled (bit-parallel levelized; checkpoint unit = 64-vector word)\n",
        );
    }

    // One pass over every target with at most `budget` new items.
    // `journal_state` is `None` for unjournaled runs.
    let run_round = |journal_state: &mut Option<(CheckpointJournal, HashMap<u64, Vec<u8>>)>,
                     budget: Option<usize>|
     -> Result<Round, JobError> {
        let label_count = |res: &ResilientCampaign, label: &str| {
            res.reports
                .iter()
                .flatten()
                .filter(|r| r.outcome.label() == label)
                .count()
        };
        let mut t = Table::new([
            "target",
            "faults",
            "detected",
            "corrupted",
            "as-X",
            "masked",
            "errored",
            "coverage",
        ]);
        let mut round = Round {
            table: Table::new(["placeholder"]),
            computed: 0,
            skipped: 0,
            records: 0,
            warnings: Vec::new(),
        };
        let mut index_base = 0u64;
        let mut budget = budget;
        for (i, target) in targets.iter().enumerate() {
            let faults = &faults_per[i];
            let target_seed = spec.seed.wrapping_add(i as u64);
            let mut stimulus = PatternSource::wide_random(target.inputs.len(), target_seed)?;
            let options = CampaignOptions {
                fault: FaultPolicy {
                    max_retries: spec.max_retries,
                    item_timeout_ms: spec.item_timeout_ms,
                    ..FaultPolicy::default()
                },
                cache: persist.cache.map(|c| (c, target_seed)),
                checkpoint: journal_state
                    .as_mut()
                    .map(|(journal, completed)| CheckpointSpec {
                        journal,
                        completed,
                        index_base,
                        max_new_items: budget,
                    }),
            };
            let res = match spec.engine {
                Engine::Event => run_campaign_resilient(
                    policy,
                    rec,
                    target,
                    faults,
                    &mut stimulus,
                    spec.vectors,
                    options,
                )?,
                Engine::Compiled => run_campaign_packed(
                    policy,
                    rec,
                    target,
                    faults,
                    &mut stimulus,
                    spec.vectors,
                    options,
                )?,
            };
            round.warnings.extend(res.warnings.clone());
            if let Some(b) = budget {
                budget = Some(b.saturating_sub(res.computed));
            }
            round.computed += res.computed;
            round.skipped += res.skipped;
            // The journal item (and thus the index space) is an injection
            // for the event engine but a packed 64-vector word for the
            // compiled one.
            index_base += items_for(i);
            let masked = label_count(&res, "masked");
            let resolved = res.reports.iter().flatten().count();
            let coverage = if resolved == faults.len() {
                format!(
                    "{:.1}%",
                    (1.0 - masked as f64 / faults.len() as f64) * 100.0
                )
            } else {
                "--".to_string()
            };
            t.push_row([
                res.target.clone(),
                faults.len().to_string(),
                label_count(&res, "detected").to_string(),
                label_count(&res, "corrupted").to_string(),
                label_count(&res, "propagated-as-X").to_string(),
                masked.to_string(),
                label_count(&res, "errored").to_string(),
                coverage,
            ]);
        }
        round.records = journal_state
            .as_ref()
            .map_or(0, |(journal, _)| journal.records());
        round.table = t;
        Ok(round)
    };

    match persist.mode {
        RunMode::Once { interrupt_after } => {
            let mut payload_warnings: Vec<String> = Vec::new();
            let mut journal_state = match persist.checkpoint {
                Some(path) if persist.resume => {
                    let (journal, replay) =
                        CheckpointJournal::resume(path).map_err(|e| JobError(e.to_string()))?;
                    payload_warnings.extend(replay.warning.clone());
                    let completed = replay.completed();
                    Some((journal, completed))
                }
                Some(path) => Some((
                    CheckpointJournal::create(path).map_err(|e| JobError(e.to_string()))?,
                    HashMap::new(),
                )),
                None => None,
            };
            if let (Some(path), Some((_, completed))) = (persist.checkpoint, &journal_state) {
                if persist.announce {
                    out.push_str(&format!(
                        "checkpoint: {path} ({} completed injection(s) on file)\n",
                        completed.len()
                    ));
                }
            }
            if let Some(c) = persist.cache {
                if persist.announce {
                    out.push_str(&format!("golden-trace cache: {}\n", c.dir().display()));
                }
            }
            if (spec.max_retries > 0 || spec.item_timeout_ms.is_some()) && persist.announce {
                out.push_str(&format!(
                    "fault policy: {} retries, item timeout {}\n",
                    spec.max_retries,
                    match spec.item_timeout_ms {
                        Some(ms) => format!("{ms} ms"),
                        None => "unbounded".to_string(),
                    }
                ));
            }
            out.push('\n');
            let initial_on_file = journal_state
                .as_ref()
                .map_or(0, |(_, completed)| completed.len() as u64);
            let round = run_round(&mut journal_state, interrupt_after)?;
            payload_warnings.extend(round.warnings);
            out.push_str(&round.table.to_string());
            if round.skipped > 0 {
                let unit = match spec.engine {
                    Engine::Event => "injection",
                    Engine::Compiled => "stimulus word",
                };
                out.push_str(&format!(
                    "\ncampaign interrupted: {} {unit}(s) pending; \
                     rerun with --resume --checkpoint to finish\n",
                    round.skipped
                ));
            }
            if persist.announce {
                if !payload_warnings.is_empty() {
                    out.push('\n');
                    for w in &payload_warnings {
                        out.push_str(&format!("warning: {w}\n"));
                    }
                }
            } else {
                for w in &payload_warnings {
                    sink.warning(w);
                }
            }
            Ok(CampaignOutcome {
                payload: out,
                total_items,
                replayed: initial_on_file,
                computed: round.computed as u64,
                pending: round.skipped as u64,
                journal_records: round.records,
            })
        }
        RunMode::Sharded { shard_items } => {
            let Some(path) = persist.checkpoint else {
                return Err(JobError(
                    "sharded campaign execution requires a checkpoint journal".to_string(),
                ));
            };
            if shard_items == 0 {
                return Err(JobError("shard_items must be at least 1".to_string()));
            }
            out.push('\n');
            let mut initial_on_file: Option<u64> = None;
            let mut computed_total = 0u64;
            loop {
                // Each round resumes the journal fresh: completed items
                // (from previous rounds *or* a previous daemon life)
                // replay, then at most `shard_items` new items run.
                let (journal, replay) =
                    CheckpointJournal::resume(path).map_err(|e| JobError(e.to_string()))?;
                if initial_on_file.is_none() {
                    if let Some(w) = &replay.warning {
                        sink.warning(w);
                    }
                }
                let completed = replay.completed();
                let mut journal_state = Some((journal, completed));
                if initial_on_file.is_none() {
                    initial_on_file =
                        Some(journal_state.as_ref().map_or(0, |(_, c)| c.len() as u64));
                }
                let round = run_round(&mut journal_state, Some(shard_items))?;
                for w in &round.warnings {
                    sink.warning(w);
                }
                computed_total += round.computed as u64;
                let done = total_items - round.skipped as u64;
                sink.progress(done, total_items);
                rec.add(names::SERVE_SHARD_ROUNDS, 1);
                if round.skipped == 0 {
                    out.push_str(&round.table.to_string());
                    return Ok(CampaignOutcome {
                        payload: out,
                        total_items,
                        replayed: initial_on_file.unwrap_or(0),
                        computed: computed_total,
                        pending: 0,
                        journal_records: round.records,
                    });
                }
                if round.computed == 0 {
                    return Err(JobError(
                        "sharded campaign made no progress in a round".to_string(),
                    ));
                }
            }
        }
    }
}

/// What a lint job checks.
#[derive(Debug, Clone, PartialEq)]
pub struct LintSpec {
    /// Circuit source; [`SourceSpec::Builtin`] lints `circuit`.
    pub source: SourceSpec,
    /// A seeded defect fixture instead of a circuit.
    pub fixture: Option<String>,
    /// Standard-target selection (`all`, a family, or an exact name).
    pub circuit: String,
    /// Datapath width for standard targets.
    pub width: usize,
    /// Emit the machine-readable JSON report.
    pub json: bool,
    /// Comma-separated allow list (rule ids or names).
    pub allow: Option<String>,
    /// `warnings` or a comma-separated deny list.
    pub deny: Option<String>,
    /// Standby leakage budget in microwatts.
    pub leakage_budget_uw: Option<f64>,
}

impl LintSpec {
    /// A spec with the CLI's defaults for the given source.
    #[must_use]
    pub fn new(source: SourceSpec) -> LintSpec {
        LintSpec {
            source,
            fixture: None,
            circuit: "all".to_string(),
            width: 8,
            json: false,
            allow: None,
            deny: None,
            leakage_budget_uw: None,
        }
    }
}

/// A lint run's rendered report plus its gate verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintOutcome {
    /// The full report (text or JSON), byte-identical to the CLI's.
    pub payload: String,
    /// Whether any target failed the gate (CLI exit code 1).
    pub gate_failed: bool,
}

/// Runs the lint job and renders its report.
///
/// # Errors
///
/// Unknown fixtures, rules, circuits, and invalid budgets return the
/// same messages the CLI prints.
pub fn run_lint_job(
    policy: &ExecPolicy,
    rec: &dyn Recorder,
    spec: &LintSpec,
) -> Result<LintOutcome, JobError> {
    let mut config = LintConfig::default();
    if let Some(names) = &spec.allow {
        config = config.allow_named(names)?;
    }
    if let Some(names) = &spec.deny {
        config = config.deny_named(names)?;
    }
    if let Some(uw) = spec.leakage_budget_uw {
        if !(uw.is_finite() && uw > 0.0) {
            return Err(JobError(format!(
                "--leakage-budget-uw must be a positive number, got {uw}"
            )));
        }
        config = config.with_standby_budget(Watts(uw * 1e-6));
    }

    let targets = if let Some(fixture) = &spec.fixture {
        let defect = Defect::parse(fixture).ok_or_else(|| {
            JobError(format!(
                "unknown fixture `{fixture}` (floating, loop, sleep, leakage, slack)"
            ))
        })?;
        vec![seeded_defect(defect)?]
    } else if let Some(c) = spec.source.resolve()? {
        vec![imported_lint_target(&c)]
    } else {
        select_standard_targets(&spec.circuit, spec.width)?
    };

    let deny_warnings = config.deny_warnings;
    let reports = Linter::new(config).lint_all_recorded(policy, rec, &targets);
    let failed = reports
        .iter()
        .filter(|r| !r.passes_gate(deny_warnings))
        .count();

    let out = if spec.json {
        let mut s = String::from("[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_json());
        }
        s.push(']');
        s
    } else {
        let mut s = String::new();
        for r in &reports {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        s.push_str(&format!(
            "{} target(s) linted, {failed} failing the gate{}\n",
            reports.len(),
            if deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        ));
        s
    };
    Ok(LintOutcome {
        payload: out,
        gate_failed: failed > 0,
    })
}

/// What a static-timing job analyzes.
#[derive(Debug, Clone, PartialEq)]
pub struct StaSpec {
    /// Circuit source; [`SourceSpec::Builtin`] analyzes `circuit`.
    pub source: SourceSpec,
    /// Standard-target selection.
    pub circuit: String,
    /// Datapath width for standard targets.
    pub width: usize,
    /// Supply voltage (defaults to the nominal operating point).
    pub vdd: Option<f64>,
    /// Threshold voltage (defaults to the nominal operating point).
    pub vt: Option<f64>,
    /// Explicit required time in picoseconds.
    pub required_ps: Option<f64>,
    /// Emit the machine-readable JSON report.
    pub json: bool,
}

impl StaSpec {
    /// A spec with the CLI's defaults for the given source.
    #[must_use]
    pub fn new(source: SourceSpec) -> StaSpec {
        StaSpec {
            source,
            circuit: "all".to_string(),
            width: 8,
            vdd: None,
            vt: None,
            required_ps: None,
            json: false,
        }
    }
}

/// Runs static timing analysis and renders the text or JSON report.
///
/// # Errors
///
/// Bad operating points and unknown circuits return the same messages
/// the CLI prints.
pub fn run_sta_job(
    policy: &ExecPolicy,
    rec: &dyn Recorder,
    spec: &StaSpec,
) -> Result<String, JobError> {
    let vdd = Volts(spec.vdd.unwrap_or(NOMINAL_VDD.0));
    let vt = Volts(spec.vt.unwrap_or(NOMINAL_VT.0));
    let mut config = StaConfig::at(vdd, vt);
    if let Some(ps) = spec.required_ps {
        if !(ps.is_finite() && ps > 0.0) {
            return Err(JobError(format!(
                "--required-ps must be a positive number, got {ps}"
            )));
        }
        config = config.with_required(Seconds::from_picos(ps));
    }
    let targets = match spec.source.resolve()? {
        Some(c) => vec![imported_lint_target(&c)],
        None => select_standard_targets(&spec.circuit, spec.width)?,
    };
    let mut reports = Vec::with_capacity(targets.len());
    for t in &targets {
        reports.push(
            analyze(policy, rec, &t.name, &t.netlist, &t.outputs, config)
                .map_err(|e| JobError(e.to_string()))?,
        );
    }
    let out = if spec.json {
        let mut s = String::from("[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_json());
        }
        s.push(']');
        s
    } else {
        let mut s = String::new();
        for r in &reports {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        s
    };
    Ok(out)
}

/// What a V_DD/V_T design-space sweep optimizes.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeSpec {
    /// Per-stage (ring mode) or per-gate (STA mode) delay target.
    pub delay_ps: f64,
    /// Fixed throughput in MHz.
    pub throughput_mhz: f64,
    /// Switching activity factor.
    pub activity: f64,
    /// Replace the ring-oscillator proxy with a real circuit's
    /// critical path.
    pub sta: Option<OptimizeStaTarget>,
    /// Sweep-grid tile size: the 20-point V_T grid is priced in tiles
    /// of this many points, with a progress event per tile. Pointwise
    /// evaluation makes the concatenated table independent of tiling.
    pub tile_points: usize,
}

/// The circuit an STA-mode optimization prices.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeStaTarget {
    /// Circuit source; [`SourceSpec::Builtin`] uses `circuit`.
    pub source: SourceSpec,
    /// Standard-target selection (one circuit, not `all`).
    pub circuit: String,
    /// Datapath width for standard targets.
    pub width: usize,
}

impl OptimizeSpec {
    /// A spec with the CLI's defaults.
    #[must_use]
    pub fn new() -> OptimizeSpec {
        OptimizeSpec {
            delay_ps: 150.0,
            throughput_mhz: 1.0,
            activity: 1.0,
            sta: None,
            tile_points: 20,
        }
    }
}

impl Default for OptimizeSpec {
    fn default() -> Self {
        OptimizeSpec::new()
    }
}

/// Runs the fixed-throughput energy optimization and renders the
/// V_T/V_DD sweep table plus the optimum line.
///
/// # Errors
///
/// `all` in STA mode and model failures return the same messages the
/// CLI prints.
pub fn run_optimize_job(
    policy: &ExecPolicy,
    spec: &OptimizeSpec,
    sink: &mut dyn JobSink,
) -> Result<String, JobError> {
    let delay_ps = spec.delay_ps;
    let mhz = spec.throughput_mhz;
    let activity = spec.activity;
    let (opt, mut out) = if let Some(sta) = &spec.sta {
        let target = match sta.source.resolve()? {
            Some(c) => imported_lint_target(&c),
            None => {
                if sta.circuit == "all" {
                    return Err(JobError(
                        "optimize --sta wants one circuit, not `all`".to_string(),
                    ));
                }
                let mut targets = select_standard_targets(&sta.circuit, sta.width)?;
                targets.swap_remove(0)
            }
        };
        let target = &target;
        let profile =
            load_profile(&target.netlist, &target.outputs).map_err(|e| JobError(e.to_string()))?;
        let model = CriticalPathModel::new(
            Micrometers(2.0),
            profile.path_load,
            profile.switched_cap,
            profile.gates,
        )?;
        let path_target = Seconds::from_picos(delay_ps * profile.depth as f64);
        let opt = FixedThroughputOptimizer::for_critical_path(model, path_target, activity)?;
        let header = format!(
            "sta mode: {} — critical path {} gates ({:.1} fF), switched cap {:.1} fF over {} gates\ndelay target {delay_ps} ps/gate ({:.1} ps whole-path), throughput {mhz} MHz, activity {activity}\n\n",
            target.name,
            profile.depth,
            profile.path_load.to_femtofarads(),
            profile.switched_cap.to_femtofarads(),
            profile.gates,
            path_target.0 * 1e12,
        );
        (opt, header)
    } else {
        let ring = RingOscillator::paper_default()?;
        let opt = FixedThroughputOptimizer::new(ring, Seconds::from_picos(delay_ps), activity)
            .map_err(|e| JobError(e.to_string()))?;
        let header = format!(
            "delay target {delay_ps} ps/stage, throughput {mhz} MHz, activity {activity}\n\n"
        );
        (opt, header)
    };
    let t_op = Seconds(1e-6 / mhz);
    let mut t = Table::new(["V_T (V)", "V_DD (V)", "E_total (J/op)"]);
    let vts: Vec<Volts> = (1..=20).map(|i| Volts(0.03 * f64::from(i))).collect();
    // Price the grid tile by tile: `energy_curve` is a pointwise map,
    // so concatenating per-tile results is byte-identical to one call.
    let tile = spec.tile_points.max(1);
    let tiles_total = vts.len().div_ceil(tile) as u64;
    for (tile_index, chunk) in vts.chunks(tile).enumerate() {
        for p in opt.energy_curve(chunk, t_op) {
            t.push_row([
                format!("{:.2}", p.vt.0),
                format!("{:.3}", p.vdd.0),
                fmt_sig(p.total().0, 3),
            ]);
        }
        if tiles_total > 1 {
            sink.progress(tile_index as u64 + 1, tiles_total);
        }
    }
    out.push_str(&t.to_string());
    let best = opt
        .optimum_with(policy, t_op)
        .map_err(|e| JobError(e.to_string()))?;
    out.push_str(&format!(
        "\noptimum: V_T = {:.3} V, V_DD = {:.3} V, {} J/op\n",
        best.vt.0,
        best.vdd.0,
        fmt_sig(best.total().0, 3)
    ));
    Ok(out)
}

/// Which guest program a profile job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// A named example workload.
    Example(String),
    /// Assembly source text.
    Text(String),
}

/// What a profile job executes and measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// The guest program.
    pub source: ProgramSource,
    /// Instruction budget before the run is aborted.
    pub budget: u64,
    /// Functional-unit power-down hysteresis in instructions.
    pub hysteresis: u64,
    /// Bursty execution duty cycle (enables the burst energy model).
    pub duty: Option<f64>,
    /// Report hot basic blocks instead of plain unit statistics.
    pub blocks: bool,
}

impl ProfileSpec {
    /// A spec with the CLI's defaults for the given program.
    #[must_use]
    pub fn new(source: ProgramSource) -> ProfileSpec {
        ProfileSpec {
            source,
            budget: 200_000_000,
            hysteresis: 1,
            duty: None,
            blocks: false,
        }
    }
}

/// Resolves a named example workload to its assembly source.
///
/// # Errors
///
/// Unknown names list the valid examples.
pub fn example_source(name: &str) -> Result<String, JobError> {
    match name {
        "idea" => Ok(lowvolt_workloads::idea::program(50)),
        "espresso" => {
            Ok(lowvolt_workloads::espresso::program(120, 42)
                .map_err(|e| JobError(e.to_string()))?)
        }
        "li" => Ok(lowvolt_workloads::li::program(9, 42, 5)),
        "fir" => Ok(lowvolt_workloads::fir::program(200, 42)),
        other => Err(JobError(format!(
            "unknown example `{other}` (idea, espresso, li, fir)"
        ))),
    }
}

/// Runs the ISA profiler job and renders its report.
///
/// # Errors
///
/// Assembly, execution, and budget failures return the same messages
/// the CLI prints.
pub fn run_profile_job(rec: &dyn Recorder, spec: &ProfileSpec) -> Result<String, JobError> {
    let source = match &spec.source {
        ProgramSource::Example(name) => example_source(name)?,
        ProgramSource::Text(text) => text.clone(),
    };
    let budget = spec.budget;
    let hysteresis = spec.hysteresis;
    let mut out = String::new();

    let report = if let Some(duty) = spec.duty {
        let schedule = lowvolt_workloads::bursty::BurstSchedule::with_duty(1_000, duty)
            .map_err(|e| JobError(e.to_string()))?;
        out.push_str(&format!(
            "bursty execution: duty {:.3} ({} on / {} idle)\n",
            schedule.duty(),
            schedule.burst_len,
            schedule.idle_len
        ));
        lowvolt_workloads::bursty::profile_bursty_recorded(
            &source, schedule, budget, hysteresis, rec,
        )
        .map_err(JobError)?
    } else {
        let timer = span(rec, names::SPAN_PROFILE_RUN);
        let program = lowvolt_isa::assemble(&source).map_err(|e| JobError(e.to_string()))?;
        let mut cpu = Cpu::new(program.clone());
        let mut profiler = Profiler::standard().with_hysteresis(hysteresis);
        if spec.blocks {
            let mut blocks = BlockProfile::new(&program);
            let mut executed = 0u64;
            while !cpu.halted() {
                if executed >= budget {
                    return Err(JobError(format!(
                        "budget of {budget} instructions exhausted"
                    )));
                }
                blocks.record_pc(cpu.pc());
                if let Some(inst) = cpu.step().map_err(|e| JobError(e.to_string()))? {
                    profiler.record(&inst);
                    executed += 1;
                }
            }
            blocks.flush_metrics(rec);
            out.push_str("hot basic blocks (dynamic instructions):\n");
            let mut t = Table::new(["range", "static len", "dynamic instrs"]);
            for (b, dynamic) in blocks.hottest(5) {
                t.push_row([
                    format!("[{}..{})", b.start, b.end),
                    b.len().to_string(),
                    dynamic.to_string(),
                ]);
            }
            out.push_str(&t.to_string());
            out.push('\n');
        } else {
            cpu.run_profiled(budget, &mut profiler)
                .map_err(|e| JobError(e.to_string()))?;
        }
        drop(timer);
        profiler.flush_metrics(rec);
        if !cpu.output().is_empty() {
            out.push_str(&format!("program output: {}\n\n", cpu.output()));
        }
        profiler.report()
    };
    out.push_str(&report.to_string());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_obs::noop;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lowvolt_serve_jobs_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    struct CountingSink {
        progress: Vec<(u64, u64)>,
        warnings: Vec<String>,
    }

    impl CountingSink {
        fn new() -> CountingSink {
            CountingSink {
                progress: Vec::new(),
                warnings: Vec::new(),
            }
        }
    }

    impl JobSink for CountingSink {
        fn progress(&mut self, done: u64, total: u64) {
            self.progress.push((done, total));
        }
        fn warning(&mut self, message: &str) {
            self.warnings.push(message.to_string());
        }
    }

    fn small_spec(engine: Engine) -> CampaignSpec {
        CampaignSpec {
            width: 2,
            vectors: 4,
            engine,
            ..CampaignSpec::new(SourceSpec::Builtin)
        }
    }

    #[test]
    fn sharded_campaign_payload_matches_one_shot() {
        let dir = tmp_dir("sharded_vs_once");
        let policy = ExecPolicy::with_threads(2);
        let spec = small_spec(Engine::Event);
        let clean = run_campaign_job(
            &policy,
            noop(),
            &spec,
            &CampaignPersist::default(),
            &mut NullSink,
        )
        .unwrap();
        let journal = dir.join("job.lvjr");
        let mut sink = CountingSink::new();
        let sharded = run_campaign_job(
            &policy,
            noop(),
            &spec,
            &CampaignPersist {
                checkpoint: Some(journal.to_str().unwrap()),
                resume: true,
                cache: None,
                mode: RunMode::Sharded { shard_items: 7 },
                announce: false,
            },
            &mut sink,
        )
        .unwrap();
        assert_eq!(
            clean.payload, sharded.payload,
            "sharded must be byte-identical"
        );
        assert_eq!(sharded.pending, 0);
        assert_eq!(sharded.replayed, 0);
        assert_eq!(sharded.computed, sharded.total_items);
        assert_eq!(sharded.journal_records, sharded.total_items);
        assert!(sink.progress.len() >= 2, "one progress event per round");
        let (done, total) = *sink.progress.last().unwrap();
        assert_eq!((done, total), (sharded.total_items, sharded.total_items));
        // Monotone progress.
        for w in sink.progress.windows(2) {
            assert!(w[1].0 > w[0].0, "{:?}", sink.progress);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_campaign_resumes_a_partial_journal() {
        let dir = tmp_dir("sharded_resume");
        let journal = dir.join("job.lvjr");
        let policy = ExecPolicy::with_threads(1);
        let spec = small_spec(Engine::Compiled);
        // Interrupt a one-shot run after 2 words, then finish sharded.
        let interrupted = run_campaign_job(
            &policy,
            noop(),
            &spec,
            &CampaignPersist {
                checkpoint: Some(journal.to_str().unwrap()),
                resume: false,
                cache: None,
                mode: RunMode::Once {
                    interrupt_after: Some(2),
                },
                announce: true,
            },
            &mut NullSink,
        )
        .unwrap();
        assert!(interrupted.pending > 0);
        let clean = run_campaign_job(
            &policy,
            noop(),
            &spec,
            &CampaignPersist::default(),
            &mut NullSink,
        )
        .unwrap();
        let resumed = run_campaign_job(
            &policy,
            noop(),
            &spec,
            &CampaignPersist {
                checkpoint: Some(journal.to_str().unwrap()),
                resume: true,
                cache: None,
                mode: RunMode::Sharded { shard_items: 1 },
                announce: false,
            },
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(resumed.payload, clean.payload);
        assert_eq!(resumed.replayed, 2, "two words were already on file");
        assert_eq!(
            resumed.replayed + resumed.computed,
            resumed.total_items,
            "only the remaining shards re-execute"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_mode_requires_a_journal_and_progress() {
        let policy = ExecPolicy::with_threads(1);
        let spec = small_spec(Engine::Event);
        let err = run_campaign_job(
            &policy,
            noop(),
            &spec,
            &CampaignPersist {
                mode: RunMode::Sharded { shard_items: 4 },
                ..CampaignPersist::default()
            },
            &mut NullSink,
        )
        .unwrap_err();
        assert!(err.0.contains("checkpoint"), "{err}");
    }

    #[test]
    fn optimize_tiling_is_invariant() {
        let policy = ExecPolicy::with_threads(1);
        let whole = run_optimize_job(&policy, &OptimizeSpec::new(), &mut NullSink).unwrap();
        let mut sink = CountingSink::new();
        let tiled = run_optimize_job(
            &policy,
            &OptimizeSpec {
                tile_points: 3,
                ..OptimizeSpec::new()
            },
            &mut sink,
        )
        .unwrap();
        assert_eq!(whole, tiled, "tile size must not change the table");
        assert_eq!(sink.progress.len(), 7, "ceil(20/3) tiles");
        assert_eq!(*sink.progress.last().unwrap(), (7, 7));
    }

    #[test]
    fn engine_and_example_parsing_match_the_cli_messages() {
        assert_eq!(Engine::parse("event").unwrap(), Engine::Event);
        assert_eq!(Engine::parse("compiled").unwrap(), Engine::Compiled);
        let err = Engine::parse("vliw").unwrap_err();
        assert!(err.0.contains("unknown engine `vliw`"), "{err}");
        let err = example_source("nonsuch").unwrap_err();
        assert!(err.0.contains("unknown example `nonsuch`"), "{err}");
    }
}
