#![warn(missing_docs)]

//! # lowvolt-io
//!
//! Netlist interchange for the lowvolt toolkit: streaming parsers for
//! **BLIF** (`.model`/`.inputs`/`.outputs`/`.names`/`.latch`, SOP covers
//! mapped onto the [`lowvolt_circuit`] gate library) and the
//! **ISCAS-85/89 bench** format (`INPUT`/`OUTPUT`/`= GATE(...)`, `DFF`),
//! a BLIF **writer** for round-tripping, and a **seeded deterministic
//! random-netlist generator** scaled to 10⁵–10⁶ gates.
//!
//! Every parser produces an [`ImportedCircuit`] — the same
//! netlist + stimulus contract shape the fault-campaign, lint, STA, and
//! activity layers already consume — and fails with a typed, line- and
//! column-anchored [`IoError`] instead of panicking or returning a
//! partially built netlist.
//!
//! Guarantees:
//!
//! - **Round-trip**: `parse(write(parse(text)))` is structurally
//!   identical to `parse(text)` (see [`circuits_equivalent`]); covers
//!   the writer emits are canonical, so every library gate survives a
//!   write → parse cycle as itself.
//! - **Generator soundness**: generated netlists are acyclic (with
//!   flip-flop edges cut), single-driver, free of dangling nets (every
//!   sink is a declared output), keep the clock out of the data
//!   network, and never route a register output back into a register
//!   data input — exactly the shape the compiled bit-parallel engine
//!   accepts.
//! - **Determinism**: the same [`GeneratorConfig`] (seed included)
//!   produces a byte-identical netlist, on any host.

mod bench;
mod blif;
mod generate;

pub use bench::parse_bench;
pub use blif::{parse_blif, write_blif};
pub use generate::{generate, GeneratorConfig};

use std::fmt;
use std::path::Path;

use lowvolt_circuit::netlist::{Netlist, NodeId};

/// A circuit imported from an interchange format or produced by the
/// generator: the netlist plus the stimulus contract every downstream
/// consumer (campaigns, lint, STA, activity extraction) works from.
#[derive(Debug, Clone)]
pub struct ImportedCircuit {
    /// Name (the `.model` name, the file stem, or a generator tag).
    pub name: String,
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Stimulus-driven primary inputs, in declaration order, excluding
    /// the clock.
    pub inputs: Vec<NodeId>,
    /// Declared observable outputs, in declaration order.
    pub outputs: Vec<NodeId>,
    /// The flip-flop clock, if the circuit is sequential.
    pub clock: Option<NodeId>,
}

/// A supported interchange format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Berkeley Logic Interchange Format (`.blif`).
    Blif,
    /// ISCAS-85/89 bench format (`.bench`).
    Bench,
}

impl Format {
    /// Detects the format from a file extension.
    #[must_use]
    pub fn from_path(path: &Path) -> Option<Format> {
        match path.extension()?.to_str()? {
            "blif" => Some(Format::Blif),
            "bench" | "isc" => Some(Format::Bench),
            _ => None,
        }
    }

    /// The conventional lowercase name (`blif`, `bench`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Format::Blif => "blif",
            Format::Bench => "bench",
        }
    }
}

/// Why an import, export, or generation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The input text violates the format. Carries the 1-based line and
    /// column of the offending token, so the message renders as
    /// `line:column: …`.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// What went wrong, in format vocabulary.
        message: String,
    },
    /// The file could not be read or its format was not recognised.
    File {
        /// The path involved.
        path: String,
        /// The underlying reason.
        reason: String,
    },
    /// A netlist could not be serialised (e.g. a node name containing
    /// whitespace, which the line-oriented formats cannot quote).
    Unwritable {
        /// Why the netlist cannot be written.
        reason: String,
    },
    /// A [`GeneratorConfig`] field is outside its meaningful range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// The constraint it violated.
        constraint: &'static str,
    },
}

impl IoError {
    /// Builds a parse error at a position.
    #[must_use]
    pub fn parse(line: usize, column: usize, message: impl Into<String>) -> IoError {
        IoError::Parse {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Parse {
                line,
                column,
                message,
            } => write!(f, "{line}:{column}: {message}"),
            IoError::File { path, reason } => write!(f, "{path}: {reason}"),
            IoError::Unwritable { reason } => write!(f, "cannot write netlist: {reason}"),
            IoError::InvalidConfig { field, constraint } => {
                write!(f, "generator config: {field} {constraint}")
            }
        }
    }
}

impl std::error::Error for IoError {}

/// Reads and parses a netlist file, detecting the format from the
/// extension (`.blif` → BLIF, `.bench`/`.isc` → ISCAS bench).
///
/// # Errors
///
/// [`IoError::File`] if the file cannot be read or the extension is not
/// a supported format; [`IoError::Parse`] (line/column-anchored) if the
/// contents are malformed.
pub fn parse_path(path: &Path) -> Result<ImportedCircuit, IoError> {
    let format = Format::from_path(path).ok_or_else(|| IoError::File {
        path: path.display().to_string(),
        reason: "unrecognised extension (supported: .blif, .bench)".to_string(),
    })?;
    let text = std::fs::read_to_string(path).map_err(|e| IoError::File {
        path: path.display().to_string(),
        reason: e.to_string(),
    })?;
    let fallback_name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("imported")
        .to_string();
    parse_str(format, &fallback_name, &text)
}

/// Parses netlist text in an explicit format. `fallback_name` names the
/// circuit when the text itself does not (bench files, BLIF without a
/// `.model` name).
///
/// # Errors
///
/// [`IoError::Parse`] with the offending line and column.
pub fn parse_str(
    format: Format,
    fallback_name: &str,
    text: &str,
) -> Result<ImportedCircuit, IoError> {
    match format {
        Format::Blif => parse_blif(fallback_name, text),
        Format::Bench => parse_bench(fallback_name, text),
    }
}

/// Structural equivalence of two imported circuits, up to node
/// renumbering: node names are the matching key, and the check covers
/// node count, per-name input flags, the full gate list (kind, delay,
/// input/output names, in gate order), the primary-input name sequence,
/// the declared-output name sequence, and the clock.
///
/// This is the round-trip contract: parsers create nodes at first
/// textual reference, so `parse(write(c))` reproduces `c` exactly under
/// this equivalence (and usually with identical node ids too).
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn circuits_equivalent(a: &ImportedCircuit, b: &ImportedCircuit) -> Result<(), String> {
    let (na, nb) = (&a.netlist, &b.netlist);
    if na.node_count() != nb.node_count() {
        return Err(format!(
            "node counts differ: {} vs {}",
            na.node_count(),
            nb.node_count()
        ));
    }
    if na.gate_count() != nb.gate_count() {
        return Err(format!(
            "gate counts differ: {} vs {}",
            na.gate_count(),
            nb.gate_count()
        ));
    }
    // Name → id maps; names must be unique for the mapping to be a
    // bijection (our parsers and generator guarantee this).
    let names_of = |n: &Netlist| -> Result<std::collections::HashMap<String, NodeId>, String> {
        let mut m = std::collections::HashMap::with_capacity(n.node_count());
        for id in n.node_ids() {
            if m.insert(n.node_name(id).to_string(), id).is_some() {
                return Err(format!("duplicate node name `{}`", n.node_name(id)));
            }
        }
        Ok(m)
    };
    let map_b = names_of(nb)?;
    names_of(na)?;
    for id in na.node_ids() {
        let name = na.node_name(id);
        let Some(&other) = map_b.get(name) else {
            return Err(format!("node `{name}` missing from the second netlist"));
        };
        if na.is_primary_input(id) != nb.is_primary_input(other) {
            return Err(format!("node `{name}`: primary-input flags differ"));
        }
    }
    for (i, (ga, gb)) in na.gates().iter().zip(nb.gates()).enumerate() {
        if ga.kind != gb.kind {
            return Err(format!(
                "gate {i}: kinds differ ({} vs {})",
                ga.kind.name(),
                gb.kind.name()
            ));
        }
        if ga.delay != gb.delay {
            return Err(format!("gate {i}: delays differ"));
        }
        if na.node_name(ga.output) != nb.node_name(gb.output) {
            return Err(format!(
                "gate {i}: outputs differ (`{}` vs `{}`)",
                na.node_name(ga.output),
                nb.node_name(gb.output)
            ));
        }
        for (j, (&ia, &ib)) in ga.inputs.iter().zip(&gb.inputs).enumerate() {
            if na.node_name(ia) != nb.node_name(ib) {
                return Err(format!(
                    "gate {i} input {j}: `{}` vs `{}`",
                    na.node_name(ia),
                    nb.node_name(ib)
                ));
            }
        }
    }
    let name_seq = |n: &Netlist, ids: &[NodeId]| -> Vec<String> {
        ids.iter().map(|&i| n.node_name(i).to_string()).collect()
    };
    if name_seq(na, na.primary_inputs()) != name_seq(nb, nb.primary_inputs()) {
        return Err("primary-input orders differ".to_string());
    }
    if name_seq(na, &a.inputs) != name_seq(nb, &b.inputs) {
        return Err("stimulus input lists differ".to_string());
    }
    if name_seq(na, &a.outputs) != name_seq(nb, &b.outputs) {
        return Err("declared output lists differ".to_string());
    }
    match (a.clock, b.clock) {
        (None, None) => {}
        (Some(ca), Some(cb)) if na.node_name(ca) == nb.node_name(cb) => {}
        _ => return Err("clocks differ".to_string()),
    }
    Ok(())
}
