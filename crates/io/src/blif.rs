//! BLIF (Berkeley Logic Interchange Format) import and export.
//!
//! The parser is streaming and line-oriented: `#` comments, `\`
//! continuations, `.model`/`.inputs`/`.outputs`/`.names`/`.latch`/`.end`
//! directives. Each `.names` single-output cover is mapped onto the
//! [`lowvolt_circuit`] gate library — first by truth-table matching
//! (fanin ≤ 3 covers that compute exactly a library function become one
//! gate, input order preserved), then by sum-of-products decomposition
//! (each cube an AND chain of literals, cubes OR-ed, off-set covers
//! inverted). `.latch` becomes a [`GateKind::Dff`] clocked by the
//! latch's `re` control signal.
//!
//! The writer emits one canonical on-set cover per gate kind, so every
//! library gate survives a write → parse cycle as itself, and nodes are
//! created at first textual reference on both sides — the round-trip
//! identity the fixture tests pin down.

use std::collections::HashMap;

use lowvolt_circuit::logic::Bit;
use lowvolt_circuit::netlist::{GateKind, Netlist, NodeId};

use crate::{ImportedCircuit, IoError};

/// Maximum cover fanin the parser accepts. SOP decomposition is linear
/// in cubes × literals, but truth-table phase handling expands the
/// input plane, and real BLIF from synthesis rarely exceeds this.
const MAX_COVER_FANIN: usize = 24;

/// One logical (continuation-joined) line and where it started.
struct Line<'a> {
    line_no: usize,
    text: &'a str,
    joined: String,
}

impl Line<'_> {
    /// The effective text: the borrowed line, or the joined buffer when
    /// continuations were folded in.
    fn text(&self) -> &str {
        if self.joined.is_empty() {
            self.text
        } else {
            &self.joined
        }
    }

    /// 1-based column of a token within this line (best effort for
    /// joined lines: position within the folded text).
    fn column_of(&self, token: &str) -> usize {
        self.text().find(token).map_or(1, |p| p + 1)
    }
}

/// Strips a `#` comment, honouring nothing fancier (BLIF has no
/// strings).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(p) => &line[..p],
        None => line,
    }
}

/// Folds `\` continuations into logical lines, tracking the physical
/// line each began on.
fn logical_lines(text: &str) -> Vec<Line<'_>> {
    let mut out: Vec<Line<'_>> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let stripped = strip_comment(raw);
        let (content, continues) = match stripped.trim_end().strip_suffix('\\') {
            Some(head) => (head, true),
            None => (stripped, false),
        };
        match (&mut pending, continues) {
            (Some((_, buf)), true) => {
                buf.push(' ');
                buf.push_str(content);
            }
            (Some((start, buf)), false) => {
                buf.push(' ');
                buf.push_str(content);
                let (start, joined) = (*start, std::mem::take(buf));
                pending = None;
                out.push(Line {
                    line_no: start,
                    text: "",
                    joined,
                });
            }
            (None, true) => pending = Some((line_no, content.to_string())),
            (None, false) => out.push(Line {
                line_no,
                text: stripped,
                joined: String::new(),
            }),
        }
    }
    if let Some((start, buf)) = pending {
        out.push(Line {
            line_no: start,
            text: "",
            joined: buf,
        });
    }
    out
}

/// Builder state shared by both parsers: a netlist, the name → node
/// map (nodes created at first reference — the round-trip ordering
/// contract), and the driven-signal set enforcing single drivers.
pub(crate) struct NetBuilder {
    pub netlist: Netlist,
    nodes: HashMap<String, NodeId>,
    driven: Vec<bool>,
    declared_input: Vec<bool>,
}

impl NetBuilder {
    pub(crate) fn new() -> NetBuilder {
        NetBuilder {
            netlist: Netlist::new(),
            nodes: HashMap::new(),
            driven: Vec::new(),
            declared_input: Vec::new(),
        }
    }

    /// The node for `name`, created as a plain node on first reference.
    pub(crate) fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.nodes.get(name) {
            return id;
        }
        let id = self.netlist.node(name);
        self.nodes.insert(name.to_string(), id);
        self.driven.push(false);
        self.declared_input.push(false);
        id
    }

    /// Declares `name` a primary input. Errors if it is already driven
    /// by a gate or already declared.
    pub(crate) fn input(&mut self, name: &str) -> Result<NodeId, String> {
        if let Some(&id) = self.nodes.get(name) {
            if self.declared_input[id.index()] {
                return Err(format!("`{name}` is declared an input twice"));
            }
            if self.driven[id.index()] {
                return Err(format!("`{name}` is both a gate output and an input"));
            }
            // The node exists but was only referenced; netlists cannot
            // retrofit the input flag, so forward references to a name
            // later declared `.inputs` are rejected for determinism.
            return Err(format!("`{name}` was used before its input declaration"));
        }
        let id = self.netlist.input(name);
        self.nodes.insert(name.to_string(), id);
        self.driven.push(false);
        self.declared_input.push(false);
        self.declared_input[id.index()] = true;
        Ok(id)
    }

    /// Marks `name`'s node as gate-driven, enforcing one driver and no
    /// drive fights with declared inputs. Returns the node.
    pub(crate) fn drive(&mut self, name: &str) -> Result<NodeId, String> {
        let id = self.node(name);
        if self.declared_input[id.index()] {
            return Err(format!("`{name}` is a declared input and cannot be driven"));
        }
        if self.driven[id.index()] {
            return Err(format!("`{name}` is driven twice"));
        }
        self.driven[id.index()] = true;
        Ok(id)
    }

    /// Adds an intermediate gate (auto-named output) during SOP or
    /// wide-fanin decomposition; the auto-generated name is registered
    /// so the written form re-parses to the identical structure.
    pub(crate) fn synth_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NodeId],
    ) -> Result<NodeId, String> {
        let out = self.netlist.gate(kind, inputs).map_err(|e| e.to_string())?;
        let name = self.netlist.node_name(out).to_string();
        if self.nodes.contains_key(&name) {
            return Err(format!(
                "auto-generated name `{name}` collides with an existing signal"
            ));
        }
        self.nodes.insert(name, out);
        self.driven.push(true);
        self.declared_input.push(false);
        Ok(out)
    }

    /// Whether any signal with this name exists yet.
    pub(crate) fn contains(&self, name: &str) -> bool {
        self.nodes.contains_key(name)
    }

    /// Signals that are referenced somewhere but never driven, never
    /// declared inputs: undriven wires the caller may want to report.
    pub(crate) fn undriven(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for (name, &id) in &self.nodes {
            if !self.driven[id.index()] && !self.declared_input[id.index()] {
                out.push(name.clone());
            }
        }
        out.sort();
        out
    }
}

/// A `.names` cover: input names, output name, and the cube rows.
struct Cover {
    line_no: usize,
    column: usize,
    inputs: Vec<String>,
    output: String,
    /// `(input plane, output bit)` rows; the plane uses `0`/`1`/`-`.
    rows: Vec<(String, char)>,
}

/// Library gates eligible for truth-table matching, grouped by arity.
/// Order is fixed: it decides which kind a matching cover becomes, and
/// the writer's canonical covers land on these same entries.
const MATCH_1: [GateKind; 2] = [GateKind::Buf, GateKind::Not];
const MATCH_2: [GateKind; 6] = [
    GateKind::And2,
    GateKind::Or2,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::Xor2,
    GateKind::Xnor2,
];
const MATCH_3: [GateKind; 5] = [
    GateKind::And3,
    GateKind::Or3,
    GateKind::Nand3,
    GateKind::Nor3,
    GateKind::Mux2,
];

/// The truth table of a cover over `n ≤ 6` inputs as a bitmap indexed
/// by the input assignment (bit `i` of the index = input `i`).
fn cover_truth_table(n: usize, rows: &[(String, char)], phase: bool) -> u64 {
    let mut on = 0u64;
    for idx in 0..(1u64 << n) {
        let covered = rows.iter().any(|(plane, _)| {
            plane.chars().enumerate().all(|(i, c)| match c {
                '1' => idx >> i & 1 == 1,
                '0' => idx >> i & 1 == 0,
                _ => true,
            })
        });
        if covered {
            on |= 1 << idx;
        }
    }
    if phase {
        on
    } else {
        !on & ((1u64 << (1u64 << n)) - 1)
    }
}

/// The truth table of a library gate over its arity.
fn kind_truth_table(kind: GateKind) -> u64 {
    let n = kind.arity();
    let mut on = 0u64;
    for idx in 0..(1u64 << n) {
        let bits: Vec<Bit> = (0..n)
            .map(|i| {
                if idx >> i & 1 == 1 {
                    Bit::One
                } else {
                    Bit::Zero
                }
            })
            .collect();
        if kind.evaluate(&bits) == Bit::One {
            on |= 1 << idx;
        }
    }
    on
}

/// Builds the gates for one cover: a single library gate when the truth
/// table matches, otherwise an SOP decomposition. `err` converts a
/// message into a positioned parse error.
fn build_cover(b: &mut NetBuilder, cover: &Cover) -> Result<(), IoError> {
    let err = |msg: String| IoError::parse(cover.line_no, cover.column, msg);
    let n = cover.inputs.len();
    if n == 0 {
        return Err(err(format!(
            "constant cover for `{}` is not supported: the gate library has \
             no constant driver (tie the signal to an input instead)",
            cover.output
        )));
    }
    if n > MAX_COVER_FANIN {
        return Err(err(format!(
            "cover fanin {n} exceeds the supported maximum {MAX_COVER_FANIN}"
        )));
    }
    if cover.rows.is_empty() {
        return Err(err(format!(
            "cover for `{}` has inputs but no cubes",
            cover.output
        )));
    }
    let phase = cover.rows[0].1 == '1';
    if cover.rows.iter().any(|&(_, out)| (out == '1') != phase) {
        return Err(err("cover mixes on-set and off-set rows".to_string()));
    }

    // Fast path: small covers that compute exactly a library function
    // become one gate, preserving the cover's input order.
    if n <= 3 {
        let tt = cover_truth_table(n, &cover.rows, phase);
        let candidates: &[GateKind] = match n {
            1 => &MATCH_1,
            2 => &MATCH_2,
            _ => &MATCH_3,
        };
        if let Some(&kind) = candidates.iter().find(|&&k| kind_truth_table(k) == tt) {
            let ins: Vec<NodeId> = cover.inputs.iter().map(|s| b.node(s)).collect();
            let out = b.drive(&cover.output).map_err(err)?;
            b.netlist
                .gate_into(kind, &ins, out)
                .map_err(|e| err(e.to_string()))?;
            return Ok(());
        }
    }

    // General path: SOP decomposition. Literals are resolved lazily so
    // node-creation order is the sub-gate reference order — the same
    // order a re-parse of the written form produces.
    let mut inverters: HashMap<usize, NodeId> = HashMap::new();
    let mut cube_nodes: Vec<NodeId> = Vec::with_capacity(cover.rows.len());
    for (plane, _) in &cover.rows {
        if plane.chars().all(|c| c == '-') {
            return Err(err(format!(
                "cube `{plane}` covers every assignment, making `{}` constant \
                 — constants are not supported",
                cover.output
            )));
        }
        let mut literals: Vec<NodeId> = Vec::new();
        for (i, c) in plane.chars().enumerate() {
            match c {
                '-' => {}
                '1' => literals.push(b.node(&cover.inputs[i])),
                '0' => {
                    let lit = match inverters.get(&i) {
                        Some(&inv) => inv,
                        None => {
                            let base = b.node(&cover.inputs[i]);
                            let inv = b.synth_gate(GateKind::Not, &[base]).map_err(err)?;
                            inverters.insert(i, inv);
                            inv
                        }
                    };
                    literals.push(lit);
                }
                other => {
                    return Err(err(format!("invalid cube character `{other}`")));
                }
            }
        }
        let cube = fold_chain(b, GateKind::And2, &literals).map_err(err)?;
        cube_nodes.push(cube);
    }
    // OR the cubes; invert for off-set covers; the last gate drives the
    // declared output node directly.
    let out = b.drive(&cover.output).map_err(err)?;
    let sum = if cube_nodes.len() == 1 {
        cube_nodes[0]
    } else {
        let partial =
            fold_chain(b, GateKind::Or2, &cube_nodes[..cube_nodes.len() - 1]).map_err(err)?;
        if phase {
            b.netlist
                .gate_into(
                    GateKind::Or2,
                    &[partial, cube_nodes[cube_nodes.len() - 1]],
                    out,
                )
                .map_err(|e| err(e.to_string()))?;
            return Ok(());
        }
        b.synth_gate(GateKind::Or2, &[partial, cube_nodes[cube_nodes.len() - 1]])
            .map_err(err)?
    };
    let final_kind = if phase { GateKind::Buf } else { GateKind::Not };
    b.netlist
        .gate_into(final_kind, &[sum], out)
        .map_err(|e| err(e.to_string()))?;
    Ok(())
}

/// Left-folds `nodes` into a chain of 2-input gates; a single node is
/// returned unchanged.
pub(crate) fn fold_chain(
    b: &mut NetBuilder,
    kind: GateKind,
    nodes: &[NodeId],
) -> Result<NodeId, String> {
    match nodes {
        [] => Err("cube has no literals".to_string()),
        [one] => Ok(*one),
        [first, rest @ ..] => {
            let mut acc = *first;
            for &next in rest {
                acc = b.synth_gate(kind, &[acc, next])?;
            }
            Ok(acc)
        }
    }
}

/// Parses BLIF text into an [`ImportedCircuit`].
///
/// Supported directives: `.model` (first one names the circuit; a
/// second model is rejected), `.inputs`, `.outputs` (both repeatable,
/// appending), `.names` single-output covers, `.latch input output
/// [re|fe clock] [init]`, `.end`. `.exdc`, `.subckt`, `.search`,
/// `.gate`, and friends are rejected with a positioned error rather
/// than silently skipped.
///
/// All latches must share one `re` clock (the event and compiled
/// engines drive a single two-phase clock); `fe` latches and latch
/// types other than `re` are rejected.
///
/// # Errors
///
/// [`IoError::Parse`] anchored at the offending line and column.
pub fn parse_blif(fallback_name: &str, text: &str) -> Result<ImportedCircuit, IoError> {
    let lines = logical_lines(text);
    let mut name: Option<String> = None;
    let mut b = NetBuilder::new();
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut clock_name: Option<String> = None;
    let mut pending_cover: Option<Cover> = None;
    let mut saw_end = false;

    let flush_cover = |b: &mut NetBuilder, pending: &mut Option<Cover>| match pending.take() {
        Some(cover) => build_cover(b, &cover),
        None => Ok(()),
    };

    for line in &lines {
        let text = line.text().trim();
        if text.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let first = tokens[0];
        let col = line.column_of(first);
        if saw_end && first.starts_with('.') {
            return Err(IoError::parse(
                line.line_no,
                col,
                format!("`{first}` after .end (one model per file)"),
            ));
        }
        match first {
            ".model" => {
                flush_cover(&mut b, &mut pending_cover)?;
                if name.is_some() {
                    return Err(IoError::parse(
                        line.line_no,
                        col,
                        "second .model — multi-model files are not supported",
                    ));
                }
                name = Some(
                    tokens
                        .get(1)
                        .map_or_else(|| fallback_name.to_string(), ToString::to_string),
                );
            }
            ".inputs" => {
                flush_cover(&mut b, &mut pending_cover)?;
                for t in &tokens[1..] {
                    b.input(t)
                        .map_err(|m| IoError::parse(line.line_no, line.column_of(t), m))?;
                    input_names.push((*t).to_string());
                }
            }
            ".outputs" => {
                flush_cover(&mut b, &mut pending_cover)?;
                for t in &tokens[1..] {
                    if output_names.iter().any(|o| o == t) {
                        return Err(IoError::parse(
                            line.line_no,
                            line.column_of(t),
                            format!("`{t}` is declared an output twice"),
                        ));
                    }
                    b.node(t);
                    output_names.push((*t).to_string());
                }
            }
            ".names" => {
                flush_cover(&mut b, &mut pending_cover)?;
                if tokens.len() < 2 {
                    return Err(IoError::parse(
                        line.line_no,
                        col,
                        ".names needs at least an output signal",
                    ));
                }
                let output = tokens[tokens.len() - 1].to_string();
                let inputs = tokens[1..tokens.len() - 1]
                    .iter()
                    .map(ToString::to_string)
                    .collect();
                pending_cover = Some(Cover {
                    line_no: line.line_no,
                    column: col,
                    inputs,
                    output,
                    rows: Vec::new(),
                });
            }
            ".latch" => {
                flush_cover(&mut b, &mut pending_cover)?;
                // .latch input output [type control] [init-val]
                let rest = &tokens[1..];
                if rest.len() < 2 {
                    return Err(IoError::parse(
                        line.line_no,
                        col,
                        ".latch needs an input and an output signal",
                    ));
                }
                let (d, q) = (rest[0].to_string(), rest[1].to_string());
                let control = match rest.len() {
                    2 | 3 => None, // optional trailing init only
                    4 | 5 => Some((rest[2], rest[3])),
                    _ => {
                        return Err(IoError::parse(
                            line.line_no,
                            col,
                            format!(".latch takes 2–5 fields, got {}", rest.len()),
                        ))
                    }
                };
                let clk = match control {
                    Some(("re", clk)) => clk.to_string(),
                    Some((ty, _)) => {
                        return Err(IoError::parse(
                            line.line_no,
                            line.column_of(ty),
                            format!("latch type `{ty}` is not supported (only rising-edge `re`)"),
                        ))
                    }
                    None => {
                        return Err(IoError::parse(
                            line.line_no,
                            col,
                            ".latch without a clock: declare `re <clock>` \
                             (the simulators drive one explicit clock)",
                        ))
                    }
                };
                match clock_name.as_deref() {
                    None => clock_name = Some(clk.clone()),
                    Some(existing) if existing == clk => {}
                    Some(existing) => {
                        return Err(IoError::parse(
                            line.line_no,
                            col,
                            format!(
                                "latch clock `{clk}` conflicts with `{existing}` \
                                 — a single global clock is required"
                            ),
                        ))
                    }
                }
                // Build immediately (reference order: d, clk, q) so gate
                // order matches statement order.
                let dn = b.node(&d);
                let cn = b.node(&clk);
                let qn = b
                    .drive(&q)
                    .map_err(|m| IoError::parse(line.line_no, col, m))?;
                b.netlist
                    .gate_into(GateKind::Dff, &[cn, dn], qn)
                    .map_err(|e| IoError::parse(line.line_no, col, e.to_string()))?;
            }
            ".end" => {
                flush_cover(&mut b, &mut pending_cover)?;
                saw_end = true;
            }
            ".exdc" | ".subckt" | ".gate" | ".mlatch" | ".search" | ".clock" | ".attribute" => {
                return Err(IoError::parse(
                    line.line_no,
                    col,
                    format!("`{first}` is not supported (structural BLIF subset only)"),
                ));
            }
            other if other.starts_with('.') => {
                return Err(IoError::parse(
                    line.line_no,
                    col,
                    format!("unknown directive `{other}`"),
                ));
            }
            _ => {
                // A cover row.
                let Some(cover) = pending_cover.as_mut() else {
                    return Err(IoError::parse(
                        line.line_no,
                        col,
                        format!("`{first}` outside any .names cover"),
                    ));
                };
                let (plane, out) = match tokens.as_slice() {
                    [plane, out] => ((*plane).to_string(), *out),
                    [single] if cover.inputs.is_empty() => (String::new(), *single),
                    _ => {
                        return Err(IoError::parse(
                            line.line_no,
                            col,
                            "cover rows are `<input-plane> <output-bit>`",
                        ))
                    }
                };
                if plane.len() != cover.inputs.len() {
                    return Err(IoError::parse(
                        line.line_no,
                        col,
                        format!(
                            "cube width {} does not match the {} cover input(s)",
                            plane.len(),
                            cover.inputs.len()
                        ),
                    ));
                }
                let out_bit = match out {
                    "1" => '1',
                    "0" => '0',
                    other => {
                        return Err(IoError::parse(
                            line.line_no,
                            line.column_of(out),
                            format!("cover output must be 0 or 1, got `{other}`"),
                        ))
                    }
                };
                if let Some(bad) = plane.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                    return Err(IoError::parse(
                        line.line_no,
                        col,
                        format!("invalid cube character `{bad}` (expected 0, 1, or -)"),
                    ));
                }
                cover.rows.push((plane, out_bit));
            }
        }
    }
    flush_cover(&mut b, &mut pending_cover)?;

    // Undriven signals (referenced but never defined and not inputs) are
    // parse errors: a partially connected netlist would lint as floating
    // anyway, and naming the wire here is far more useful.
    let undriven = b.undriven();
    if let Some(wire) = undriven.first() {
        return Err(IoError::parse(
            lines.last().map_or(1, |l| l.line_no),
            1,
            format!(
                "{} signal(s) referenced but never driven or declared as inputs \
                 (first: `{wire}`)",
                undriven.len()
            ),
        ));
    }

    let inputs: Vec<NodeId> = input_names
        .iter()
        .filter(|n| Some(n.as_str()) != clock_name.as_deref())
        .map(|n| b.node(n))
        .collect();
    let outputs: Vec<NodeId> = output_names.iter().map(|n| b.node(n)).collect();
    let clock = clock_name.as_deref().map(|n| b.node(n));
    Ok(ImportedCircuit {
        name: name.unwrap_or_else(|| fallback_name.to_string()),
        netlist: b.netlist,
        inputs,
        outputs,
        clock,
    })
}

/// The canonical on-set cover rows the writer emits for one gate kind.
/// Each maps back to the same kind through the parser's truth-table
/// matcher, which is what makes write → parse the identity on library
/// gates.
fn canonical_cover(kind: GateKind) -> &'static [&'static str] {
    match kind {
        GateKind::Buf => &["1 1"],
        GateKind::Not => &["0 1"],
        GateKind::And2 => &["11 1"],
        GateKind::And3 => &["111 1"],
        GateKind::Or2 => &["1- 1", "-1 1"],
        GateKind::Or3 => &["1-- 1", "-1- 1", "--1 1"],
        GateKind::Nand2 => &["0- 1", "-0 1"],
        GateKind::Nand3 => &["0-- 1", "-0- 1", "--0 1"],
        GateKind::Nor2 => &["00 1"],
        GateKind::Nor3 => &["000 1"],
        GateKind::Xor2 => &["10 1", "01 1"],
        GateKind::Xnor2 => &["11 1", "00 1"],
        // inputs [sel, a, b]: a when sel=0, b when sel=1.
        GateKind::Mux2 => &["01- 1", "1-1 1"],
        GateKind::Dff => &[],
    }
}

/// A name is writable if the line-oriented format can carry it
/// unambiguously.
fn check_name(name: &str) -> Result<(), IoError> {
    if name.is_empty()
        || name.starts_with('.')
        || name
            .chars()
            .any(|c| c.is_whitespace() || c == '#' || c == '\\')
    {
        return Err(IoError::Unwritable {
            reason: format!(
                "node name `{name}` cannot be represented in BLIF \
                 (empty, leading dot, whitespace, `#`, or `\\`)"
            ),
        });
    }
    Ok(())
}

/// Serialises an [`ImportedCircuit`] as structural BLIF.
///
/// Primary inputs come from the netlist (clock included), outputs from
/// the circuit's declared list, and gates are emitted in creation order
/// — `.latch` for flip-flops, a canonical `.names` cover for everything
/// else — so `parse_blif(write_blif(c))` reproduces `c` (see
/// [`crate::circuits_equivalent`]).
///
/// # Errors
///
/// [`IoError::Unwritable`] if a node name cannot be carried by the
/// format, or if flip-flops exist without a resolvable clock.
pub fn write_blif(circuit: &ImportedCircuit) -> Result<String, IoError> {
    let n = &circuit.netlist;
    let mut out = String::with_capacity(64 + n.gate_count() * 24);
    out.push_str(".model ");
    out.push_str(&circuit.name);
    out.push('\n');

    let write_names = |out: &mut String, directive: &str, ids: &[NodeId]| -> Result<(), IoError> {
        for chunk in ids.chunks(10) {
            out.push_str(directive);
            for &id in chunk {
                let name = n.node_name(id);
                check_name(name)?;
                out.push(' ');
                out.push_str(name);
            }
            out.push('\n');
        }
        Ok(())
    };
    write_names(&mut out, ".inputs", n.primary_inputs())?;
    write_names(&mut out, ".outputs", &circuit.outputs)?;

    for gate in n.gates() {
        if gate.kind == GateKind::Dff {
            let clk = n.node_name(gate.inputs[0]);
            let d = n.node_name(gate.inputs[1]);
            let q = n.node_name(gate.output);
            for name in [clk, d, q] {
                check_name(name)?;
            }
            out.push_str(&format!(".latch {d} {q} re {clk} 3\n"));
        } else {
            out.push_str(".names");
            for &i in &gate.inputs {
                let name = n.node_name(i);
                check_name(name)?;
                out.push(' ');
                out.push_str(name);
            }
            let oname = n.node_name(gate.output);
            check_name(oname)?;
            out.push(' ');
            out.push_str(oname);
            out.push('\n');
            for row in canonical_cover(gate.kind) {
                out.push_str(row);
                out.push('\n');
            }
        }
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits_equivalent;

    #[test]
    fn parses_simple_and() {
        let c = parse_blif(
            "t",
            ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
        )
        .unwrap();
        assert_eq!(c.name, "t");
        assert_eq!(c.netlist.gate_count(), 1);
        assert_eq!(c.netlist.gates()[0].kind, GateKind::And2);
        assert_eq!(c.inputs.len(), 2);
        assert_eq!(c.outputs.len(), 1);
        assert!(c.clock.is_none());
    }

    #[test]
    fn library_matching_covers_every_kind() {
        for kind in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::And3,
            GateKind::Or3,
            GateKind::Nand3,
            GateKind::Nor3,
            GateKind::Mux2,
        ] {
            let names: Vec<String> = (0..kind.arity()).map(|i| format!("i{i}")).collect();
            let mut text = format!(
                ".model m\n.inputs {}\n.outputs y\n.names {} y\n",
                names.join(" "),
                names.join(" ")
            );
            for row in canonical_cover(kind) {
                text.push_str(row);
                text.push('\n');
            }
            text.push_str(".end\n");
            let c = parse_blif("m", &text).unwrap();
            assert_eq!(c.netlist.gate_count(), 1, "{}", kind.name());
            assert_eq!(c.netlist.gates()[0].kind, kind, "{}", kind.name());
        }
    }

    #[test]
    fn off_set_cover_inverts() {
        // ~(a & b) expressed as an off-set cover: output 0 when a=b=1.
        let c = parse_blif(
            "t",
            ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n",
        )
        .unwrap();
        assert_eq!(c.netlist.gate_count(), 1);
        assert_eq!(c.netlist.gates()[0].kind, GateKind::Nand2);
    }

    #[test]
    fn wide_cover_decomposes_and_roundtrips() {
        let text = ".model wide\n.inputs a b c d\n.outputs y\n\
                    .names a b c d y\n1100 1\n0011 1\n.end\n";
        let c = parse_blif("wide", text).unwrap();
        assert!(c.netlist.gate_count() > 1);
        let written = write_blif(&c).unwrap();
        let again = parse_blif("wide", &written).unwrap();
        circuits_equivalent(&c, &again).unwrap();
        // And the rewrite is a fixpoint.
        assert_eq!(written, write_blif(&again).unwrap());
    }

    #[test]
    fn latch_becomes_dff_with_shared_clock() {
        let text = ".model seq\n.inputs d clk\n.outputs q\n\
                    .latch d q re clk 3\n.end\n";
        let c = parse_blif("seq", text).unwrap();
        assert_eq!(c.netlist.gate_count(), 1);
        assert_eq!(c.netlist.gates()[0].kind, GateKind::Dff);
        assert_eq!(c.inputs.len(), 1, "clock excluded from stimulus inputs");
        assert!(c.clock.is_some());
    }

    #[test]
    fn conflicting_latch_clocks_rejected() {
        let text = ".model seq\n.inputs d e c1 c2\n.outputs q r\n\
                    .latch d q re c1 3\n.latch e r re c2 3\n.end\n";
        let err = parse_blif("seq", text).unwrap_err();
        match err {
            IoError::Parse { line, message, .. } => {
                assert_eq!(line, 5);
                assert!(message.contains("c2"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse_blif(
            "t",
            ".model t\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
        )
        .unwrap_err();
        match err {
            IoError::Parse { line, message, .. } => {
                assert_eq!(line, 5);
                assert!(message.contains('2'), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn undriven_signal_named() {
        let err = parse_blif(
            "t",
            ".model t\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn double_drive_rejected() {
        let text = ".model t\n.inputs a b\n.outputs y\n\
                    .names a y\n1 1\n.names b y\n1 1\n.end\n";
        let err = parse_blif("t", text).unwrap_err();
        assert!(err.to_string().contains("driven twice"), "{err}");
    }

    #[test]
    fn continuation_lines_fold() {
        let text = ".model t\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let c = parse_blif("t", text).unwrap();
        assert_eq!(c.inputs.len(), 2);
    }

    #[test]
    fn constant_cover_rejected() {
        let err = parse_blif("t", ".model t\n.outputs y\n.names y\n1\n.end\n").unwrap_err();
        assert!(err.to_string().contains("constant"), "{err}");
    }
}
