//! Seeded deterministic random-netlist generation.
//!
//! The generator grows a gate-level netlist one gate at a time, always
//! wiring new gates to already-existing nodes — so the result is
//! acyclic and single-driver *by construction* — while tracking which
//! nodes are combinationally downstream of a flip-flop output
//! ("tainted"): flip-flop data inputs only ever pick untainted nodes,
//! so there is no register-to-register feedback and the compiled
//! bit-parallel engine accepts every generated circuit. The clock is a
//! dedicated primary input kept out of the data network and the
//! stimulus input list, and every sink gate output is declared a
//! primary output, so structural DRC (LV001–LV004) passes clean.
//!
//! Randomness comes from an in-crate SplitMix64 stream seeded by
//! [`GeneratorConfig::seed`]: no platform, thread-count, or library
//! dependence, so the same config is byte-identical (as written BLIF)
//! forever.

use lowvolt_circuit::netlist::{GateKind, Netlist, NodeId};

use crate::{ImportedCircuit, IoError};

/// SplitMix64: tiny, seedable, and stable across platforms — exactly
/// what eternal byte-determinism needs (the vendored `rand` is a stub).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish index in `0..n` (modulo bias is irrelevant at the
    /// pool sizes involved, and bias-free rejection would make the
    /// stream consumption input-dependent).
    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        usize::try_from(self.next() % n.max(1) as u64).unwrap_or(0)
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

/// Weighted combinational gate-kind distribution, loosely shaped like
/// synthesized standard-cell netlists: NAND/NOR-heavy, occasional wide
/// gates, muxes, and inverter/buffer sprinkles.
const KIND_WEIGHTS: [(GateKind, u64); 13] = [
    (GateKind::Nand2, 20),
    (GateKind::Nor2, 14),
    (GateKind::And2, 10),
    (GateKind::Or2, 10),
    (GateKind::Not, 12),
    (GateKind::Xor2, 6),
    (GateKind::Xnor2, 4),
    (GateKind::Nand3, 6),
    (GateKind::Nor3, 4),
    (GateKind::And3, 4),
    (GateKind::Or3, 4),
    (GateKind::Mux2, 4),
    (GateKind::Buf, 2),
];

/// Knobs for [`generate`]. Construct with [`GeneratorConfig::new`] and
/// adjust fields; `Default` is a 1000-gate, 16-input, 10%-flip-flop
/// circuit at seed 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Total gates (flip-flops included). 1 ..= 2_000_000.
    pub gates: usize,
    /// PRNG seed; same config + seed ⇒ byte-identical netlist.
    pub seed: u64,
    /// Stimulus-driven primary inputs (the clock is extra). 1 ..= 4096.
    pub inputs: usize,
    /// Fraction of gates that are flip-flops, 0.0 ..= 0.5. Zero makes
    /// the circuit purely combinational (no clock input is created).
    pub dff_fraction: f64,
    /// Locality window: gate fanins prefer the most recent `window`
    /// nodes with probability 3/4, reaching anywhere otherwise. Shapes
    /// the depth/fanout profile; must be ≥ 1.
    pub window: usize,
}

impl GeneratorConfig {
    /// A config with the default input count, flip-flop fraction, and
    /// locality window.
    #[must_use]
    pub fn new(gates: usize, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            gates,
            seed,
            ..GeneratorConfig::default()
        }
    }

    fn validate(&self) -> Result<(), IoError> {
        let bad = |field: &'static str, constraint: &'static str| {
            Err(IoError::InvalidConfig { field, constraint })
        };
        if self.gates == 0 || self.gates > 2_000_000 {
            return bad("gates", "must be in 1..=2000000");
        }
        if self.inputs == 0 || self.inputs > 4096 {
            return bad("inputs", "must be in 1..=4096");
        }
        if !(0.0..=0.5).contains(&self.dff_fraction) {
            return bad("dff_fraction", "must be in 0.0..=0.5");
        }
        if self.window == 0 {
            return bad("window", "must be >= 1");
        }
        Ok(())
    }
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            gates: 1000,
            seed: 0,
            inputs: 16,
            dff_fraction: 0.1,
            window: 64,
        }
    }
}

/// Generates a random circuit named `gen{gates}_s{seed}`.
///
/// Guarantees, for every valid config:
///
/// - acyclic (with flip-flop edges cut) and single-driver by
///   construction — new gates only consume already-created nodes;
/// - no dangling nets: every gate output nothing consumes is declared a
///   primary output (there is always at least one — the last gate's);
/// - the clock (present iff `dff_fraction > 0`) is a primary input used
///   only by flip-flop clock pins and excluded from the stimulus input
///   list;
/// - no register-to-register feedback: flip-flop data inputs are drawn
///   only from nodes with no flip-flop output upstream, so the compiled
///   engine's levelization and state-feedback checks both pass;
/// - byte-determinism: the same config writes the identical BLIF.
///
/// # Errors
///
/// [`IoError::InvalidConfig`] when a knob is out of range.
pub fn generate(config: &GeneratorConfig) -> Result<ImportedCircuit, IoError> {
    config.validate()?;
    let mut rng = SplitMix64(config.seed);
    let mut netlist = Netlist::new();

    // truncation-safe: gates ≤ 2e6 and dff_fraction ≤ 0.5.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let dff_total = (config.dff_fraction * config.gates as f64).round() as usize;
    // A flip-flop at gate slot i iff the even-spread quota steps there.
    let dff_here = |i: usize| (i + 1) * dff_total / config.gates > i * dff_total / config.gates;

    let clock = (dff_total > 0).then(|| netlist.input("clk"));
    let inputs: Vec<NodeId> = (0..config.inputs)
        .map(|i| netlist.input(format!("in{i}")))
        .collect();

    // The data network: every node a combinational gate may consume.
    // `untainted` is the subset with no flip-flop output upstream.
    let mut pool: Vec<NodeId> = inputs.clone();
    let mut untainted: Vec<NodeId> = inputs.clone();
    let mut tainted = vec![false; netlist.node_count()];
    let mut consumed = vec![false; netlist.node_count()];

    let weight_total: u64 = KIND_WEIGHTS.iter().map(|&(_, w)| w).sum();

    for i in 0..config.gates {
        if dff_here(i) {
            let d = untainted[rng.below(untainted.len())];
            let q = netlist.node(format!("q{i}"));
            let clk = clock.unwrap_or(d);
            netlist
                .gate_into(GateKind::Dff, &[clk, d], q)
                .map_err(|e| IoError::Unwritable {
                    reason: format!("generator built an invalid flip-flop: {e}"),
                })?;
            consumed.resize(netlist.node_count(), false);
            consumed[d.index()] = true;
            tainted.resize(netlist.node_count(), false);
            tainted[q.index()] = true;
            pool.push(q);
            continue;
        }

        let mut pick = rng.next() % weight_total;
        let mut kind = GateKind::Nand2;
        for &(k, w) in &KIND_WEIGHTS {
            if pick < w {
                kind = k;
                break;
            }
            pick -= w;
        }
        let fanins: Vec<NodeId> = (0..kind.arity())
            .map(|_| {
                if pool.len() > config.window && rng.chance(3, 4) {
                    pool[pool.len() - config.window + rng.below(config.window)]
                } else {
                    pool[rng.below(pool.len())]
                }
            })
            .collect();
        let out = netlist.node(format!("n{i}"));
        netlist
            .gate_into(kind, &fanins, out)
            .map_err(|e| IoError::Unwritable {
                reason: format!("generator built an invalid gate: {e}"),
            })?;
        consumed.resize(netlist.node_count(), false);
        tainted.resize(netlist.node_count(), false);
        let mut any_tainted = false;
        for &f in &fanins {
            consumed[f.index()] = true;
            any_tainted |= tainted[f.index()];
        }
        tainted[out.index()] = any_tainted;
        if !any_tainted {
            untainted.push(out);
        }
        pool.push(out);
    }

    // Every unconsumed gate output becomes a primary output (id order,
    // which is creation order). The final gate's output is always here.
    let outputs: Vec<NodeId> = netlist
        .gates()
        .iter()
        .map(|g| g.output)
        .filter(|&o| !consumed[o.index()])
        .collect();

    Ok(ImportedCircuit {
        name: format!("gen{}_s{}", config.gates, config.seed),
        netlist,
        inputs,
        outputs,
        clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_blif;

    #[test]
    fn default_config_generates() {
        let c = generate(&GeneratorConfig::new(200, 7)).unwrap();
        assert_eq!(c.netlist.gate_count(), 200);
        assert_eq!(c.name, "gen200_s7");
        assert!(!c.outputs.is_empty());
        assert!(c.clock.is_some(), "10% dff fraction ⇒ sequential");
    }

    #[test]
    fn zero_dff_fraction_is_combinational() {
        let mut cfg = GeneratorConfig::new(100, 1);
        cfg.dff_fraction = 0.0;
        let c = generate(&cfg).unwrap();
        assert!(c.clock.is_none());
        assert!(c.netlist.gates().iter().all(|g| g.kind != GateKind::Dff));
    }

    #[test]
    fn same_seed_same_bytes() {
        let cfg = GeneratorConfig::new(500, 42);
        let a = write_blif(&generate(&cfg).unwrap()).unwrap();
        let b = write_blif(&generate(&cfg).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = write_blif(&generate(&GeneratorConfig::new(500, 1)).unwrap()).unwrap();
        let b = write_blif(&generate(&GeneratorConfig::new(500, 2)).unwrap()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn dff_quota_is_exact() {
        let mut cfg = GeneratorConfig::new(1000, 3);
        cfg.dff_fraction = 0.25;
        let c = generate(&cfg).unwrap();
        let dffs = c
            .netlist
            .gates()
            .iter()
            .filter(|g| g.kind == GateKind::Dff)
            .count();
        assert_eq!(dffs, 250);
    }

    #[test]
    fn no_register_to_register_feedback() {
        let mut cfg = GeneratorConfig::new(2000, 9);
        cfg.dff_fraction = 0.3;
        let c = generate(&cfg).unwrap();
        // Recompute taint independently and check every DFF d input.
        let n = &c.netlist;
        let mut tainted = vec![false; n.node_count()];
        for g in n.gates() {
            if g.kind == GateKind::Dff {
                assert!(
                    !g.inputs[1..].iter().any(|&d| tainted[d.index()]),
                    "DFF data input is downstream of a register"
                );
                tainted[g.output.index()] = true;
            } else if g.inputs.iter().any(|&i| tainted[i.index()]) {
                tainted[g.output.index()] = true;
            }
        }
    }

    #[test]
    fn clock_stays_out_of_data_network() {
        let mut cfg = GeneratorConfig::new(1000, 11);
        cfg.dff_fraction = 0.2;
        let c = generate(&cfg).unwrap();
        let clk = c.clock.unwrap();
        for g in c.netlist.gates() {
            if g.kind == GateKind::Dff {
                assert_eq!(g.inputs[0], clk);
                assert_ne!(g.inputs[1], clk);
            } else {
                assert!(!g.inputs.contains(&clk));
            }
        }
        assert!(!c.inputs.contains(&clk));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate(&GeneratorConfig::new(0, 0)).is_err());
        let mut cfg = GeneratorConfig::new(10, 0);
        cfg.dff_fraction = 0.9;
        assert!(generate(&cfg).is_err());
        let mut cfg = GeneratorConfig::new(10, 0);
        cfg.inputs = 0;
        assert!(generate(&cfg).is_err());
    }
}
