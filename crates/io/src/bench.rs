//! ISCAS-85/89 bench format import.
//!
//! The format is three statement shapes — `INPUT(g)`, `OUTPUT(g)`,
//! `g = GATE(a, b, ...)` — with `#` comments. Gate names are matched
//! case-insensitively: `AND`/`NAND`/`OR`/`NOR`/`XOR`/`XNOR` at any
//! fanin ≥ 2 (fanin above the library's 2/3-input gates is decomposed
//! into a chain of 2-input gates with the completing gate carrying the
//! inversion/parity), `NOT`/`BUF`/`BUFF` at fanin 1, and `DFF` (the
//! ISCAS-89 flip-flop) at fanin 1, clocked by an implicit global clock
//! primary input named `__clock__` created at the first `DFF`.

use lowvolt_circuit::netlist::{GateKind, NodeId};

use crate::blif::{fold_chain, NetBuilder};
use crate::{ImportedCircuit, IoError};

/// The implicit global clock every ISCAS-89 `DFF` is tied to. The '89
/// benchmarks leave the clock out of the netlist entirely; the event
/// and compiled simulators need it explicit, so the parser adds one
/// primary input (kept out of the stimulus input list).
pub(crate) const IMPLICIT_CLOCK: &str = "__clock__";

/// The gate function an ISCAS statement names, before arity mapping.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Func {
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    Not,
    Buf,
    Dff,
}

impl Func {
    fn from_name(name: &str) -> Option<Func> {
        match name.to_ascii_uppercase().as_str() {
            "AND" => Some(Func::And),
            "OR" => Some(Func::Or),
            "NAND" => Some(Func::Nand),
            "NOR" => Some(Func::Nor),
            "XOR" => Some(Func::Xor),
            "XNOR" => Some(Func::Xnor),
            "NOT" | "INV" => Some(Func::Not),
            "BUF" | "BUFF" => Some(Func::Buf),
            "DFF" => Some(Func::Dff),
            _ => None,
        }
    }

    /// The exact-fit library gate for this function at fanin `n`, if
    /// one exists.
    fn library_kind(self, n: usize) -> Option<GateKind> {
        match (self, n) {
            (Func::And, 2) => Some(GateKind::And2),
            (Func::And, 3) => Some(GateKind::And3),
            (Func::Or, 2) => Some(GateKind::Or2),
            (Func::Or, 3) => Some(GateKind::Or3),
            (Func::Nand, 2) => Some(GateKind::Nand2),
            (Func::Nand, 3) => Some(GateKind::Nand3),
            (Func::Nor, 2) => Some(GateKind::Nor2),
            (Func::Nor, 3) => Some(GateKind::Nor3),
            (Func::Xor, 2) => Some(GateKind::Xor2),
            (Func::Xnor, 2) => Some(GateKind::Xnor2),
            (Func::Not, 1) => Some(GateKind::Not),
            (Func::Buf, 1) => Some(GateKind::Buf),
            _ => None,
        }
    }

    /// For fanin above the library: the 2-input gate that folds the
    /// first `n-1` operands and the 2-input gate that completes the
    /// chain (carrying any inversion so only the final gate differs).
    fn chain_kinds(self) -> Option<(GateKind, GateKind)> {
        match self {
            Func::And => Some((GateKind::And2, GateKind::And2)),
            Func::Or => Some((GateKind::Or2, GateKind::Or2)),
            Func::Nand => Some((GateKind::And2, GateKind::Nand2)),
            Func::Nor => Some((GateKind::Or2, GateKind::Nor2)),
            Func::Xor => Some((GateKind::Xor2, GateKind::Xor2)),
            Func::Xnor => Some((GateKind::Xor2, GateKind::Xnor2)),
            _ => None,
        }
    }
}

/// Parses ISCAS-85/89 bench text into an [`ImportedCircuit`].
///
/// Statement order is free-form (names may be used before they are
/// defined within a file — c17 and friends define fanins first, but the
/// '89 sequential benches reference flip-flop outputs early); what must
/// hold at the end is that every referenced signal is an `INPUT` or
/// driven by exactly one gate.
///
/// # Errors
///
/// [`IoError::Parse`] anchored at the offending line and column.
pub fn parse_bench(fallback_name: &str, text: &str) -> Result<ImportedCircuit, IoError> {
    let mut b = NetBuilder::new();
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut has_dff = false;
    let mut last_line = 1;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        last_line = line_no;
        let content = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let stmt = content.trim();
        if stmt.is_empty() {
            continue;
        }
        let col = raw
            .find(stmt.chars().next().unwrap_or(' '))
            .map_or(1, |p| p + 1);
        let err = |msg: String| IoError::parse(line_no, col, msg);

        if let Some(rest) = strip_keyword(stmt, "INPUT") {
            let name = parse_parens(rest).ok_or_else(|| {
                err("INPUT takes one parenthesised signal: INPUT(name)".to_string())
            })?;
            if name == IMPLICIT_CLOCK {
                return Err(err(format!(
                    "`{IMPLICIT_CLOCK}` is reserved for the implicit DFF clock"
                )));
            }
            b.input(name).map_err(err)?;
            input_names.push(name.to_string());
            continue;
        }
        if let Some(rest) = strip_keyword(stmt, "OUTPUT") {
            let name = parse_parens(rest).ok_or_else(|| {
                err("OUTPUT takes one parenthesised signal: OUTPUT(name)".to_string())
            })?;
            if output_names.iter().any(|o| o == name) {
                return Err(err(format!("`{name}` is declared an output twice")));
            }
            b.node(name);
            output_names.push(name.to_string());
            continue;
        }

        // `target = GATE(a, b, ...)`
        let Some((target, call)) = stmt.split_once('=') else {
            return Err(err(format!(
                "expected INPUT(...), OUTPUT(...), or `name = GATE(...)`, got `{stmt}`"
            )));
        };
        let target = target.trim();
        if target.is_empty() {
            return Err(err("missing signal name before `=`".to_string()));
        }
        let call = call.trim();
        let Some((func_name, args_text)) = call
            .split_once('(')
            .and_then(|(f, rest)| rest.strip_suffix(')').map(|a| (f.trim(), a)))
        else {
            return Err(err(format!(
                "expected `GATE(args)` after `=`, got `{call}`"
            )));
        };
        let Some(func) = Func::from_name(func_name) else {
            return Err(err(format!(
                "unknown gate `{func_name}` (supported: AND OR NAND NOR XOR XNOR NOT BUF DFF)"
            )));
        };
        let args: Vec<&str> = args_text
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .collect();
        if args_text.split(',').any(|a| a.trim().is_empty()) && !args_text.trim().is_empty() {
            return Err(err(format!("empty operand in `{func_name}({args_text})`")));
        }

        if func == Func::Dff {
            if args.len() != 1 {
                return Err(err(format!("DFF takes one data input, got {}", args.len())));
            }
            if !has_dff {
                has_dff = true;
                if b.contains(IMPLICIT_CLOCK) {
                    return Err(err(format!(
                        "`{IMPLICIT_CLOCK}` already exists; cannot add the implicit clock"
                    )));
                }
                b.input(IMPLICIT_CLOCK).map_err(err)?;
            }
            let d = b.node(args[0]);
            let clk = b.node(IMPLICIT_CLOCK);
            let q = b.drive(target).map_err(err)?;
            b.netlist
                .gate_into(GateKind::Dff, &[clk, d], q)
                .map_err(|e| err(e.to_string()))?;
            continue;
        }

        let min_arity = match func {
            Func::Not | Func::Buf => 1,
            _ => 2,
        };
        if args.len() < min_arity {
            return Err(err(format!(
                "{func_name} needs at least {min_arity} input(s), got {}",
                args.len()
            )));
        }
        if matches!(func, Func::Not | Func::Buf) && args.len() != 1 {
            return Err(err(format!(
                "{func_name} takes exactly one input, got {}",
                args.len()
            )));
        }

        let operands: Vec<NodeId> = args.iter().map(|a| b.node(a)).collect();
        if let Some(kind) = func.library_kind(operands.len()) {
            let out = b.drive(target).map_err(err)?;
            b.netlist
                .gate_into(kind, &operands, out)
                .map_err(|e| err(e.to_string()))?;
        } else {
            let Some((fold_kind, final_kind)) = func.chain_kinds() else {
                return Err(err(format!(
                    "{func_name} at fanin {} is not supported",
                    operands.len()
                )));
            };
            let head =
                fold_chain(&mut b, fold_kind, &operands[..operands.len() - 1]).map_err(err)?;
            let out = b.drive(target).map_err(err)?;
            b.netlist
                .gate_into(final_kind, &[head, operands[operands.len() - 1]], out)
                .map_err(|e| err(e.to_string()))?;
        }
    }

    let undriven = b.undriven();
    if let Some(wire) = undriven.first() {
        return Err(IoError::parse(
            last_line,
            1,
            format!(
                "{} signal(s) referenced but never driven or declared INPUT \
                 (first: `{wire}`)",
                undriven.len()
            ),
        ));
    }
    if output_names.is_empty() {
        return Err(IoError::parse(
            last_line,
            1,
            "no OUTPUT(...) declarations — the circuit is unobservable",
        ));
    }

    let inputs: Vec<NodeId> = input_names.iter().map(|n| b.node(n)).collect();
    let outputs: Vec<NodeId> = output_names.iter().map(|n| b.node(n)).collect();
    let clock = has_dff.then(|| b.node(IMPLICIT_CLOCK));
    Ok(ImportedCircuit {
        name: fallback_name.to_string(),
        netlist: b.netlist,
        inputs,
        outputs,
        clock,
    })
}

/// `strip_keyword("INPUT(x)", "INPUT")` → `Some("(x)")`, matching the
/// keyword case-insensitively and only when followed by `(` or
/// whitespace (so a signal named `INPUTx` still parses as a target).
fn strip_keyword<'a>(stmt: &'a str, keyword: &str) -> Option<&'a str> {
    if stmt.len() < keyword.len() || !stmt[..keyword.len()].eq_ignore_ascii_case(keyword) {
        return None;
    }
    let rest = &stmt[keyword.len()..];
    let next = rest.trim_start();
    next.starts_with('(').then_some(rest)
}

/// `parse_parens("( x )")` → `Some("x")`; rejects empty names.
fn parse_parens(rest: &str) -> Option<&str> {
    let inner = rest.trim().strip_prefix('(')?.strip_suffix(')')?.trim();
    (!inner.is_empty() && !inner.contains(|c: char| c.is_whitespace() || c == ',')).then_some(inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# trivial NAND network
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse_bench("c17", C17).unwrap();
        assert_eq!(c.inputs.len(), 5);
        assert_eq!(c.outputs.len(), 2);
        assert_eq!(c.netlist.gate_count(), 6);
        assert!(c.netlist.gates().iter().all(|g| g.kind == GateKind::Nand2));
        assert!(c.clock.is_none());
    }

    #[test]
    fn dff_gets_implicit_clock() {
        let text = "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n";
        let c = parse_bench("s1", text).unwrap();
        assert_eq!(c.netlist.gate_count(), 1);
        assert_eq!(c.netlist.gates()[0].kind, GateKind::Dff);
        let clk = c.clock.expect("sequential circuit has a clock");
        assert_eq!(c.netlist.node_name(clk), IMPLICIT_CLOCK);
        assert!(c.netlist.is_primary_input(clk));
        assert_eq!(c.inputs.len(), 1, "clock is not a stimulus input");
    }

    #[test]
    fn wide_fanin_decomposes() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = NAND(a, b, c, d)\n";
        let c = parse_bench("wide", text).unwrap();
        // And2(a,b), And2(·,c), Nand2(·,d)
        assert_eq!(c.netlist.gate_count(), 3);
        let kinds: Vec<GateKind> = c.netlist.gates().iter().map(|g| g.kind).collect();
        assert_eq!(kinds, [GateKind::And2, GateKind::And2, GateKind::Nand2]);
    }

    #[test]
    fn forward_references_allowed() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(t)\nt = BUF(a)\n";
        let c = parse_bench("fwd", text).unwrap();
        assert_eq!(c.netlist.gate_count(), 2);
    }

    #[test]
    fn unknown_gate_positioned() {
        let err = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap_err();
        match err {
            IoError::Parse { line, message, .. } => {
                assert_eq!(line, 3);
                assert!(message.contains("FROB"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn undriven_signal_rejected() {
        let err = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn double_drive_rejected() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(b)\n";
        let err = parse_bench("t", text).unwrap_err();
        assert!(err.to_string().contains("driven twice"), "{err}");
    }

    #[test]
    fn no_outputs_rejected() {
        let err = parse_bench("t", "INPUT(a)\n").unwrap_err();
        assert!(err.to_string().contains("OUTPUT"), "{err}");
    }
}
