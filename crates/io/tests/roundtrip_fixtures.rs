//! Golden-fixture round trips: parse → write → parse must reproduce the
//! identical `Netlist` — same node ids, same gates, same structural
//! hash — not merely an equivalent one, because both parsers create
//! nodes at first textual reference and the writer emits references in
//! exactly that order.

use std::path::Path;

use lowvolt_circuit::netlist::GateKind;
use lowvolt_io::{circuits_equivalent, parse_path, parse_str, write_blif, Format, ImportedCircuit};

fn fixture(name: &str) -> ImportedCircuit {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    parse_path(&path).unwrap_or_else(|e| panic!("fixture {name} parses: {e}"))
}

/// Round trip plus identity checks shared by both fixtures.
fn assert_roundtrip_identity(original: &ImportedCircuit) {
    let written = write_blif(original).expect("writable");
    let again = parse_str(Format::Blif, &original.name, &written).expect("re-parses");
    circuits_equivalent(original, &again).expect("round trip is structurally equivalent");
    // Stronger: the same nodes in the same order (ids preserved), so the
    // structural hash — which folds ids, kinds, and wiring — matches.
    assert_eq!(
        original.netlist.structural_hash(),
        again.netlist.structural_hash(),
        "round trip must preserve node ids, not just structure"
    );
    for id in original.netlist.node_ids() {
        assert_eq!(
            original.netlist.node_name(id),
            again.netlist.node_name(id),
            "node {id:?} renamed by the round trip"
        );
    }
    // And the writer is a fixpoint: writing the re-parse is byte-equal.
    assert_eq!(written, write_blif(&again).expect("writable"));
}

#[test]
fn c17_parses_to_the_known_structure() {
    let c17 = fixture("c17.bench");
    assert_eq!(c17.name, "c17");
    assert_eq!(c17.inputs.len(), 5);
    assert_eq!(c17.outputs.len(), 2);
    assert_eq!(c17.netlist.gate_count(), 6);
    assert!(c17.clock.is_none());
    assert!(
        c17.netlist
            .gates()
            .iter()
            .all(|g| g.kind == GateKind::Nand2),
        "c17 is a pure NAND2 network"
    );
    let outs: Vec<&str> = c17
        .outputs
        .iter()
        .map(|&o| c17.netlist.node_name(o))
        .collect();
    assert_eq!(outs, ["22", "23"]);
}

#[test]
fn c17_roundtrips_exactly() {
    assert_roundtrip_identity(&fixture("c17.bench"));
}

#[test]
fn latch2_parses_to_the_known_structure() {
    let c = fixture("latch2.blif");
    assert_eq!(c.name, "latch2");
    let kinds: Vec<GateKind> = c.netlist.gates().iter().map(|g| g.kind).collect();
    assert_eq!(kinds, [GateKind::And2, GateKind::Dff]);
    assert_eq!(c.inputs.len(), 2, "clk is the clock, not a stimulus input");
    let clk = c.clock.expect("latch fixture is sequential");
    assert_eq!(c.netlist.node_name(clk), "clk");
    assert!(c.netlist.is_primary_input(clk));
}

#[test]
fn latch2_roundtrips_exactly() {
    assert_roundtrip_identity(&fixture("latch2.blif"));
}

#[test]
fn format_detection_matches_fixture_extensions() {
    assert_eq!(
        Format::from_path(Path::new("x/c17.bench")),
        Some(Format::Bench)
    );
    assert_eq!(
        Format::from_path(Path::new("x/latch2.blif")),
        Some(Format::Blif)
    );
    assert_eq!(Format::from_path(Path::new("x/netlist.v")), None);
}
