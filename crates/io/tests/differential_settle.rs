//! Differential testing of imported and generated circuits: the event
//! simulator against the compiled bit-parallel engine, on the parsed
//! c17 fixture and on generated netlists — settled node values must
//! agree exactly (X included), and packed fault campaigns must be
//! byte-identical across 1/2/8 worker threads.

use std::path::Path;

use lowvolt_circuit::compiled::{run_campaign_packed, CompiledNetlist};
use lowvolt_circuit::faults::{
    run_campaign_resilient, stuck_at_universe, CampaignOptions, FaultTarget,
};
use lowvolt_circuit::logic::Bit;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_circuit::NodeId;
use lowvolt_exec::ExecPolicy;
use lowvolt_io::{generate, parse_path, GeneratorConfig, ImportedCircuit};

fn c17() -> ImportedCircuit {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/c17.bench");
    parse_path(&path).expect("c17 fixture parses")
}

fn fault_target(c: &ImportedCircuit) -> FaultTarget {
    FaultTarget {
        name: c.name.clone(),
        netlist: c.netlist.clone(),
        inputs: c.inputs.clone(),
        outputs: c.outputs.clone(),
        clock: c.clock,
    }
}

/// A deterministic three-valued vector stream: every third cycle
/// scatters X bits through the pattern, so the Kleene (val, known)
/// planes of the compiled engine get exercised, not just the binary
/// fast path.
fn vector_with_x(width: usize, cycle: usize) -> Vec<Bit> {
    let mut state = (cycle as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..width)
        .map(|i| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let r = (state >> 33) ^ (i as u64);
            if cycle % 3 == 0 && r % 5 == 0 {
                Bit::X
            } else if r % 2 == 0 {
                Bit::Zero
            } else {
                Bit::One
            }
        })
        .collect()
}

/// Every node settles to the same value under both engines, for every
/// vector — driven inputs, undriven inputs (X), and injected X bits.
fn assert_settle_agreement(c: &ImportedCircuit, cycles: usize) {
    let compiled = CompiledNetlist::compile(&c.netlist).expect("levelizes");
    let mut sim = Simulator::new(&c.netlist);
    // Drive the clock low alongside the data inputs so sequential
    // circuits are settled in their inert phase identically by both
    // engines (flip-flop outputs stay X without an edge).
    let mut driven: Vec<NodeId> = c.inputs.clone();
    if let Some(clk) = c.clock {
        driven.push(clk);
    }
    let nodes: Vec<NodeId> = c.netlist.node_ids().collect();
    for cycle in 0..cycles {
        let mut bits = vector_with_x(c.inputs.len(), cycle);
        if c.clock.is_some() {
            bits.push(Bit::Zero);
        }
        sim.apply_vector(&driven, &bits).expect("event settles");
        let packed = compiled
            .settle_vector(&driven, &bits)
            .expect("compiled settles");
        for &n in &nodes {
            assert_eq!(
                sim.value(n),
                packed[n.index()],
                "cycle {cycle}: node `{}` diverged",
                c.netlist.node_name(n)
            );
        }
    }
}

#[test]
fn c17_settles_identically_in_both_engines() {
    assert_settle_agreement(&c17(), 60);
}

#[test]
fn generated_combinational_settles_identically() {
    let mut cfg = GeneratorConfig::new(1500, 0xC0FFEE);
    cfg.dff_fraction = 0.0;
    let c = generate(&cfg).expect("generates");
    assert_settle_agreement(&c, 12);
}

#[test]
fn generated_sequential_settles_identically() {
    let mut cfg = GeneratorConfig::new(800, 0xBEEF);
    cfg.dff_fraction = 0.15;
    let c = generate(&cfg).expect("generates");
    assert!(c.clock.is_some());
    assert_settle_agreement(&c, 12);
}

/// Full packed fault campaign on the parsed c17: per-fault outcomes and
/// the rendered report match the event engine byte for byte, at 1, 2,
/// and 8 threads.
#[test]
fn c17_campaign_event_vs_compiled_thread_invariant() {
    const VECTORS: usize = 96;
    const SEED: u64 = 0x17C1;
    let target = fault_target(&c17());
    let faults = stuck_at_universe(&target.netlist);
    let mut stimulus = PatternSource::random(target.inputs.len(), SEED).expect("stimulus builds");
    let event = run_campaign_resilient(
        &ExecPolicy::serial(),
        lowvolt_obs::noop(),
        &target,
        &faults,
        &mut stimulus,
        VECTORS,
        CampaignOptions::default(),
    )
    .expect("event campaign runs");
    let event_report = event.report().expect("event campaign completed");
    for threads in [1usize, 2, 8] {
        let mut stimulus =
            PatternSource::random(target.inputs.len(), SEED).expect("stimulus builds");
        let packed = run_campaign_packed(
            &ExecPolicy::with_threads(threads),
            lowvolt_obs::noop(),
            &target,
            &faults,
            &mut stimulus,
            VECTORS,
            CampaignOptions::default(),
        )
        .expect("packed campaign runs");
        for (f, (e, p)) in faults.iter().zip(event.reports.iter().zip(&packed.reports)) {
            let e = e.as_ref().expect("event outcome resolved");
            let p = p.as_ref().expect("packed outcome resolved");
            assert_eq!(e.outcome, p.outcome, "threads {threads} fault {f:?}");
        }
        assert_eq!(
            event_report.to_string(),
            packed.report().expect("completed").to_string(),
            "rendered report diverged at {threads} thread(s)"
        );
    }
}

/// Packed campaign on a generated netlist is byte-identical across
/// thread counts (the event engine is too slow at this size to be the
/// reference; thread-invariance is the contract here).
#[test]
fn generated_campaign_thread_invariant() {
    const VECTORS: usize = 128;
    let mut cfg = GeneratorConfig::new(3000, 0xD1CE);
    cfg.dff_fraction = 0.0;
    let c = generate(&cfg).expect("generates");
    let target = fault_target(&c);
    let faults = stuck_at_universe(&target.netlist);
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 8] {
        let mut stimulus = PatternSource::random(target.inputs.len(), 7).expect("stimulus builds");
        let packed = run_campaign_packed(
            &ExecPolicy::with_threads(threads),
            lowvolt_obs::noop(),
            &target,
            &faults,
            &mut stimulus,
            VECTORS,
            CampaignOptions::default(),
        )
        .expect("packed campaign runs");
        let rendered = packed.report().expect("completed").to_string();
        match &reference {
            None => reference = Some(rendered),
            Some(first) => assert_eq!(first, &rendered, "diverged at {threads} thread(s)"),
        }
    }
}
