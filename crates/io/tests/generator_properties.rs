//! Generator soundness properties: for any seed and any knob setting in
//! range, the generated circuit passes structural DRC (LV001–LV004
//! clean), levelizes in the compiled bit-parallel engine, and is
//! byte-deterministic — the same config writes the identical BLIF.

use lowvolt_circuit::compiled::CompiledNetlist;
use lowvolt_io::{generate, write_blif, GeneratorConfig, ImportedCircuit};
use lowvolt_lint::passes::structural;
use lowvolt_lint::target::LintTarget;
use proptest::prelude::*;

fn lint_target(c: &ImportedCircuit) -> LintTarget {
    LintTarget {
        name: c.name.clone(),
        netlist: c.netlist.clone(),
        inputs: c.inputs.clone(),
        outputs: c.outputs.clone(),
        clock: c.clock,
        intent: None,
        switch_view: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural DRC is clean and the compiled engine levelizes the
    /// netlist for arbitrary seeds and knob settings.
    #[test]
    fn generated_netlists_are_drc_clean_and_levelizable(
        seed in any::<u64>(),
        gates in 1usize..400,
        inputs in 1usize..40,
        dff_tenths in 0u32..5,
        window in 1usize..100,
    ) {
        let cfg = GeneratorConfig {
            gates,
            seed,
            inputs,
            dff_fraction: f64::from(dff_tenths) / 10.0,
            window,
        };
        let c = generate(&cfg).expect("valid config generates");
        let diags = structural::run(&lint_target(&c));
        prop_assert!(
            diags.is_empty(),
            "structural DRC found {} issue(s), first: {}",
            diags.len(),
            diags[0]
        );
        let compiled = CompiledNetlist::compile(&c.netlist);
        prop_assert!(compiled.is_ok(), "levelization failed: {:?}", compiled.err());
    }

    /// The same config is byte-identical; a different seed is not
    /// (overwhelmingly — at ≥ 50 gates two seeds colliding would mean
    /// the PRNG stream repeated).
    #[test]
    fn generation_is_byte_deterministic(seed in any::<u64>(), gates in 50usize..300) {
        let cfg = GeneratorConfig::new(gates, seed);
        let a = write_blif(&generate(&cfg).expect("generates")).expect("writable");
        let b = write_blif(&generate(&cfg).expect("generates")).expect("writable");
        prop_assert_eq!(&a, &b);
        let other = GeneratorConfig::new(gates, seed.wrapping_add(1));
        let c = write_blif(&generate(&other).expect("generates")).expect("writable");
        prop_assert_ne!(a, c);
    }
}

/// The scale the tentpole promises: a 10⁴-gate netlist generates, lints
/// clean, and levelizes — fast enough to live in the default test run.
#[test]
fn ten_thousand_gates_generate_and_levelize() {
    let mut cfg = GeneratorConfig::new(10_000, 42);
    cfg.dff_fraction = 0.05;
    let c = generate(&cfg).expect("generates");
    assert_eq!(c.netlist.gate_count(), 10_000);
    assert!(structural::run(&lint_target(&c)).is_empty());
    let compiled = CompiledNetlist::compile(&c.netlist).expect("levelizes");
    assert_eq!(compiled.gate_count() + compiled.dff_count(), 10_000);
}
