//! Append-only checkpoint journal: length-prefixed, checksummed records
//! of completed work items, with truncated-tail recovery on resume.
//!
//! ## On-disk format
//!
//! ```text
//! header:  8 bytes        magic b"LVJR0001"
//! record:  u32 LE         payload length
//!          u64 LE         item index (journal index space)
//!          n bytes        payload (opaque to the journal)
//!          u64 LE         FNV-1a 64 over everything above, per record
//! ```
//!
//! Records are appended and flushed one completed item at a time, so a
//! killed process loses at most the record it was writing. On resume the
//! file is scanned front to back; the first record that is truncated or
//! fails its checksum ends the valid prefix — everything after it is
//! discarded with a warning diagnostic (never a panic) and the file is
//! cut back so new appends extend the valid prefix.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use lowvolt_obs::{names, Recorder};

use crate::fault::{parallel_map_isolated, CancelToken, ExecError, FaultPolicy, ItemStatus};
use crate::{fnv64, ExecPolicy};

const MAGIC: &[u8; 8] = b"LVJR0001";
/// Fixed bytes per record besides the payload: length, index, checksum.
const RECORD_OVERHEAD: usize = 4 + 8 + 8;
/// Upper bound on a single record payload; longer prefixes are treated
/// as corruption rather than trusted as allocation sizes.
const MAX_PAYLOAD: usize = 1 << 26;

/// A checkpoint-journal failure. Journal errors never abort a campaign
/// — callers degrade to running uncheckpointed with a warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file exists but does not start with the journal magic — it
    /// is some other file and is left untouched.
    NotAJournal {
        /// Path of the offending file.
        path: String,
    },
    /// An I/O operation on the journal failed.
    Io {
        /// Path of the journal file.
        path: String,
        /// Rendered OS error.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::NotAJournal { path } => {
                write!(f, "{path}: not a checkpoint journal (bad magic)")
            }
            JournalError::Io { path, detail } => write!(f, "{path}: journal I/O error: {detail}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// The valid records recovered from an existing journal, in file order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JournalReplay {
    /// `(item index, payload)` for every record in the valid prefix.
    pub entries: Vec<(u64, Vec<u8>)>,
    /// Diagnostic set when a truncated or corrupt tail was discarded.
    pub warning: Option<String>,
}

impl JournalReplay {
    /// Latest payload per item index (later records win, matching an
    /// append-only log's natural semantics).
    #[must_use]
    pub fn completed(&self) -> HashMap<u64, Vec<u8>> {
        self.entries.iter().map(|(i, p)| (*i, p.clone())).collect()
    }
}

/// An open, append-only checkpoint journal.
#[derive(Debug)]
pub struct CheckpointJournal {
    file: std::fs::File,
    path: PathBuf,
    records: u64,
}

impl CheckpointJournal {
    /// Creates (or truncates) the journal at `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be created or the header
    /// written.
    pub fn create(path: impl AsRef<Path>) -> Result<CheckpointJournal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        file.write_all(MAGIC).map_err(|e| io_err(&path, &e))?;
        file.flush().map_err(|e| io_err(&path, &e))?;
        Ok(CheckpointJournal {
            file,
            path,
            records: 0,
        })
    }

    /// Opens the journal at `path` for resuming: scans the valid record
    /// prefix, discards any truncated or corrupt tail (with a warning in
    /// the returned [`JournalReplay`], never a panic), and positions the
    /// journal so new appends extend the valid prefix. A missing file is
    /// created empty.
    ///
    /// # Errors
    ///
    /// [`JournalError::NotAJournal`] when the file exists but lacks the
    /// magic header (it is left untouched); [`JournalError::Io`] on
    /// filesystem failures.
    pub fn resume(
        path: impl AsRef<Path>,
    ) -> Result<(CheckpointJournal, JournalReplay), JournalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((CheckpointJournal::create(&path)?, JournalReplay::default()));
            }
            Err(e) => return Err(io_err(&path, &e)),
        };
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::NotAJournal {
                path: path.display().to_string(),
            });
        }
        let mut entries = Vec::new();
        let mut offset = MAGIC.len();
        let mut warning = None;
        while offset < bytes.len() {
            match parse_record(&bytes[offset..]) {
                Some((index, payload, consumed)) => {
                    entries.push((index, payload));
                    offset += consumed;
                }
                None => {
                    warning = Some(format!(
                        "checkpoint journal {}: discarding truncated or corrupt tail \
                         at byte {offset} ({} valid record(s) retained)",
                        path.display(),
                        entries.len()
                    ));
                    break;
                }
            }
        }
        let mut file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        // Cut off the corrupt tail (a no-op for a clean journal) so
        // appends continue from the end of the valid prefix.
        file.set_len(offset as u64).map_err(|e| io_err(&path, &e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(&path, &e))?;
        let records = entries.len() as u64;
        Ok((
            CheckpointJournal {
                file,
                path,
                records,
            },
            JournalReplay { entries, warning },
        ))
    }

    /// Appends one completed-item record and flushes it to the OS, so a
    /// kill after `append` returns can lose nothing earlier.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write failure or an oversized payload.
    pub fn append(
        &mut self,
        index: u64,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(), JournalError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(JournalError::Io {
                path: self.path.display().to_string(),
                detail: format!("record payload of {} bytes exceeds limit", payload.len()),
            });
        }
        let mut record = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&index.to_le_bytes());
        record.extend_from_slice(payload);
        let sum = fnv64(&record);
        record.extend_from_slice(&sum.to_le_bytes());
        self.file
            .write_all(&record)
            .map_err(|e| io_err(&self.path, &e))?;
        self.file.flush().map_err(|e| io_err(&self.path, &e))?;
        self.records += 1;
        if rec.is_enabled() {
            rec.add(names::CHECKPOINT_RECORDS, 1);
        }
        Ok(())
    }

    /// Records appended so far (replayed records included after
    /// [`CheckpointJournal::resume`]).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses one record at the front of `buf`, returning
/// `(index, payload, bytes consumed)`; `None` means truncated or
/// corrupt — by construction the *rest* of the file is unrecoverable,
/// because record boundaries are only known by walking valid records.
fn parse_record(buf: &[u8]) -> Option<(u64, Vec<u8>, usize)> {
    if buf.len() < RECORD_OVERHEAD {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
    if len > MAX_PAYLOAD {
        return None;
    }
    let total = RECORD_OVERHEAD + len;
    if buf.len() < total {
        return None;
    }
    let index = u64::from_le_bytes(buf[4..12].try_into().ok()?);
    let stored = u64::from_le_bytes(buf[12 + len..total].try_into().ok()?);
    if stored != fnv64(&buf[..12 + len]) {
        return None;
    }
    Some((index, buf[12..12 + len].to_vec(), total))
}

/// A resumable parallel region's bookkeeping: the journal new
/// completions go to, the completed-record map replayed from it, where
/// this region's item 0 sits in the journal's index space (so several
/// regions can share one journal), and an optional cap on new work —
/// the deterministic interruption hook the resume property tests and
/// the CI resume-gate use.
#[derive(Debug)]
pub struct CheckpointSpec<'a> {
    /// Journal that new completions are appended to.
    pub journal: &'a mut CheckpointJournal,
    /// Index → payload replayed from the journal
    /// (see [`JournalReplay::completed`]).
    pub completed: &'a HashMap<u64, Vec<u8>>,
    /// Journal index of this region's item 0.
    pub index_base: u64,
    /// Run at most this many not-yet-completed items, skipping the rest
    /// (`None` = run everything).
    pub max_new_items: Option<usize>,
}

/// Outcome of [`run_checkpointed`]. `results[i]` is `None` only when
/// item `i` was skipped by the `max_new_items` cap (an interrupted
/// run); otherwise it holds the item's replayed or computed result.
#[derive(Debug)]
pub struct CheckpointOutcome<R> {
    /// One slot per input item, in input order.
    pub results: Vec<Option<Result<R, ExecError>>>,
    /// Items restored from the journal without recomputation.
    pub replayed: usize,
    /// Items actually executed this run.
    pub computed: usize,
    /// Items left unexecuted by the `max_new_items` cap.
    pub skipped: usize,
    /// Non-fatal diagnostics (undecodable records, journal write
    /// failures downgraded to running uncheckpointed).
    pub warnings: Vec<String>,
}

impl<R> CheckpointOutcome<R> {
    /// Whether the run stopped early and needs another resume pass.
    #[must_use]
    pub fn interrupted(&self) -> bool {
        self.skipped > 0
    }
}

struct JournalSink<'a> {
    journal: &'a mut CheckpointJournal,
    failed: Option<String>,
}

/// [`parallel_map_isolated`] with an incremental checkpoint journal:
/// items whose index (offset by `spec.index_base`) already has a
/// decodable record in `spec.completed` are replayed without running;
/// the rest execute under the fault layer, and each successful result
/// is encoded and appended to the journal as soon as it completes.
///
/// Because replay keys on the input index and results always land at
/// their input slots, an interrupted run resumed to completion yields
/// results byte-identical to an uninterrupted run — whatever the
/// thread count on either side. Journal write failures never abort the
/// region; they downgrade to a warning and the run continues
/// uncheckpointed.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed<T, R, F, Enc, Dec>(
    policy: &ExecPolicy,
    fault: &FaultPolicy,
    rec: &dyn Recorder,
    items: &[T],
    spec: CheckpointSpec<'_>,
    encode: Enc,
    decode: Dec,
    f: F,
) -> CheckpointOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &CancelToken) -> ItemStatus<R> + Sync,
    Enc: Fn(&R) -> Vec<u8> + Sync,
    Dec: Fn(&[u8]) -> Option<R>,
{
    let mut results: Vec<Option<Result<R, ExecError>>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let mut warnings = Vec::new();
    let mut replayed = 0usize;
    let mut pending: Vec<usize> = Vec::new();
    for (i, slot) in results.iter_mut().enumerate() {
        let key = spec.index_base + i as u64;
        match spec.completed.get(&key).map(|p| decode(p)) {
            Some(Some(r)) => {
                *slot = Some(Ok(r));
                replayed += 1;
            }
            Some(None) => {
                warnings.push(format!(
                    "checkpoint record {key} could not be decoded; recomputing item"
                ));
                pending.push(i);
            }
            None => pending.push(i),
        }
    }
    let budget = spec
        .max_new_items
        .unwrap_or(pending.len())
        .min(pending.len());
    let skipped = pending.len() - budget;
    pending.truncate(budget);
    let index_base = spec.index_base;
    let sink = Mutex::new(JournalSink {
        journal: spec.journal,
        failed: None,
    });
    let computed = parallel_map_isolated(policy, fault, rec, &pending, |_, &orig, token| {
        match f(orig, &items[orig], token) {
            ItemStatus::Done(r) => {
                let payload = encode(&r);
                if let Ok(mut guard) = sink.lock() {
                    if guard.failed.is_none() {
                        if let Err(e) =
                            guard
                                .journal
                                .append(index_base + orig as u64, &payload, rec)
                        {
                            guard.failed = Some(e.to_string());
                        }
                    }
                }
                ItemStatus::Done(r)
            }
            ItemStatus::TimedOut => ItemStatus::TimedOut,
        }
    });
    let computed_count = computed.len();
    for (k, r) in computed.into_iter().enumerate() {
        results[pending[k]] = Some(r);
    }
    let sink = match sink.into_inner() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(detail) = sink.failed {
        warnings.push(format!(
            "checkpoint journal write failed; continuing without checkpointing: {detail}"
        ));
    }
    CheckpointOutcome {
        results,
        replayed,
        computed: computed_count,
        skipped,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lowvolt-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_create_append_resume() {
        let path = tmp_path("roundtrip");
        let mut j = CheckpointJournal::create(&path).expect("create");
        j.append(3, b"three", lowvolt_obs::noop()).expect("append");
        j.append(1, b"", lowvolt_obs::noop()).expect("append empty");
        j.append(40, &[0xFFu8; 300], lowvolt_obs::noop())
            .expect("append large");
        assert_eq!(j.records(), 3);
        drop(j);
        let (j, replay) = CheckpointJournal::resume(&path).expect("resume");
        assert_eq!(j.records(), 3);
        assert!(replay.warning.is_none());
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.entries[0], (3, b"three".to_vec()));
        assert_eq!(replay.entries[1], (1, Vec::new()));
        assert_eq!(replay.entries[2].0, 40);
        let map = replay.completed();
        assert_eq!(map.get(&3).map(Vec::as_slice), Some(b"three".as_slice()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_of_missing_file_creates_empty_journal() {
        let path = tmp_path("fresh");
        let _ = std::fs::remove_file(&path);
        let (j, replay) = CheckpointJournal::resume(&path).expect("resume fresh");
        assert_eq!(j.records(), 0);
        assert_eq!(replay, JournalReplay::default());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_is_discarded_with_warning() {
        let path = tmp_path("truncated");
        let mut j = CheckpointJournal::create(&path).expect("create");
        j.append(0, b"alpha", lowvolt_obs::noop()).expect("a");
        j.append(1, b"beta", lowvolt_obs::noop()).expect("b");
        drop(j);
        // Chop the last record mid-payload.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        let (mut j, replay) = CheckpointJournal::resume(&path).expect("resume");
        assert_eq!(replay.entries, vec![(0, b"alpha".to_vec())]);
        let warning = replay.warning.expect("warning emitted");
        assert!(warning.contains("truncated or corrupt tail"), "{warning}");
        assert!(warning.contains("1 valid record"), "{warning}");
        // Appends extend the valid prefix cleanly.
        j.append(1, b"beta2", lowvolt_obs::noop())
            .expect("re-append");
        drop(j);
        let (_, replay) = CheckpointJournal::resume(&path).expect("second resume");
        assert!(replay.warning.is_none());
        assert_eq!(
            replay.entries,
            vec![(0, b"alpha".to_vec()), (1, b"beta2".to_vec())]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_record_body_fails_its_checksum() {
        let path = tmp_path("bitflip");
        let mut j = CheckpointJournal::create(&path).expect("create");
        j.append(0, b"aaaa", lowvolt_obs::noop()).expect("a");
        j.append(1, b"bbbb", lowvolt_obs::noop()).expect("b");
        drop(j);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip one payload bit of the *second* record.
        let second_payload = MAGIC.len() + RECORD_OVERHEAD + 4 + 4 + 8 + 1;
        bytes[second_payload] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write corrupt");
        let (_, replay) = CheckpointJournal::resume(&path).expect("resume");
        assert_eq!(replay.entries, vec![(0, b"aaaa".to_vec())]);
        assert!(replay.warning.is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_journal_file_is_rejected_untouched() {
        let path = tmp_path("notajournal");
        std::fs::write(&path, b"hello world, not a journal").expect("write");
        let err = CheckpointJournal::resume(&path).expect_err("must refuse");
        assert!(matches!(err, JournalError::NotAJournal { .. }));
        assert_eq!(
            std::fs::read(&path).expect("still there"),
            b"hello world, not a journal"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_region_replays_and_resumes_identically() {
        let path = tmp_path("region");
        let items: Vec<u64> = (0..40).collect();
        let run = |journal: &mut CheckpointJournal,
                   completed: &HashMap<u64, Vec<u8>>,
                   cap: Option<usize>,
                   threads: usize| {
            run_checkpointed(
                &ExecPolicy::with_threads(threads),
                &FaultPolicy::default(),
                lowvolt_obs::noop(),
                &items,
                CheckpointSpec {
                    journal,
                    completed,
                    index_base: 100,
                    max_new_items: cap,
                },
                |r: &u64| r.to_le_bytes().to_vec(),
                |b: &[u8]| Some(u64::from_le_bytes(b.try_into().ok()?)),
                |_, &x, _| ItemStatus::Done(x * x),
            )
        };
        // Uninterrupted reference (its journal is thrown away).
        let ref_path = tmp_path("region-ref");
        let mut ref_journal = CheckpointJournal::create(&ref_path).expect("ref journal");
        let reference = run(&mut ref_journal, &HashMap::new(), None, 1);
        assert!(!reference.interrupted());
        let _ = std::fs::remove_file(&ref_path);

        // Interrupt after 13 items, then resume with a different thread
        // count: final results must match the reference exactly.
        let mut j = CheckpointJournal::create(&path).expect("create");
        let partial = run(&mut j, &HashMap::new(), Some(13), 2);
        assert!(partial.interrupted());
        assert_eq!(partial.computed, 13);
        assert_eq!(partial.skipped, 27);
        drop(j);
        let (mut j, replay) = CheckpointJournal::resume(&path).expect("resume");
        assert!(replay.warning.is_none());
        let completed = replay.completed();
        assert_eq!(completed.len(), 13);
        let resumed = run(&mut j, &completed, None, 8);
        assert!(!resumed.interrupted());
        assert_eq!(resumed.replayed, 13);
        assert_eq!(resumed.computed, 27);
        assert_eq!(resumed.results, reference.results);
        let _ = std::fs::remove_file(&path);
    }
}
