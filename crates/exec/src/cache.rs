//! Content-addressed byte cache with checksum validation and corruption
//! quarantine — the store behind golden-trace reuse across campaign
//! runs.
//!
//! Entries are opaque byte payloads addressed by a [`CacheKey`]
//! (content hash + stimulus seed). Lookups can *never* fail loudly: an
//! absent entry is a miss, and a present-but-invalid entry (bad magic,
//! key mismatch, failed checksum, truncation) is quarantined by
//! renaming it to `<name>.corrupt` and reported as a miss, so a corrupt
//! cache degrades to recomputation instead of wrong results.
//!
//! ## Entry format
//!
//! ```text
//! 8 bytes   magic b"LVGC0001"
//! u64 LE    key.content
//! u64 LE    key.seed
//! u32 LE    payload length
//! n bytes   payload
//! u64 LE    FNV-1a 64 over everything above
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use lowvolt_obs::{names, Recorder};

use crate::fnv64;

const MAGIC: &[u8; 8] = b"LVGC0001";
const HEADER: usize = 8 + 8 + 8 + 4;
const MAX_PAYLOAD: usize = 1 << 30;

/// Address of one cache entry: a content hash (everything that
/// determines the cached bytes except the stimulus) plus the stimulus
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Hash of the producing computation's inputs (e.g. a netlist
    /// structural hash mixed with harness parameters).
    pub content: u64,
    /// Stimulus seed the cached bytes were produced under.
    pub seed: u64,
}

impl CacheKey {
    /// The entry's file name inside the cache directory:
    /// `<content>-<seed>.bin`, both halves zero-padded hex.
    #[must_use]
    pub fn file_name(self) -> String {
        format!("{:016x}-{:016x}.bin", self.content, self.seed)
    }
}

/// A cache-maintenance failure (lookups never error — a bad entry is a
/// miss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// Filesystem failure creating the cache directory or storing an
    /// entry.
    Io {
        /// Path being created or written.
        path: String,
        /// Rendered OS error.
        detail: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io { path, detail } => write!(f, "{path}: cache I/O error: {detail}"),
        }
    }
}

impl std::error::Error for CacheError {}

fn io_err(path: &Path, e: &std::io::Error) -> CacheError {
    CacheError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// An on-disk content-addressed store of opaque byte payloads.
#[derive(Debug, Clone)]
pub struct ByteCache {
    dir: PathBuf,
}

impl ByteCache {
    /// Opens (creating if necessary) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<ByteCache, CacheError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        Ok(ByteCache { dir })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up `key`, bumping `cache.hits` / `cache.misses`. Invalid
    /// entries are quarantined to `<name>.corrupt` and count as misses;
    /// this method never panics and never errors.
    #[must_use]
    pub fn load(&self, key: CacheKey, rec: &dyn Recorder) -> Option<Vec<u8>> {
        let enabled = rec.is_enabled();
        let path = self.dir.join(key.file_name());
        let Ok(bytes) = fs::read(&path) else {
            if enabled {
                rec.add(names::CACHE_MISSES, 1);
            }
            return None;
        };
        match decode_entry(&bytes, key) {
            Some(payload) => {
                if enabled {
                    rec.add(names::CACHE_HITS, 1);
                }
                Some(payload)
            }
            None => {
                let mut quarantine = path.clone().into_os_string();
                quarantine.push(".corrupt");
                let _ = fs::rename(&path, &quarantine);
                if enabled {
                    rec.add(names::CACHE_MISSES, 1);
                }
                None
            }
        }
    }

    /// Stores `payload` under `key`, replacing any existing entry. The
    /// entry is written to a temporary file then renamed into place, so
    /// concurrent readers never observe a partial entry.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] on write or rename failure.
    pub fn store(&self, key: CacheKey, payload: &[u8]) -> Result<(), CacheError> {
        let final_path = self.dir.join(key.file_name());
        let tmp_path = self.dir.join(format!("{}.tmp", key.file_name()));
        let bytes = encode_entry(key, payload);
        fs::write(&tmp_path, &bytes).map_err(|e| io_err(&tmp_path, &e))?;
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, &e))
    }

    /// Removes orphaned `*.tmp` files left behind by a writer that died
    /// between [`ByteCache::store`]'s write and rename (e.g. a killed
    /// daemon). Valid entries and quarantined `*.corrupt` files are
    /// untouched. Returns how many orphans were removed; unreadable
    /// directory entries are skipped rather than reported, because a
    /// sweep runs opportunistically at startup.
    pub fn sweep_temp_files(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0usize;
        for entry in entries.flatten() {
            let path = entry.path();
            let is_tmp = path
                .extension()
                .is_some_and(|ext| ext.eq_ignore_ascii_case("tmp"));
            if is_tmp && path.is_file() && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

fn encode_entry(key: CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER + payload.len() + 8);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&key.content.to_le_bytes());
    bytes.extend_from_slice(&key.seed.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(payload);
    let sum = fnv64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

fn decode_entry(bytes: &[u8], key: CacheKey) -> Option<Vec<u8>> {
    if bytes.len() < HEADER + 8 || &bytes[..8] != MAGIC {
        return None;
    }
    let content = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let seed = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    if content != key.content || seed != key.seed {
        return None;
    }
    let len = u32::from_le_bytes(bytes[24..28].try_into().ok()?) as usize;
    if len > MAX_PAYLOAD || bytes.len() != HEADER + len + 8 {
        return None;
    }
    let stored = u64::from_le_bytes(bytes[HEADER + len..].try_into().ok()?);
    if stored != fnv64(&bytes[..HEADER + len]) {
        return None;
    }
    Some(bytes[HEADER..HEADER + len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_obs::MetricsRegistry;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lowvolt-cache-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn sweep_removes_only_orphaned_tmp_files() {
        let dir = tmp_dir("sweep");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ByteCache::open(&dir).expect("open");
        let key = CacheKey {
            content: 0xFEED,
            seed: 1,
        };
        cache.store(key, b"payload").expect("store");
        std::fs::write(
            dir.join("0000000000000001-0000000000000002.bin.tmp"),
            b"torn",
        )
        .expect("write orphan");
        std::fs::write(dir.join("junk.corrupt"), b"quarantined").expect("write corrupt");
        assert_eq!(cache.sweep_temp_files(), 1, "exactly the orphan goes");
        assert_eq!(cache.sweep_temp_files(), 0, "idempotent");
        let reg = MetricsRegistry::new();
        assert!(
            cache.load(key, &reg).is_some(),
            "valid entries survive the sweep"
        );
        assert!(dir.join("junk.corrupt").exists(), "quarantine survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_then_load_hits() {
        let dir = tmp_dir("hit");
        let cache = ByteCache::open(&dir).expect("open");
        let key = CacheKey {
            content: 0xDEAD_BEEF,
            seed: 42,
        };
        let reg = MetricsRegistry::new();
        assert_eq!(cache.load(key, &reg), None, "cold cache misses");
        cache.store(key, b"golden trace bytes").expect("store");
        assert_eq!(
            cache.load(key, &reg).as_deref(),
            Some(b"golden trace bytes".as_slice())
        );
        assert_eq!(reg.counter(names::CACHE_HITS), 1);
        assert_eq!(reg.counter(names::CACHE_MISSES), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_seeds_are_distinct_entries() {
        let dir = tmp_dir("seeds");
        let cache = ByteCache::open(&dir).expect("open");
        let a = CacheKey {
            content: 1,
            seed: 10,
        };
        let b = CacheKey {
            content: 1,
            seed: 11,
        };
        cache.store(a, b"aaa").expect("store a");
        cache.store(b, b"bbb").expect("store b");
        let rec = lowvolt_obs::noop();
        assert_eq!(cache.load(a, rec).as_deref(), Some(b"aaa".as_slice()));
        assert_eq!(cache.load(b, rec).as_deref(), Some(b"bbb".as_slice()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_as_misses() {
        let dir = tmp_dir("corrupt");
        let cache = ByteCache::open(&dir).expect("open");
        let key = CacheKey {
            content: 7,
            seed: 7,
        };
        cache.store(key, b"precious").expect("store");
        let entry = dir.join(key.file_name());
        let mut bytes = fs::read(&entry).expect("read entry");
        let mid = HEADER + 2;
        bytes[mid] ^= 0xFF;
        fs::write(&entry, &bytes).expect("write corrupt");
        let reg = MetricsRegistry::new();
        assert_eq!(cache.load(key, &reg), None, "corrupt entry is a miss");
        assert_eq!(reg.counter(names::CACHE_MISSES), 1);
        assert!(
            !entry.exists(),
            "corrupt entry removed from addressable set"
        );
        let mut quarantined = entry.clone().into_os_string();
        quarantined.push(".corrupt");
        assert!(
            PathBuf::from(quarantined).exists(),
            "corrupt entry preserved for forensics"
        );
        // The slot is reusable after quarantine.
        cache.store(key, b"precious").expect("re-store");
        assert_eq!(
            cache.load(key, &reg).as_deref(),
            Some(b"precious".as_slice())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_under_wrong_key_is_a_miss() {
        let dir = tmp_dir("wrongkey");
        let cache = ByteCache::open(&dir).expect("open");
        let key = CacheKey {
            content: 1,
            seed: 2,
        };
        let other = CacheKey {
            content: 9,
            seed: 9,
        };
        // Simulate a mis-filed entry: bytes of `other` under `key`'s name.
        fs::write(dir.join(key.file_name()), encode_entry(other, b"xx")).expect("plant");
        assert_eq!(cache.load(key, lowvolt_obs::noop()), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
