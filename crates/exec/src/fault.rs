//! Per-item fault isolation: panic capture, deterministic retries, and
//! cooperative deadlines for runaway work items.
//!
//! [`parallel_map_isolated`] wraps every work item in
//! [`std::panic::catch_unwind`], so one panicking injection cannot
//! poison the pool or abort a million-item campaign: the item degrades
//! to a typed [`ExecError`] at its slot and every other result is
//! unaffected. A [`FaultPolicy`] adds a bounded retry loop with
//! deterministic exponential backoff, and hands each attempt a fresh
//! [`CancelToken`] that long-running item code (the simulators'
//! watchdog loops) polls so runaway items time out cleanly instead of
//! spinning forever.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use lowvolt_obs::{names, Recorder};

use crate::{parallel_map_recorded, ExecPolicy};

/// Cooperative cancellation handle checked by long-running work items.
///
/// A token is either cancelled explicitly ([`CancelToken::cancel`]) or
/// implicitly once its deadline passes. Polling is cheap enough for
/// watchdog cadence: one relaxed atomic load, plus a clock read only
/// when a deadline is armed.
#[derive(Debug)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; it only fires via [`CancelToken::cancel`].
    #[must_use]
    pub fn unbounded() -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: None,
        }
    }

    /// A token that reports cancelled once `timeout` has elapsed from now.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// The shared never-fired token instrumented code defaults to, so
    /// cancellation support costs nothing when unused.
    #[must_use]
    pub fn never() -> &'static CancelToken {
        static NEVER: CancelToken = CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: None,
        };
        &NEVER
    }

    /// Requests cancellation; all subsequent [`CancelToken::is_cancelled`]
    /// calls return `true`.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token was cancelled or its deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A work item that failed permanently after exhausting its retry
/// budget. `Clone + PartialEq` so domain layers can embed it in their
/// own result enums and compare reports byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Every attempt at the item panicked.
    ItemPanicked {
        /// Input index of the failing item.
        index: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Panic payload rendered as text (`<non-string panic>` when
        /// the payload was neither `&str` nor `String`).
        message: String,
    },
    /// Every attempt at the item hit its cooperative deadline.
    ItemTimedOut {
        /// Input index of the failing item.
        index: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The per-attempt budget that was exceeded, in milliseconds.
        timeout_ms: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ItemPanicked {
                index,
                attempts,
                message,
            } => write!(
                f,
                "work item {index} panicked on all {attempts} attempt(s): {message}"
            ),
            ExecError::ItemTimedOut {
                index,
                attempts,
                timeout_ms,
            } => write!(
                f,
                "work item {index} exceeded its {timeout_ms} ms deadline on all {attempts} attempt(s)"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Retry and deadline policy for [`parallel_map_isolated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Retries allowed after the first attempt (`0` = fail fast).
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ms << (n - 1)` ms.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff sleep, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Per-attempt cooperative deadline (`None` = unbounded).
    pub item_timeout_ms: Option<u64>,
}

impl Default for FaultPolicy {
    /// No retries, no deadline: identical behaviour to the plain map
    /// except that panics become [`ExecError::ItemPanicked`].
    fn default() -> FaultPolicy {
        FaultPolicy {
            max_retries: 0,
            backoff_base_ms: 1,
            backoff_cap_ms: 100,
            item_timeout_ms: None,
        }
    }
}

impl FaultPolicy {
    /// Deterministic backoff before (1-based) retry number `retry`:
    /// `base << (retry - 1)` milliseconds, capped at
    /// [`FaultPolicy::backoff_cap_ms`]. No jitter — retry schedules are
    /// reproducible like everything else in the engine.
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        let shift = retry.saturating_sub(1).min(16);
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ms);
        Duration::from_millis(ms)
    }

    /// A fresh per-attempt token: deadline-armed when
    /// [`FaultPolicy::item_timeout_ms`] is set, unbounded otherwise.
    #[must_use]
    pub fn token(&self) -> CancelToken {
        match self.item_timeout_ms {
            Some(ms) => CancelToken::with_timeout(Duration::from_millis(ms)),
            None => CancelToken::unbounded(),
        }
    }
}

/// What an isolated work-item closure reports back for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemStatus<R> {
    /// The attempt completed with a result.
    Done(R),
    /// The attempt observed its [`CancelToken`] fire and unwound early;
    /// the fault layer retries or reports [`ExecError::ItemTimedOut`].
    TimedOut,
}

/// [`crate::parallel_map`] with per-item fault isolation: each item runs
/// under [`catch_unwind`] with a bounded retry loop, so the returned
/// vector always has one slot per input item — `Ok` results at their
/// input indices and typed [`ExecError`]s where an item failed every
/// attempt. The pool itself never aborts.
///
/// `f` receives `(index, &item, &CancelToken)`; long-running item code
/// should poll the token and return [`ItemStatus::TimedOut`] (or surface
/// a domain error) when it fires. Counters: `exec.panics` and
/// `exec.timeouts` count failed attempts, `exec.retries` counts
/// re-attempts; all three are thread-count invariant because attempts
/// per item are deterministic.
pub fn parallel_map_isolated<T, R, F>(
    policy: &ExecPolicy,
    fault: &FaultPolicy,
    rec: &dyn Recorder,
    items: &[T],
    f: F,
) -> Vec<Result<R, ExecError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &CancelToken) -> ItemStatus<R> + Sync,
{
    parallel_map_recorded(policy, rec, items, |i, item| {
        run_isolated(fault, rec, i, item, &f)
    })
}

fn run_isolated<T, R, F>(
    fault: &FaultPolicy,
    rec: &dyn Recorder,
    index: usize,
    item: &T,
    f: &F,
) -> Result<R, ExecError>
where
    F: Fn(usize, &T, &CancelToken) -> ItemStatus<R> + Sync,
{
    let enabled = rec.is_enabled();
    let attempts_allowed = fault.max_retries.saturating_add(1);
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        let token = fault.token();
        match catch_unwind(AssertUnwindSafe(|| f(index, item, &token))) {
            Ok(ItemStatus::Done(r)) => return Ok(r),
            Ok(ItemStatus::TimedOut) => {
                if enabled {
                    rec.add(names::EXEC_TIMEOUTS, 1);
                }
                if attempt >= attempts_allowed {
                    return Err(ExecError::ItemTimedOut {
                        index,
                        attempts: attempt,
                        timeout_ms: fault.item_timeout_ms.unwrap_or(0),
                    });
                }
            }
            Err(payload) => {
                if enabled {
                    rec.add(names::EXEC_PANICS, 1);
                }
                if attempt >= attempts_allowed {
                    return Err(ExecError::ItemPanicked {
                        index,
                        attempts: attempt,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        if enabled {
            rec.add(names::EXEC_RETRIES, 1);
        }
        std::thread::sleep(fault.backoff(attempt));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_obs::MetricsRegistry;

    fn quiet_panics() {
        // Intentional panics in these tests would otherwise spray the
        // default hook's backtrace over the test output; silence only
        // the injected ones, leaving real failures loud.
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    .unwrap_or("");
                let injected = ["injected failure", "odd items fail", "always", "boom"]
                    .iter()
                    .any(|m| msg.contains(m));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn panicking_items_are_isolated_at_their_slots() {
        quiet_panics();
        let items: Vec<usize> = (0..50).collect();
        let reg = MetricsRegistry::new();
        let out = parallel_map_isolated(
            &ExecPolicy::with_threads(4),
            &FaultPolicy::default(),
            &reg,
            &items,
            |_, &x, _| {
                assert!(x % 13 != 7, "injected failure at {x}");
                ItemStatus::Done(x * 2)
            },
        );
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            if i % 13 == 7 {
                match r {
                    Err(ExecError::ItemPanicked {
                        index,
                        attempts,
                        message,
                    }) => {
                        assert_eq!(*index, i);
                        assert_eq!(*attempts, 1);
                        assert!(message.contains("injected failure"), "{message}");
                    }
                    other => panic!("expected panic error at {i}, got {other:?}"),
                }
            } else {
                assert_eq!(r.as_ref().ok(), Some(&(i * 2)));
            }
        }
        assert_eq!(reg.counter(names::EXEC_PANICS), 4, "items 7, 20, 33, 46");
        assert_eq!(reg.counter(names::EXEC_RETRIES), 0);
    }

    #[test]
    fn retries_recover_transient_failures_deterministically() {
        quiet_panics();
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts_seen: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..6).collect();
        let fault = FaultPolicy {
            max_retries: 2,
            backoff_base_ms: 0,
            ..FaultPolicy::default()
        };
        let reg = MetricsRegistry::new();
        let out = parallel_map_isolated(&ExecPolicy::serial(), &fault, &reg, &items, |i, &x, _| {
            let n = attempts_seen[i].fetch_add(1, Ordering::Relaxed);
            assert!(n >= 1 || x % 2 == 0, "odd items fail their first attempt");
            ItemStatus::Done(x)
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().ok(), Some(&i), "item {i} recovered");
        }
        assert_eq!(reg.counter(names::EXEC_PANICS), 3);
        assert_eq!(reg.counter(names::EXEC_RETRIES), 3);
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        quiet_panics();
        let items = [1u8];
        let fault = FaultPolicy {
            max_retries: 3,
            backoff_base_ms: 0,
            ..FaultPolicy::default()
        };
        let reg = MetricsRegistry::new();
        let out = parallel_map_isolated(
            &ExecPolicy::serial(),
            &fault,
            &reg,
            &items,
            |_, _, _| -> ItemStatus<u8> { panic!("always") },
        );
        assert_eq!(
            out[0],
            Err(ExecError::ItemPanicked {
                index: 0,
                attempts: 4,
                message: "always".to_string(),
            })
        );
        assert_eq!(reg.counter(names::EXEC_PANICS), 4);
        assert_eq!(reg.counter(names::EXEC_RETRIES), 3);
    }

    #[test]
    fn timeouts_surface_as_typed_errors() {
        let items: Vec<u32> = (0..4).collect();
        let fault = FaultPolicy {
            item_timeout_ms: Some(0),
            ..FaultPolicy::default()
        };
        let reg = MetricsRegistry::new();
        let out = parallel_map_isolated(
            &ExecPolicy::with_threads(2),
            &fault,
            &reg,
            &items,
            |_, &x, token| {
                if token.is_cancelled() {
                    ItemStatus::TimedOut
                } else {
                    ItemStatus::Done(x)
                }
            },
        );
        for (i, r) in out.iter().enumerate() {
            assert_eq!(
                *r,
                Err(ExecError::ItemTimedOut {
                    index: i,
                    attempts: 1,
                    timeout_ms: 0,
                })
            );
        }
        assert_eq!(reg.counter(names::EXEC_TIMEOUTS), 4);
    }

    #[test]
    fn cancel_token_semantics() {
        let t = CancelToken::unbounded();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(CancelToken::with_timeout(Duration::ZERO).is_cancelled());
        assert!(!CancelToken::with_timeout(Duration::from_secs(3600)).is_cancelled());
        assert!(!CancelToken::never().is_cancelled());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let fault = FaultPolicy {
            max_retries: 10,
            backoff_base_ms: 2,
            backoff_cap_ms: 9,
            item_timeout_ms: None,
        };
        assert_eq!(fault.backoff(1), Duration::from_millis(2));
        assert_eq!(fault.backoff(2), Duration::from_millis(4));
        assert_eq!(fault.backoff(3), Duration::from_millis(8));
        assert_eq!(fault.backoff(4), Duration::from_millis(9), "capped");
        assert_eq!(fault.backoff(60), Duration::from_millis(9), "shift clamped");
    }

    #[test]
    fn isolated_map_is_thread_count_invariant() {
        quiet_panics();
        let items: Vec<usize> = (0..97).collect();
        let run = |threads: usize| {
            parallel_map_isolated(
                &ExecPolicy::with_threads(threads),
                &FaultPolicy::default(),
                lowvolt_obs::noop(),
                &items,
                |_, &x, _| {
                    assert!(x != 41, "boom");
                    ItemStatus::Done(x + 1)
                },
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn isolated_map_on_empty_input() {
        let none: Vec<u8> = Vec::new();
        let out = parallel_map_isolated(
            &ExecPolicy::with_threads(8),
            &FaultPolicy::default(),
            lowvolt_obs::noop(),
            &none,
            |_, &x, _| ItemStatus::Done(x),
        );
        assert!(out.is_empty());
    }
}
