#![warn(missing_docs)]

//! # lowvolt-exec
//!
//! A deterministic parallel execution engine for the toolkit's
//! embarrassingly parallel hot paths: fault-injection campaigns, the
//! experiment harness, and the `(V_DD, V_T)` design-space sweeps.
//!
//! The engine is a chunked work pool over [`std::thread::scope`] — no
//! external dependencies, no global state, no detached threads. Work
//! items are claimed in chunks from an atomic cursor and every result is
//! returned **at its input index**, so the output of [`parallel_map`] is
//! byte-for-byte identical for 1, 2, or N worker threads. Parallelism
//! changes wall-clock time, never results.
//!
//! ```
//! use lowvolt_exec::{parallel_map, ExecPolicy};
//!
//! let items: Vec<u64> = (0..100).collect();
//! let serial = parallel_map(&ExecPolicy::serial(), &items, |_, &x| x * x);
//! let parallel = parallel_map(&ExecPolicy::with_threads(4), &items, |_, &x| x * x);
//! assert_eq!(serial, parallel);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lowvolt_obs::{names, span, Recorder};

pub mod cache;
pub mod fault;
pub mod journal;

pub use cache::{ByteCache, CacheError, CacheKey};
pub use fault::{parallel_map_isolated, CancelToken, ExecError, FaultPolicy, ItemStatus};
pub use journal::{
    run_checkpointed, CheckpointJournal, CheckpointOutcome, CheckpointSpec, JournalError,
    JournalReplay,
};

/// FNV-1a 64-bit hash of `bytes` — the checksum primitive shared by the
/// checkpoint journal, the byte cache, and callers deriving cache keys.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Environment variable consulted by [`ExecPolicy::from_env`] for the
/// worker-thread count. Unset, empty, `0`, or unparsable values fall
/// back to the machine's available parallelism.
pub const THREADS_ENV_VAR: &str = "LOWVOLT_THREADS";

/// How many worker threads a parallel region may use.
///
/// A policy is just a validated thread count; it is `Copy`, cheap to
/// pass down call stacks, and carries no pool state (threads are scoped
/// to each [`parallel_map`] call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    threads: NonZeroUsize,
}

impl ExecPolicy {
    /// A single-threaded policy: work runs inline on the calling thread,
    /// spawning nothing. This is the reference behaviour every parallel
    /// run must reproduce bit-identically.
    #[must_use]
    pub fn serial() -> ExecPolicy {
        ExecPolicy {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A policy with an explicit thread count; `0` means "use all
    /// available parallelism".
    #[must_use]
    pub fn with_threads(threads: usize) -> ExecPolicy {
        match NonZeroUsize::new(threads) {
            Some(n) => ExecPolicy { threads: n },
            None => ExecPolicy::max_parallel(),
        }
    }

    /// A policy using the machine's full available parallelism (1 if it
    /// cannot be determined).
    #[must_use]
    pub fn max_parallel() -> ExecPolicy {
        ExecPolicy {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// Resolves the policy from the environment: `LOWVOLT_THREADS=N`
    /// selects N workers, anything else (unset, empty, `0`, garbage)
    /// selects the available parallelism.
    #[must_use]
    pub fn from_env() -> ExecPolicy {
        match std::env::var(THREADS_ENV_VAR) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => ExecPolicy::with_threads(n),
                _ => ExecPolicy::max_parallel(),
            },
            Err(_) => ExecPolicy::max_parallel(),
        }
    }

    /// The worker-thread count this policy permits.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Whether this policy runs inline without spawning.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads.get() == 1
    }
}

impl Default for ExecPolicy {
    /// Defaults to [`ExecPolicy::from_env`].
    fn default() -> ExecPolicy {
        ExecPolicy::from_env()
    }
}

/// Number of chunks each worker should expect to claim on average; more
/// chunks per worker smooths imbalance (fault campaigns mix cheap masked
/// runs with expensive oscillation diagnoses) at the cost of more cursor
/// traffic.
const CHUNKS_PER_WORKER: usize = 8;

fn chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers * CHUNKS_PER_WORKER)).max(1)
}

/// Applies `f` to every item of `items`, in parallel under `policy`,
/// returning the results **in input order**.
///
/// `f` receives `(index, &item)` so callers can seed per-item state from
/// the index. Results are written to each item's slot, so the returned
/// vector is identical whatever the thread count — parallelism is an
/// implementation detail, not an observable.
///
/// A panic inside `f` on a worker thread is re-raised on the calling
/// thread (the standard [`std::thread::scope`] contract); the library's
/// own closures are panic-free and surface failures as values.
pub fn parallel_map<T, R, F>(policy: &ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_recorded(policy, lowvolt_obs::noop(), items, f)
}

/// [`parallel_map`] with execution-engine metrics flushed to `rec`:
/// `exec.regions` / `exec.items` / `exec.chunks` counters plus
/// `exec.region`, `exec.worker` (per-worker busy time) and `exec.chunk`
/// (per-chunk wall time) spans. With a disabled recorder this is
/// byte-for-byte the uninstrumented engine — the clock is never read
/// and no per-item work is added either way (counters flush once per
/// chunk, not per item).
///
/// `exec.items` and `exec.regions` are thread-count invariant;
/// `exec.chunks` deliberately is not (it reports how the pool actually
/// carved the work).
pub fn parallel_map_recorded<T, R, F>(
    policy: &ExecPolicy,
    rec: &dyn Recorder,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let enabled = rec.is_enabled();
    if enabled {
        rec.add(names::EXEC_REGIONS, 1);
        rec.add(names::EXEC_ITEMS, items.len() as u64);
    }
    if items.is_empty() {
        // An empty region counts as a region but spawns nothing, claims
        // no chunks, and opens no worker/chunk spans.
        return Vec::new();
    }
    let region = span(rec, names::SPAN_EXEC_REGION);
    let workers = policy.threads().min(items.len());
    if workers <= 1 {
        if enabled && !items.is_empty() {
            rec.add(names::EXEC_CHUNKS, 1);
        }
        let worker = span(rec, names::SPAN_EXEC_WORKER);
        let chunk = span(rec, names::SPAN_EXEC_CHUNK);
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        drop(chunk);
        drop(worker);
        drop(region);
        return out;
    }
    let chunk = chunk_size(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Claim a chunk, compute it into a local buffer, then take
                // the slot lock once per chunk to deposit results at their
                // input indices. The lock is held only for the copy-out, so
                // contention stays negligible next to simulation work.
                let worker_start = enabled.then(Instant::now);
                let mut claimed: u64 = 0;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    claimed += 1;
                    let chunk_start = enabled.then(Instant::now);
                    let end = (start + chunk).min(items.len());
                    let local: Vec<R> = items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(start + off, t))
                        .collect();
                    if let Ok(mut guard) = slots.lock() {
                        for (off, r) in local.into_iter().enumerate() {
                            guard[start + off] = Some(r);
                        }
                    }
                    if let Some(t0) = chunk_start {
                        rec.record_nanos(names::SPAN_EXEC_CHUNK, elapsed_nanos(t0));
                    }
                }
                if enabled {
                    if claimed > 0 {
                        rec.add(names::EXEC_CHUNKS, claimed);
                    }
                    if let Some(t0) = worker_start {
                        rec.record_nanos(names::SPAN_EXEC_WORKER, elapsed_nanos(t0));
                    }
                }
            });
        }
    });
    drop(region);
    // Every index in 0..len was claimed by exactly one worker and scope
    // exit joined them all, so every slot is filled; `flatten` cannot
    // drop anything here.
    let filled: &mut Vec<Option<R>> = match slots.into_inner() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    std::mem::take(filled).into_iter().flatten().collect()
}

fn elapsed_nanos(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// [`parallel_map`] for fallible work: applies `f` to every item and
/// collects into a single `Result`, keeping the **first** (lowest-index)
/// error — the same error a serial loop with `?` would have returned.
///
/// # Errors
///
/// Returns the lowest-index `Err` produced by `f`, if any.
pub fn try_parallel_map<T, R, E, F>(policy: &ExecPolicy, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in parallel_map(policy, items, f) {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        let serial = parallel_map(&ExecPolicy::serial(), &items, |i, &x| (i, x * 3));
        for threads in [2, 3, 4, 16] {
            let par = parallel_map(&ExecPolicy::with_threads(threads), &items, |i, &x| {
                (i, x * 3)
            });
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map(&ExecPolicy::with_threads(4), &none, |_, &x| x).is_empty());
        let one = [7u8];
        assert_eq!(
            parallel_map(&ExecPolicy::with_threads(4), &one, |_, &x| x + 1),
            vec![8]
        );
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<usize> = (0..313).collect(); // not a multiple of any chunk
        let calls = AtomicUsize::new(0);
        let out = parallel_map(&ExecPolicy::with_threads(5), &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        let out = parallel_map(&ExecPolicy::with_threads(64), &items, |_, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn try_map_keeps_first_error() {
        let items: Vec<usize> = (0..100).collect();
        let res: Result<Vec<usize>, usize> =
            try_parallel_map(&ExecPolicy::with_threads(4), &items, |_, &x| {
                if x % 30 == 29 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
        assert_eq!(res.unwrap_err(), 29, "lowest-index error wins");
        let ok: Result<Vec<usize>, usize> =
            try_parallel_map(&ExecPolicy::serial(), &items[..20], |_, &x| Ok(x));
        assert_eq!(ok.unwrap().len(), 20);
    }

    #[test]
    fn policy_constructors() {
        assert!(ExecPolicy::serial().is_serial());
        assert_eq!(ExecPolicy::serial().threads(), 1);
        assert_eq!(ExecPolicy::with_threads(3).threads(), 3);
        assert!(ExecPolicy::with_threads(0).threads() >= 1);
        assert!(ExecPolicy::max_parallel().threads() >= 1);
        assert!(ExecPolicy::default().threads() >= 1);
    }

    #[test]
    fn recorded_map_counts_items_and_chunks() {
        use lowvolt_obs::MetricsRegistry;
        let items: Vec<usize> = (0..500).collect();
        let reg = MetricsRegistry::new();
        let out = parallel_map_recorded(&ExecPolicy::with_threads(4), &reg, &items, |_, &x| x + 1);
        assert_eq!(out.len(), 500);
        assert_eq!(reg.counter(names::EXEC_ITEMS), 500);
        assert_eq!(reg.counter(names::EXEC_REGIONS), 1);
        assert!(
            reg.counter(names::EXEC_CHUNKS) >= 4,
            "multiple chunks claimed"
        );
        let snap = reg.snapshot();
        assert!(snap.span(names::SPAN_EXEC_REGION).is_some());
        assert!(snap.span(names::SPAN_EXEC_WORKER).is_some());
        assert_eq!(
            snap.span(names::SPAN_EXEC_CHUNK).map(|s| s.count),
            Some(reg.counter(names::EXEC_CHUNKS))
        );
    }

    #[test]
    fn recorded_map_serial_and_empty_inputs() {
        use lowvolt_obs::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let items = [10u32, 20];
        let out = parallel_map_recorded(&ExecPolicy::serial(), &reg, &items, |_, &x| x);
        assert_eq!(out, vec![10, 20]);
        assert_eq!(reg.counter(names::EXEC_ITEMS), 2);
        assert_eq!(reg.counter(names::EXEC_CHUNKS), 1);
        let none: Vec<u8> = Vec::new();
        let out = parallel_map_recorded(&ExecPolicy::serial(), &reg, &none, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(reg.counter(names::EXEC_REGIONS), 2);
        assert_eq!(
            reg.counter(names::EXEC_CHUNKS),
            1,
            "empty region claims no chunk"
        );
    }

    #[test]
    fn recorded_and_plain_map_agree() {
        use lowvolt_obs::MetricsRegistry;
        let items: Vec<u64> = (0..257).collect();
        let plain = parallel_map(&ExecPolicy::with_threads(3), &items, |i, &x| x * i as u64);
        let reg = MetricsRegistry::new();
        let rec = parallel_map_recorded(&ExecPolicy::with_threads(3), &reg, &items, |i, &x| {
            x * i as u64
        });
        assert_eq!(plain, rec);
    }

    #[test]
    fn empty_input_returns_without_spawning() {
        use lowvolt_obs::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let none: Vec<u64> = Vec::new();
        let out = parallel_map_recorded(&ExecPolicy::with_threads(8), &reg, &none, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(reg.counter(names::EXEC_REGIONS), 1);
        assert_eq!(reg.counter(names::EXEC_ITEMS), 0);
        assert_eq!(reg.counter(names::EXEC_CHUNKS), 0);
        // The early return precedes every span: no worker (or even
        // region) timer means no thread was spawned or clock read.
        let snap = reg.snapshot();
        assert!(snap.span(names::SPAN_EXEC_REGION).is_none());
        assert!(snap.span(names::SPAN_EXEC_WORKER).is_none());
        assert!(snap.span(names::SPAN_EXEC_CHUNK).is_none());
    }

    #[test]
    fn fewer_items_than_threads_runs_inline() {
        use lowvolt_obs::MetricsRegistry;
        // workers = threads.min(items): a single item runs inline as one
        // chunk, and tiny inputs never spawn more workers than items.
        let reg = MetricsRegistry::new();
        let one = [99u32];
        let out = parallel_map_recorded(&ExecPolicy::with_threads(64), &reg, &one, |_, &x| x + 1);
        assert_eq!(out, vec![100]);
        assert_eq!(reg.counter(names::EXEC_CHUNKS), 1, "single inline chunk");
        for n in 1..6usize {
            let items: Vec<usize> = (0..n).collect();
            let out = parallel_map(&ExecPolicy::with_threads(64), &items, |i, &x| {
                assert_eq!(i, x);
                x * 7
            });
            assert_eq!(out, items.iter().map(|&x| x * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunking_covers_all_sizes() {
        for n in [1usize, 2, 7, 8, 9, 63, 64, 65, 1000] {
            let items: Vec<usize> = (0..n).collect();
            let out = parallel_map(&ExecPolicy::with_threads(4), &items, |_, &x| x);
            assert_eq!(out, items, "n = {n}");
        }
        assert_eq!(chunk_size(1, 4), 1);
        assert!(chunk_size(10_000, 4) > 1);
    }
}
