//! Property-based tests for the CAD-layer invariants.

use lowvolt_circuit::ring::RingOscillator;
use lowvolt_core::activity::ActivityVars;
use lowvolt_core::energy::{BlockParams, BurstEnergyModel};
use lowvolt_core::optimizer::FixedThroughputOptimizer;
use lowvolt_core::shutdown::{evaluate, Policy, PowerStates, SessionTrace};
use lowvolt_device::soias::SoiasDevice;
use lowvolt_device::technology::Technology;
use lowvolt_device::units::{Hertz, Joules, Seconds, Volts, Watts};
use proptest::prelude::*;

fn soias() -> Technology {
    Technology::soias(SoiasDevice::paper_fig6(), Volts(3.0)).unwrap()
}

fn soi() -> Technology {
    Technology::soi_fixed_vt_device(SoiasDevice::paper_fig6().front_device(Volts(3.0)))
}

proptest! {
    /// Per-cycle energies are finite, positive, and the breakdown sums to
    /// the total for any feasible activity point.
    #[test]
    fn energy_finite_positive(
        fga in 1e-4f64..1.0,
        bga_frac in 0.0f64..1.0,
        alpha in 0.01f64..1.5,
        vdd in 0.5f64..3.0,
        mhz in 0.5f64..100.0,
    ) {
        let activity = ActivityVars::new(fga, fga * bga_frac, alpha).unwrap();
        let model = BurstEnergyModel::new(Volts(vdd), Hertz(mhz * 1e6)).unwrap();
        let block = BlockParams::adder_8bit().unwrap();
        for tech in [soias(), soi()] {
            let b = model.breakdown(&tech, &block, activity);
            let total = b.total().0;
            prop_assert!(total.is_finite() && total > 0.0);
            let sum = b.switching.0 + b.control.0 + b.leak_active.0 + b.leak_standby.0;
            prop_assert!((total - sum).abs() <= 1e-12 * total.max(1e-30));
        }
    }

    /// Eqs. 3 and 4 are both monotone in each activity variable
    /// separately: raising `fga`, `bga`, or `alpha` never lowers the
    /// per-cycle energy of either technology. (For the fixed-VT SOI
    /// model the `bga` step is a no-op — Eq. 3 has no control term —
    /// so the inequality holds with equality there.)
    #[test]
    fn energy_monotone_in_activity(
        fga in 1e-3f64..0.9,
        bga_frac in 0.0f64..0.9,
        alpha in 0.05f64..1.0,
    ) {
        let model = BurstEnergyModel::new(Volts(1.0), Hertz(1e6)).unwrap();
        let block = BlockParams::adder_8bit().unwrap();
        for tech in [soias(), soi()] {
            let base = ActivityVars::new(fga, fga * bga_frac, alpha).unwrap();
            let e0 = model.energy_per_cycle(&tech, &block, base).0;
            let more_fga = ActivityVars::new(fga * 1.1, fga * bga_frac, alpha).unwrap();
            prop_assert!(model.energy_per_cycle(&tech, &block, more_fga).0 >= e0 - e0 * 1e-12);
            let more_bga = ActivityVars::new(fga, fga * bga_frac.min(0.9) + fga * 0.05, alpha).unwrap();
            prop_assert!(model.energy_per_cycle(&tech, &block, more_bga).0 >= e0 - e0 * 1e-12);
            let more_alpha = ActivityVars::new(fga, fga * bga_frac, alpha * 1.1).unwrap();
            prop_assert!(model.energy_per_cycle(&tech, &block, more_alpha).0 >= e0 - e0 * 1e-12);
        }
    }

    /// The Fig. 10 prediction as a pointwise ordering: anywhere in the
    /// mostly-idle region (fga at most a few percent, overhead activity
    /// bounded by fga itself), the adaptive-VT technology's Eq. 4 energy
    /// never exceeds the fixed-VT Eq. 3 energy — standby-leakage savings
    /// dominate the control overhead across the whole region, not just
    /// at the single operating point the figure plots.
    #[test]
    fn soias_never_loses_when_mostly_idle(
        fga in 1e-4f64..0.05,
        bga_frac in 0.0f64..1.0,
        alpha in 0.05f64..1.0,
        vdd in 0.8f64..1.5,
    ) {
        let model = BurstEnergyModel::new(Volts(vdd), Hertz(1e6)).unwrap();
        let block = BlockParams::adder_8bit().unwrap();
        let a = ActivityVars::new(fga, fga * bga_frac, alpha).unwrap();
        let e_soias = model.energy_per_cycle(&soias(), &block, a).0;
        let e_soi = model.energy_per_cycle(&soi(), &block, a).0;
        prop_assert!(
            e_soias <= e_soi * (1.0 + 1e-9),
            "SOIAS {e_soias} must not exceed SOI {e_soi} at fga={fga}"
        );
    }

    /// The fixed-throughput optimum never loses to any point on its own
    /// feasible sweep grid.
    #[test]
    fn optimum_is_global_on_grid(t_op_us in 0.1f64..100.0) {
        let ring = RingOscillator::paper_default().unwrap();
        let target = ring.stage_delay(Volts(1.5), Volts(0.45));
        let opt = FixedThroughputOptimizer::new(ring, target, 1.0).unwrap();
        let t_op = Seconds(t_op_us * 1e-6);
        let best = opt.optimum(t_op).unwrap();
        for i in 0..40 {
            let vt = Volts(0.02 * f64::from(i));
            if let Ok(p) = opt.evaluate(vt, t_op) {
                prop_assert!(
                    p.total().0 >= best.total().0 * (1.0 - 1e-9),
                    "grid point vt={} beats optimum", vt
                );
            }
        }
    }

    /// Iso-delay supplies always reproduce the delay target.
    #[test]
    fn iso_delay_supplies_hit_target(vt in 0.0f64..0.6) {
        let ring = RingOscillator::paper_default().unwrap();
        let target = ring.stage_delay(Volts(1.5), Volts(0.45));
        let opt = FixedThroughputOptimizer::new(ring.clone(), target, 1.0).unwrap();
        let vdd = opt.iso_delay_supply(Volts(vt)).unwrap();
        let achieved = ring.stage_delay(vdd, Volts(vt));
        prop_assert!((achieved.0 - target.0).abs() / target.0 < 1e-3);
    }

    /// The shutdown oracle lower-bounds every other policy on arbitrary
    /// bursty traces.
    #[test]
    fn oracle_is_a_lower_bound(
        pairs in 5usize..60,
        mean_busy_ms in 1.0f64..50.0,
        mean_idle_ms in 1.0f64..500.0,
        timeout_ms in 0.1f64..100.0,
        seed in 0u64..1000,
    ) {
        let trace = SessionTrace::bursty(
            pairs,
            Seconds(mean_busy_ms * 1e-3),
            Seconds(mean_idle_ms * 1e-3),
            seed,
        );
        let states = PowerStates {
            active: Watts(0.1),
            idle: Watts(0.01),
            sleep: Watts(1e-5),
            wake_energy: Joules(1e-4),
        };
        let oracle = evaluate(&trace, &states, Policy::Oracle).energy.0;
        for policy in [
            Policy::AlwaysOn,
            Policy::Timeout(Seconds(timeout_ms * 1e-3)),
            Policy::Predictive,
        ] {
            let e = evaluate(&trace, &states, policy).energy.0;
            prop_assert!(e >= oracle - 1e-12, "{} beat the oracle", policy.name());
        }
    }

    /// Technology savings: the SOIAS-vs-SOI ratio improves (falls) as fga
    /// falls at fixed bga, for a leakage-dominated operating point.
    #[test]
    fn ratio_improves_with_idleness(fga_hi in 0.2f64..1.0, shrink in 0.1f64..0.9) {
        let model = BurstEnergyModel::new(Volts(1.0), Hertz(1e6)).unwrap();
        let block = BlockParams::adder_8bit().unwrap();
        let fga_lo = fga_hi * shrink;
        let bga = (fga_lo * 0.1).min(0.01);
        let a_hi = ActivityVars::new(fga_hi, bga, 0.5).unwrap();
        let a_lo = ActivityVars::new(fga_lo, bga, 0.5).unwrap();
        let r_hi = model.log_energy_ratio(&soias(), &soi(), &block, a_hi);
        let r_lo = model.log_energy_ratio(&soias(), &soi(), &block, a_lo);
        prop_assert!(r_lo <= r_hi + 1e-9, "idler block must favour SOIAS at least as much");
    }
}
