//! Sensitivity analysis of the fixed-throughput optimum.
//!
//! "The optimum selection of technology, circuit, and system parameters
//! … depends on the application being implemented, node and module
//! switching activities, module access patterns, etc." — the paper's
//! point that no single (V_DD, V_T) is right for everyone. This module
//! quantifies it: finite-difference sensitivities of the optimal
//! operating point and its energy to the parameters a designer actually
//! controls or mis-estimates (activity, throughput, load, sub-threshold
//! slope via temperature).

use crate::error::CoreError;
use crate::optimizer::FixedThroughputOptimizer;
use lowvolt_circuit::ring::RingOscillator;
use lowvolt_device::units::{Seconds, Volts};
use lowvolt_exec::{parallel_map_isolated, ExecPolicy, FaultPolicy, ItemStatus};

/// One parameter's influence on the optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityEntry {
    /// Parameter name.
    pub parameter: &'static str,
    /// Relative perturbation applied (e.g. 0.2 = ±20 %).
    pub perturbation: f64,
    /// Optimal V_T at the low and high ends, volts.
    pub vt_range: (f64, f64),
    /// Optimal V_DD at the low and high ends, volts.
    pub vdd_range: (f64, f64),
    /// Relative energy swing `(E_hi − E_lo) / E_nominal`.
    pub energy_swing: f64,
}

/// Full sensitivity report around a nominal design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// Nominal optimal threshold.
    pub nominal_vt: Volts,
    /// Nominal optimal supply.
    pub nominal_vdd: Volts,
    /// Per-parameter entries, largest energy swing first.
    pub entries: Vec<SensitivityEntry>,
}

/// Nominal design-point description for the analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Node activity `α`.
    pub activity: f64,
    /// Iso-delay target per stage.
    pub stage_delay: Seconds,
    /// Throughput period the leakage integrates over.
    pub t_op: Seconds,
}

impl DesignPoint {
    /// The Fig. 4-style nominal point: full activity, mid-speed target,
    /// 1 MHz throughput.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Device`] if the paper-default ring constants
    /// are rejected (they never are as shipped).
    pub fn paper_nominal() -> Result<DesignPoint, CoreError> {
        let ring = RingOscillator::paper_default()?;
        Ok(DesignPoint {
            activity: 1.0,
            stage_delay: ring.stage_delay(Volts(1.5), Volts(0.45)),
            t_op: Seconds(1e-6),
        })
    }
}

fn optimum_at(
    activity: f64,
    stage_delay: Seconds,
    t_op: Seconds,
) -> Result<(f64, f64, f64), CoreError> {
    let opt =
        FixedThroughputOptimizer::new(RingOscillator::paper_default()?, stage_delay, activity)?;
    let best = opt.optimum(t_op)?;
    Ok((best.vt.0, best.vdd.0, best.total().0))
}

/// Runs the analysis serially: each parameter is swung by
/// ±`perturbation` (relative) around the design point, re-optimising
/// everything else. See [`analyse_with`] for the parallel variant.
///
/// # Errors
///
/// Returns [`CoreError`] if the nominal or any perturbed point is
/// infeasible (choose a `perturbation` below 1).
pub fn analyse(point: DesignPoint, perturbation: f64) -> Result<SensitivityReport, CoreError> {
    analyse_with(&ExecPolicy::serial(), point, perturbation)
}

/// [`analyse`] with the seven re-optimisations (nominal plus low/high
/// per parameter) fanned out over `policy`'s worker threads. Each point
/// is an independent grid + golden-section optimisation; results are
/// assembled in the fixed parameter order, so the report is identical
/// for any thread count.
///
/// # Errors
///
/// Returns [`CoreError`] if the nominal or any perturbed point is
/// infeasible (choose a `perturbation` below 1).
pub fn analyse_with(
    policy: &ExecPolicy,
    point: DesignPoint,
    perturbation: f64,
) -> Result<SensitivityReport, CoreError> {
    if !(0.0 < perturbation && perturbation < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "perturbation",
            value: perturbation,
            constraint: "must lie in (0, 1)",
        });
    }
    let lo = 1.0 - perturbation;
    let hi = 1.0 + perturbation;
    // Nominal first, then (low, high) per parameter; the index order also
    // fixes which error surfaces when several points are infeasible.
    let jobs: [(f64, Seconds, Seconds); 7] = [
        (point.activity, point.stage_delay, point.t_op),
        (point.activity * lo, point.stage_delay, point.t_op),
        (
            point.activity.min(1.0 / hi) * hi,
            point.stage_delay,
            point.t_op,
        ),
        (
            point.activity,
            Seconds(point.stage_delay.0 * lo),
            point.t_op,
        ),
        (
            point.activity,
            Seconds(point.stage_delay.0 * hi),
            point.t_op,
        ),
        (
            point.activity,
            point.stage_delay,
            Seconds(point.t_op.0 * lo),
        ),
        (
            point.activity,
            point.stage_delay,
            Seconds(point.t_op.0 * hi),
        ),
    ];
    let slots = parallel_map_isolated(
        policy,
        &FaultPolicy::default(),
        lowvolt_obs::noop(),
        &jobs,
        |_, &(activity, delay, t_op), _| ItemStatus::Done(optimum_at(activity, delay, t_op)),
    );
    let mut optima = Vec::with_capacity(slots.len());
    for slot in slots {
        optima.push(slot.map_err(CoreError::from)??);
    }
    let (nominal_vt, nominal_vdd, nominal_e) = match optima.first() {
        Some(&n) => n,
        None => {
            return Err(CoreError::InvalidParameter {
                name: "jobs",
                value: 0.0,
                constraint: "internal: sensitivity job list cannot be empty",
            })
        }
    };
    let mut entries = Vec::new();
    for (parameter, pair) in [
        ("activity (alpha)", optima.get(1..3)),
        ("delay target", optima.get(3..5)),
        ("throughput period", optima.get(5..7)),
    ] {
        if let Some([a, b]) = pair {
            entries.push(SensitivityEntry {
                parameter,
                perturbation,
                vt_range: (a.0, b.0),
                vdd_range: (a.1, b.1),
                energy_swing: (b.2 - a.2) / nominal_e,
            });
        }
    }
    entries.sort_by(|x, y| y.energy_swing.abs().total_cmp(&x.energy_swing.abs()));
    Ok(SensitivityReport {
        nominal_vt: Volts(nominal_vt),
        nominal_vdd: Volts(nominal_vdd),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_fig4_optimum() {
        let r = analyse(DesignPoint::paper_nominal().unwrap(), 0.2).expect("feasible");
        assert!(
            (r.nominal_vt.0 - 0.182).abs() < 0.02,
            "vt = {}",
            r.nominal_vt
        );
        assert!(r.nominal_vdd.0 < 1.0);
        assert_eq!(r.entries.len(), 3);
    }

    #[test]
    fn delay_target_is_the_dominant_knob() {
        // Energy scales ~V² along the iso-delay locus; relaxing the delay
        // target moves V_DD directly, so it must dominate the swing.
        let r = analyse(DesignPoint::paper_nominal().unwrap(), 0.2).expect("feasible");
        assert_eq!(r.entries[0].parameter, "delay target");
        assert!(r.entries[0].energy_swing.abs() > 0.05);
    }

    #[test]
    fn directions_are_physical() {
        let r = analyse(DesignPoint::paper_nominal().unwrap(), 0.3).expect("feasible");
        for e in &r.entries {
            match e.parameter {
                // More activity → switching matters more → lower optimal V_T.
                "activity (alpha)" => assert!(e.vt_range.1 <= e.vt_range.0 + 1e-6, "{e:?}"),
                // A slower target → lower supply at equal V_T.
                "delay target" => assert!(e.vdd_range.1 < e.vdd_range.0, "{e:?}"),
                // A longer idle window → leakage integrates longer → higher V_T.
                "throughput period" => assert!(e.vt_range.1 >= e.vt_range.0 - 1e-6, "{e:?}"),
                other => panic!("unexpected parameter {other}"),
            }
        }
    }

    #[test]
    fn bad_perturbation_rejected() {
        assert!(analyse(DesignPoint::paper_nominal().unwrap(), 0.0).is_err());
        assert!(analyse(DesignPoint::paper_nominal().unwrap(), 1.0).is_err());
    }
}
