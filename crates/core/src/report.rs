//! Plain-text tables and CSV emission for the experiment harness.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Serialises as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Serialises as a JSON array of objects, one per row, keyed by the
    /// column headers. Keys keep header order, cells stay strings, and
    /// output is byte-deterministic — the golden-figure snapshot tests
    /// compare this form verbatim.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(out: &mut String, s: &str) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut out = String::from("[\n");
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (i, (h, cell)) in self.headers.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                esc(&mut out, h);
                out.push_str(": ");
                esc(&mut out, cell);
            }
            out.push('}');
            if r + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                if i + 1 == cols {
                    writeln!(f, "{cell:>w$}", w = widths[i])?;
                } else {
                    write!(f, "{cell:>w$}  ", w = widths[i])?;
                }
            }
            Ok(())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float in engineering-friendly short form.
#[must_use]
pub fn fmt_sig(value: f64, digits: usize) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let magnitude = value.abs().log10().floor() as i32;
    if (-3..6).contains(&magnitude) {
        let decimals = (digits as i32 - 1 - magnitude).max(0) as usize;
        format!("{value:.decimals$}")
    } else {
        format!("{value:.prec$e}", prec = digits.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.push_row(["adder", "1.5"]);
        t.push_row(["multiplier", "23.25"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("multiplier"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["plain", "has,comma"]);
        t.push_row(["has\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn json_rows_are_keyed_by_headers() {
        let mut t = Table::new(["name", "value"]);
        t.push_row(["adder", "1.5"]);
        t.push_row(["with \"quote\"", "a\nb"]);
        let json = t.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("{\"name\": \"adder\", \"value\": \"1.5\"}"));
        assert!(json.contains("\\\"quote\\\""));
        assert!(json.contains("a\\nb"));
        // Empty tables are a valid, empty array.
        assert_eq!(Table::new(["a"]).to_json(), "[\n]\n");
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(fmt_sig(0.0, 3), "0");
        assert_eq!(fmt_sig(1.234, 3), "1.23");
        assert_eq!(fmt_sig(123.4, 3), "123");
        assert_eq!(fmt_sig(0.00123, 3), "0.00123");
        assert!(fmt_sig(1.23e-9, 3).contains('e'));
        assert!(fmt_sig(1.23e9, 3).contains('e'));
    }
}
