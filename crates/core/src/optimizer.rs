//! Joint `V_DD` / `V_T` selection at fixed throughput — the paper's §3.
//!
//! "Reducing the threshold voltage allows the supply voltage to be scaled
//! down (and therefore lower switching power) without loss in
//! performance. … at some point, the threshold voltage and supply
//! reduction is offset by an increase in the leakage currents, resulting
//! in an optimum threshold voltage and power supply voltage."
//!
//! The optimiser holds a delay constraint fixed (Fig. 3's iso-delay
//! locus), integrates leakage over the throughput period, and finds the
//! energy-minimising `(V_DD, V_T)` (Fig. 4). Two performance models can
//! supply the constraint:
//!
//! - the paper's **ring-oscillator proxy** ([`RingOscillator`]): hold
//!   one stage's delay at the target — the measurement structure the
//!   paper's figures are drawn from; or
//! - a circuit's own **critical path** ([`CriticalPathModel`]), as
//!   extracted by static timing analysis (`lowvolt-sta`): hold the worst
//!   register-to-register/output path at the target, price switching on
//!   the whole circuit's switched capacitance and leakage on its gate
//!   count. Because every gate delay under uniform pricing shares the
//!   same `k·V_DD/I_on(V_DD, V_T)` voltage factor, the worst path is
//!   operating-point invariant and lumps exactly into one
//!   alpha-power-law stage driving the path's total capacitance.

use crate::error::CoreError;
use lowvolt_circuit::ring::RingOscillator;
use lowvolt_device::delay::StageDelay;
use lowvolt_device::mosfet::Mosfet;
use lowvolt_device::on_current::AlphaPowerLaw;
use lowvolt_device::units::{Amps, Farads, Joules, Micrometers, Seconds, Volts};
use lowvolt_exec::{parallel_map_isolated, ExecPolicy, FaultPolicy, ItemStatus};

/// One evaluated operating point of the fixed-throughput sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyPoint {
    /// Threshold voltage.
    pub vt: Volts,
    /// Supply voltage meeting the delay target at this threshold.
    pub vdd: Volts,
    /// Switching energy per operation.
    pub switching: Joules,
    /// Leakage energy per operation period.
    pub leakage: Joules,
}

impl EnergyPoint {
    /// Total energy per operation.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.switching + self.leakage
    }
}

/// Lumped performance model of one circuit's worst timing path, the
/// static-timing-analysis alternative to the ring proxy. The delay
/// constraint is a single alpha-power-law stage driving the critical
/// path's total capacitance; switching energy prices the whole circuit's
/// switched capacitance and leakage prices one off-device per gate.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathModel {
    path: StageDelay,
    switched_cap: Farads,
    /// Leakage template; its threshold is overridden per query.
    leak_template: Mosfet,
    gates: usize,
}

impl CriticalPathModel {
    /// Builds the model from a circuit's load summary: drive devices of
    /// `width`, total worst-path load `path_load`, whole-circuit switched
    /// capacitance `switched_cap`, and `gates` leaking devices.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a gateless circuit or
    /// non-positive switched capacitance, and [`CoreError::Device`] when
    /// the device layer rejects the path load or width.
    pub fn new(
        width: Micrometers,
        path_load: Farads,
        switched_cap: Farads,
        gates: usize,
    ) -> Result<CriticalPathModel, CoreError> {
        if gates == 0 {
            return Err(CoreError::InvalidParameter {
                name: "gates",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if !switched_cap.0.is_finite() || switched_cap.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "switched_cap",
                value: switched_cap.0,
                constraint: "must be positive and finite",
            });
        }
        let path = StageDelay::new(AlphaPowerLaw::with_width(width), path_load, 0.5)?;
        Ok(CriticalPathModel {
            path,
            switched_cap,
            leak_template: Mosfet::nmos_with_vt(Volts(0.4)).with_width(width),
            gates,
        })
    }

    /// Leaking device count.
    #[must_use]
    pub fn gates(&self) -> usize {
        self.gates
    }

    /// Whole-circuit switched capacitance.
    #[must_use]
    pub fn switched_cap(&self) -> Farads {
        self.switched_cap
    }

    /// Worst-path delay at an operating point (infinite when
    /// `V_DD <= V_T`).
    #[must_use]
    pub fn path_delay(&self, vdd: Volts, vt: Volts) -> Seconds {
        self.path.delay(vdd, vt)
    }

    /// Total idle leakage: one off-device per gate at threshold `vt`.
    #[must_use]
    pub fn leakage_current(&self, vdd: Volts, vt: Volts) -> Amps {
        let device = self.leak_template.clone().with_vt(vt);
        Amps(self.gates as f64 * device.off_current(vdd).0)
    }
}

/// Which performance model supplies the delay constraint and energy
/// terms.
#[derive(Debug, Clone, PartialEq)]
enum Model {
    Ring(RingOscillator),
    Path(CriticalPathModel),
}

/// Fixed-throughput `V_DD`/`V_T` optimiser over a ring-oscillator proxy
/// or an STA-derived critical-path model.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedThroughputOptimizer {
    model: Model,
    /// Per-stage delay target for the ring proxy; whole-path target for
    /// the critical-path model.
    target_delay: Seconds,
    v_max: Volts,
    /// Node activity scaling of the switching term (`α`); the ring's own
    /// oscillation corresponds to 1.
    activity: f64,
}

/// Highest supply the optimiser will consider (the paper's era norm).
pub const DEFAULT_V_MAX: Volts = Volts(3.3);

impl FixedThroughputOptimizer {
    /// Optimiser over the default paper-scale ring with a given stage
    /// delay target.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the target is not
    /// positive, or [`CoreError::Device`] if the paper-default ring
    /// constants are rejected (they never are as shipped).
    pub fn paper_ring(target_stage_delay: Seconds) -> Result<FixedThroughputOptimizer, CoreError> {
        FixedThroughputOptimizer::new(RingOscillator::paper_default()?, target_stage_delay, 1.0)
    }

    /// Fully-specified ring-proxy constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-positive delay
    /// target or activity outside `(0, +∞)`.
    pub fn new(
        ring: RingOscillator,
        target_stage_delay: Seconds,
        activity: f64,
    ) -> Result<FixedThroughputOptimizer, CoreError> {
        FixedThroughputOptimizer::build(Model::Ring(ring), target_stage_delay, activity)
    }

    /// Optimiser whose delay constraint is a circuit's own critical path
    /// instead of the ring proxy: `target_path_delay` constrains the
    /// whole worst path, and the energy terms come from the circuit's
    /// switched capacitance and gate count. Because the switching-to-
    /// leakage ratio is now the circuit's own, the optimal `(V_DD, V_T)`
    /// is per-circuit — the paper's "circuit which has very low
    /// switching activity will require a high-threshold voltage" made
    /// concrete per design.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-positive delay
    /// target or activity outside `(0, +∞)`.
    pub fn for_critical_path(
        model: CriticalPathModel,
        target_path_delay: Seconds,
        activity: f64,
    ) -> Result<FixedThroughputOptimizer, CoreError> {
        FixedThroughputOptimizer::build(Model::Path(model), target_path_delay, activity)
    }

    fn build(
        model: Model,
        target_delay: Seconds,
        activity: f64,
    ) -> Result<FixedThroughputOptimizer, CoreError> {
        if target_delay.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "target_delay",
                value: target_delay.0,
                constraint: "must be positive",
            });
        }
        if activity <= 0.0 || !activity.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "activity",
                value: activity,
                constraint: "must be positive and finite",
            });
        }
        Ok(FixedThroughputOptimizer {
            model,
            target_delay,
            v_max: DEFAULT_V_MAX,
            activity,
        })
    }

    /// The delay target: per-stage for the ring proxy, whole-path for
    /// the critical-path model.
    #[must_use]
    pub fn target_delay(&self) -> Seconds {
        self.target_delay
    }

    /// Supply voltage meeting the delay target at a threshold — one point
    /// of Fig. 3.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Device`] if even `V_max` is too slow at this
    /// threshold.
    pub fn iso_delay_supply(&self, vt: Volts) -> Result<Volts, CoreError> {
        let vdd = match &self.model {
            Model::Ring(r) => r.supply_for_stage_delay(self.target_delay, vt, self.v_max)?,
            Model::Path(m) => m.path.supply_for_delay(self.target_delay, vt, self.v_max)?,
        };
        Ok(vdd)
    }

    /// Sweeps the iso-delay locus over thresholds (skipping infeasible
    /// ones) — the Fig. 3 curve.
    #[must_use]
    pub fn iso_delay_curve(&self, vts: &[Volts]) -> Vec<(Volts, Volts)> {
        vts.iter()
            .filter_map(|&vt| self.iso_delay_supply(vt).ok().map(|vdd| (vt, vdd)))
            .collect()
    }

    /// Evaluates one operating point at a given throughput period
    /// (`t_op` = 1/throughput; leakage integrates over it).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Device`] if the threshold is infeasible,
    /// [`CoreError::InvalidParameter`] for a non-positive or non-finite
    /// `t_op`, and [`CoreError::NonPhysicalEnergy`] if either energy term
    /// comes out NaN, infinite, or negative — the checked-numerics gate
    /// at the device/core boundary.
    pub fn evaluate(&self, vt: Volts, t_op: Seconds) -> Result<EnergyPoint, CoreError> {
        if !t_op.0.is_finite() || t_op.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "t_op",
                value: t_op.0,
                constraint: "must be positive and finite",
            });
        }
        let vdd = self.iso_delay_supply(vt)?;
        let (cap, leak) = match &self.model {
            Model::Ring(r) => (
                r.stages() as f64 * r.stage_load().0,
                r.leakage_current(vdd, vt),
            ),
            Model::Path(m) => (m.switched_cap().0, m.leakage_current(vdd, vt)),
        };
        let switching = Joules(self.activity * cap * vdd.0 * vdd.0);
        let leakage = leak * vdd * t_op;
        for (what, v) in [
            ("switching energy", switching.0),
            ("leakage energy", leakage.0),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::NonPhysicalEnergy { what, value: v });
            }
        }
        Ok(EnergyPoint {
            vt,
            vdd,
            switching,
            leakage,
        })
    }

    /// The Fig. 4 sweep: energy per operation along the iso-delay locus.
    #[must_use]
    pub fn energy_curve(&self, vts: &[Volts], t_op: Seconds) -> Vec<EnergyPoint> {
        vts.iter()
            .filter_map(|&vt| self.evaluate(vt, t_op).ok())
            .collect()
    }

    /// Finds the energy-minimising `(V_DD, V_T)` point: a coarse grid over
    /// `V_T ∈ [0, 0.8 V]` refined by golden-section search. Runs the grid
    /// serially; see [`FixedThroughputOptimizer::optimum_with`] for the
    /// parallel variant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if no threshold admits the delay
    /// target.
    pub fn optimum(&self, t_op: Seconds) -> Result<EnergyPoint, CoreError> {
        self.optimum_with(&ExecPolicy::serial(), t_op)
    }

    /// [`FixedThroughputOptimizer::optimum`] with the coarse grid fanned
    /// out over `policy`'s worker threads. Grid points are independent
    /// supply-solve + energy evaluations; results come back in grid
    /// order, so the argmin — and therefore the refined optimum — is
    /// identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if no threshold admits the delay
    /// target, or [`CoreError::Worker`] if a grid worker panicked (the
    /// panic is isolated to its grid point, never propagated).
    pub fn optimum_with(
        &self,
        policy: &ExecPolicy,
        t_op: Seconds,
    ) -> Result<EnergyPoint, CoreError> {
        let grid: Vec<u32> = (0..=160).collect();
        let slots = parallel_map_isolated(
            policy,
            &FaultPolicy::default(),
            lowvolt_obs::noop(),
            &grid,
            |_, &i, _| {
                let vt = Volts(0.005 * f64::from(i));
                ItemStatus::Done(self.evaluate(vt, t_op).ok())
            },
        );
        let mut coarse: Vec<EnergyPoint> = Vec::with_capacity(slots.len());
        for slot in slots {
            if let Some(point) = slot.map_err(CoreError::from)? {
                coarse.push(point);
            }
        }
        let best = coarse
            .iter()
            .min_by(|a, b| a.total().0.total_cmp(&b.total().0))
            .copied()
            .ok_or(CoreError::Infeasible {
                what: "fixed-throughput vdd/vt optimum",
            })?;
        // Golden-section refinement around the coarse winner.
        let mut lo = (best.vt.0 - 0.005).max(0.0);
        let mut hi = best.vt.0 + 0.005;
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        for _ in 0..60 {
            let x1 = hi - phi * (hi - lo);
            let x2 = lo + phi * (hi - lo);
            let e1 = self.evaluate(Volts(x1), t_op).map(|p| p.total().0);
            let e2 = self.evaluate(Volts(x2), t_op).map(|p| p.total().0);
            match (e1, e2) {
                (Ok(a), Ok(b)) => {
                    if a < b {
                        hi = x2;
                    } else {
                        lo = x1;
                    }
                }
                (Ok(_), Err(_)) => hi = x2,
                (Err(_), Ok(_)) => lo = x1,
                (Err(_), Err(_)) => break,
            }
        }
        self.evaluate(Volts(0.5 * (lo + hi)), t_op).or(Ok(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimizer() -> FixedThroughputOptimizer {
        // A mid-speed target: the delay of the default ring at 1.5 V with
        // a 0.45 V threshold.
        let ring = RingOscillator::paper_default().unwrap();
        let target = ring.stage_delay(Volts(1.5), Volts(0.45));
        FixedThroughputOptimizer::new(ring, target, 1.0).expect("valid")
    }

    #[test]
    fn constructor_validates() {
        let ring = RingOscillator::paper_default().unwrap();
        assert!(FixedThroughputOptimizer::new(ring.clone(), Seconds(0.0), 1.0).is_err());
        assert!(FixedThroughputOptimizer::new(ring, Seconds(1e-9), -1.0).is_err());
    }

    #[test]
    fn fig3_iso_delay_curve_is_monotone() {
        let opt = optimizer();
        let vts: Vec<Volts> = (0..=9).map(|i| Volts(0.05 * f64::from(i))).collect();
        let curve = opt.iso_delay_curve(&vts);
        assert!(curve.len() >= 8);
        for pair in curve.windows(2) {
            assert!(pair[1].1 .0 > pair[0].1 .0, "vdd rises with vt");
        }
    }

    #[test]
    fn fig4_curve_is_u_shaped() {
        let opt = optimizer();
        let vts: Vec<Volts> = (1..=90).map(|i| Volts(0.005 * f64::from(i))).collect();
        let curve = opt.energy_curve(&vts, Seconds(1e-6));
        let totals: Vec<f64> = curve.iter().map(|p| p.total().0).collect();
        let min_idx = totals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // Interior minimum: energy falls then rises.
        assert!(
            min_idx > 0 && min_idx < totals.len() - 1,
            "min at {min_idx}"
        );
        assert!(totals[0] > totals[min_idx] * 1.05, "leakage wall at low vt");
        assert!(
            *totals.last().unwrap() > totals[min_idx] * 1.05,
            "switching wall at high vt"
        );
    }

    #[test]
    fn optimum_is_below_one_volt() {
        // The paper: "It is interesting to note that the optimum voltage
        // is significantly lower than 1 V!"
        let opt = optimizer();
        let best = opt.optimum(Seconds(1e-6)).expect("feasible");
        assert!(best.vdd.0 < 1.0, "vdd = {}", best.vdd);
        assert!(best.vt.0 > 0.02 && best.vt.0 < 0.5, "vt = {}", best.vt);
    }

    #[test]
    fn optimum_beats_grid_neighbours() {
        let opt = optimizer();
        let t_op = Seconds(1e-6);
        let best = opt.optimum(t_op).unwrap();
        for dv in [-0.02, -0.01, 0.01, 0.02] {
            if let Ok(p) = opt.evaluate(Volts(best.vt.0 + dv), t_op) {
                assert!(
                    p.total().0 >= best.total().0 * (1.0 - 1e-9),
                    "neighbour at {dv:+} beats optimum"
                );
            }
        }
    }

    #[test]
    fn slower_throughput_raises_optimal_vt() {
        // More idle time per operation → leakage matters more → higher
        // optimal threshold (the paper's activity dependence).
        let opt = optimizer();
        let fast = opt.optimum(Seconds(1e-7)).unwrap();
        let slow = opt.optimum(Seconds(1e-4)).unwrap();
        assert!(
            slow.vt.0 > fast.vt.0 + 0.01,
            "slow {} vs fast {}",
            slow.vt,
            fast.vt
        );
    }

    #[test]
    fn lower_activity_raises_optimal_vt() {
        // "a circuit which has very low switching activity will require a
        // high-threshold voltage".
        let ring = RingOscillator::paper_default().unwrap();
        let target = ring.stage_delay(Volts(1.5), Volts(0.45));
        let busy = FixedThroughputOptimizer::new(ring.clone(), target, 1.0).unwrap();
        let quiet = FixedThroughputOptimizer::new(ring, target, 0.01).unwrap();
        let t_op = Seconds(1e-6);
        let b = busy.optimum(t_op).unwrap();
        let q = quiet.optimum(t_op).unwrap();
        assert!(q.vt.0 > b.vt.0, "quiet {} vs busy {}", q.vt, b.vt);
    }

    #[test]
    fn infeasible_target_reported() {
        let ring = RingOscillator::paper_default().unwrap();
        let opt = FixedThroughputOptimizer::new(ring, Seconds(1e-15), 1.0).unwrap();
        assert!(opt.iso_delay_supply(Volts(0.4)).is_err());
        assert!(matches!(
            opt.optimum(Seconds(1e-6)),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn critical_path_model_validates() {
        let w = Micrometers(2.0);
        assert!(CriticalPathModel::new(w, Farads(3e-13), Farads(1e-12), 0).is_err());
        assert!(CriticalPathModel::new(w, Farads(3e-13), Farads(0.0), 40).is_err());
        assert!(CriticalPathModel::new(w, Farads(0.0), Farads(1e-12), 40).is_err());
        assert!(CriticalPathModel::new(w, Farads(3e-13), Farads(1e-12), 40).is_ok());
    }

    #[test]
    fn path_model_iso_supply_meets_the_whole_path_target() {
        let unit = 20e-15;
        let model = CriticalPathModel::new(
            Micrometers(2.0),
            Farads(30.0 * unit),
            Farads(60.0 * unit),
            45,
        )
        .unwrap();
        let opt =
            FixedThroughputOptimizer::for_critical_path(model.clone(), Seconds(5e-9), 1.0).unwrap();
        let vdd = opt.iso_delay_supply(Volts(0.3)).unwrap();
        let d = model.path_delay(vdd, Volts(0.3));
        assert!((d.0 - 5e-9).abs() / 5e-9 < 1e-3, "path delay {}", d.0);
    }

    #[test]
    fn ring_equivalent_path_model_reproduces_the_ring_optimum() {
        // A "circuit" with exactly the ring proxy's shape — one unit load
        // on the constraint stage, 101 gates each switching 20 fF — must
        // land on the same optimum: the STA mode generalises the ring, it
        // does not replace its physics.
        let ring = RingOscillator::paper_default().unwrap();
        let target = ring.stage_delay(Volts(1.5), Volts(0.45));
        let model = CriticalPathModel::new(
            Micrometers(2.0),
            ring.stage_load(),
            Farads(ring.stages() as f64 * ring.stage_load().0),
            ring.stages(),
        )
        .unwrap();
        let ring_opt = FixedThroughputOptimizer::new(ring, target, 1.0).unwrap();
        let path_opt = FixedThroughputOptimizer::for_critical_path(model, target, 1.0).unwrap();
        let t_op = Seconds(1e-6);
        let a = ring_opt.optimum(t_op).unwrap();
        let b = path_opt.optimum(t_op).unwrap();
        assert!((a.vt.0 - b.vt.0).abs() < 1e-3, "{} vs {}", a.vt, b.vt);
        assert!((a.vdd.0 - b.vdd.0).abs() < 1e-3, "{} vs {}", a.vdd, b.vdd);
    }

    #[test]
    fn fanout_heavy_circuit_shifts_the_optimum_below_the_ring_proxy() {
        // Three units of load per gate instead of the ring's one: three
        // times the switching energy per leaking device, so switching
        // dominates more and the per-circuit optimum sits at a lower
        // threshold (and supply) than the ring proxy predicts.
        let ring = RingOscillator::paper_default().unwrap();
        let stage_target = ring.stage_delay(Volts(1.5), Volts(0.45));
        let unit = ring.stage_load().0;
        let (gates, depth) = (40usize, 12usize);
        let model = CriticalPathModel::new(
            Micrometers(2.0),
            Farads(depth as f64 * 3.0 * unit),
            Farads(gates as f64 * 3.0 * unit),
            gates,
        )
        .unwrap();
        // Same per-unit-load delay budget, so the iso-delay locus is the
        // ring's and any optimum shift is purely the energy ratio.
        let path_target = Seconds(stage_target.0 * depth as f64 * 3.0);
        let ring_opt = FixedThroughputOptimizer::new(ring, stage_target, 1.0).unwrap();
        let path_opt =
            FixedThroughputOptimizer::for_critical_path(model, path_target, 1.0).unwrap();
        let v_r = ring_opt.iso_delay_supply(Volts(0.3)).unwrap();
        let v_p = path_opt.iso_delay_supply(Volts(0.3)).unwrap();
        assert!((v_r.0 - v_p.0).abs() < 1e-3, "same locus: {v_r} vs {v_p}");
        let t_op = Seconds(1e-6);
        let r = ring_opt.optimum(t_op).unwrap();
        let c = path_opt.optimum(t_op).unwrap();
        assert!(c.vt.0 < r.vt.0 - 0.005, "circuit {} vs ring {}", c.vt, r.vt);
        assert!(c.vdd.0 < r.vdd.0, "circuit {} vs ring {}", c.vdd, r.vdd);
    }
}
