//! End-to-end design power estimation.
//!
//! The paper's methodology (§5) flows: profile the application to get per-
//! block `fga`/`bga` → simulate the blocks at switch level to get `α` →
//! feed the activity triples and a technology choice into the energy
//! models. [`DesignEstimator`] is that final stage: a set of blocks, one
//! technology and operating point, and a per-block / whole-design power
//! report that makes leakage explicit (the paper's complaint about
//! then-current estimators being leakage-blind).

use crate::activity::ActivityVars;
use crate::energy::{BlockParams, BurstEnergyModel, EnergyBreakdown};
use crate::error::CoreError;
use lowvolt_device::technology::Technology;
use lowvolt_device::units::{Joules, Watts};

/// Power estimate for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEstimate {
    /// Block name.
    pub name: String,
    /// The activity used.
    pub activity: ActivityVars,
    /// Per-cycle energy decomposition.
    pub energy: EnergyBreakdown,
    /// Average power at the model's clock.
    pub power: Watts,
}

/// Whole-design estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEstimate {
    /// Per-block results.
    pub blocks: Vec<BlockEstimate>,
    /// Total average power.
    pub total_power: Watts,
    /// Total per-cycle energy.
    pub total_energy_per_cycle: Joules,
    /// Leakage share of total power (active + standby leakage).
    pub leakage_fraction: f64,
}

/// A design under estimation: blocks with activities, one technology.
#[derive(Debug, Clone)]
pub struct DesignEstimator {
    model: BurstEnergyModel,
    technology: Technology,
    blocks: Vec<(BlockParams, ActivityVars)>,
}

impl DesignEstimator {
    /// Creates an estimator at an operating point for a technology.
    #[must_use]
    pub fn new(model: BurstEnergyModel, technology: Technology) -> DesignEstimator {
        DesignEstimator {
            model,
            technology,
            blocks: Vec::new(),
        }
    }

    /// Adds a block (builder style).
    #[must_use]
    pub fn with_block(mut self, params: BlockParams, activity: ActivityVars) -> DesignEstimator {
        self.blocks.push((params, activity));
        self
    }

    /// Number of blocks added.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Runs the estimate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if no blocks were added.
    pub fn estimate(&self) -> Result<DesignEstimate, CoreError> {
        if self.blocks.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "blocks",
                value: 0.0,
                constraint: "estimate needs at least one block",
            });
        }
        let t_cyc = self.model.cycle_time();
        let mut blocks = Vec::with_capacity(self.blocks.len());
        let mut total_energy = 0.0;
        let mut total_leak = 0.0;
        for (params, activity) in &self.blocks {
            let energy = self.model.breakdown(&self.technology, params, *activity);
            total_energy += energy.total().0;
            total_leak += energy.leak_active.0 + energy.leak_standby.0;
            blocks.push(BlockEstimate {
                name: params.name.clone(),
                activity: *activity,
                energy,
                power: energy.total() / t_cyc,
            });
        }
        Ok(DesignEstimate {
            blocks,
            total_power: Joules(total_energy) / t_cyc,
            total_energy_per_cycle: Joules(total_energy),
            leakage_fraction: if total_energy == 0.0 {
                0.0
            } else {
                total_leak / total_energy
            },
        })
    }

    /// Re-estimates the same design on a different technology — the
    /// paper's "overall methodology to evaluate trade-offs between
    /// various low-power technologies".
    ///
    /// # Errors
    ///
    /// Same as [`DesignEstimator::estimate`].
    pub fn estimate_on(&self, technology: &Technology) -> Result<DesignEstimate, CoreError> {
        DesignEstimator {
            model: self.model,
            technology: technology.clone(),
            blocks: self.blocks.clone(),
        }
        .estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_device::soias::SoiasDevice;
    use lowvolt_device::units::{Hertz, Volts};

    fn estimator() -> DesignEstimator {
        let model = BurstEnergyModel::new(Volts(1.0), Hertz(20e6)).unwrap();
        let tech = Technology::soi_fixed_vt(Volts(0.084));
        DesignEstimator::new(model, tech)
            .with_block(
                BlockParams::adder_8bit().unwrap(),
                ActivityVars::new(0.697, 0.023, 0.5).unwrap(),
            )
            .with_block(
                BlockParams::shifter_8bit().unwrap(),
                ActivityVars::new(0.109, 0.087, 0.5).unwrap(),
            )
            .with_block(
                BlockParams::multiplier_8x8().unwrap(),
                ActivityVars::new(0.0083, 0.0083, 0.4).unwrap(),
            )
    }

    #[test]
    fn totals_are_consistent() {
        let e = estimator().estimate().unwrap();
        assert_eq!(e.blocks.len(), 3);
        let sum: f64 = e.blocks.iter().map(|b| b.power.0).sum();
        assert!((sum - e.total_power.0).abs() / e.total_power.0 < 1e-9);
        assert!(e.leakage_fraction > 0.0 && e.leakage_fraction < 1.0);
    }

    #[test]
    fn empty_design_rejected() {
        let model = BurstEnergyModel::new(Volts(1.0), Hertz(20e6)).unwrap();
        let tech = Technology::soi_fixed_vt(Volts(0.2));
        assert!(DesignEstimator::new(model, tech).estimate().is_err());
    }

    #[test]
    fn technology_comparison_flow() {
        let est = estimator();
        let soi = est.estimate().unwrap();
        let soias = est
            .estimate_on(&Technology::soias(SoiasDevice::paper_fig6(), Volts(3.0)).unwrap())
            .unwrap();
        // For this mostly-idle block mix, SOIAS cuts total power.
        assert!(soias.total_power.0 < soi.total_power.0);
        // And the leakage share drops dramatically.
        assert!(soias.leakage_fraction < soi.leakage_fraction);
    }

    #[test]
    fn leakage_visible_for_idle_blocks() {
        // A leakage-blind estimator would assign the idle multiplier
        // almost no power; the paper's point is that it still leaks.
        let e = estimator().estimate().unwrap();
        let mult = e.blocks.iter().find(|b| b.name == "multiplier").unwrap();
        let leak = mult.energy.leak_active.0 + mult.energy.leak_standby.0;
        assert!(
            leak > mult.energy.switching.0,
            "an idle fixed-low-vt multiplier is leakage-dominated"
        );
    }
}
