//! Event-driven shutdown policies.
//!
//! §4 frames the opportunity: "An obvious mechanism for saving energy is
//! to shut down parts of the system hardware that are idle … analyzing
//! several traces obtained from real X sessions indicates that the
//! processor spends more than 95 % of its time in the off state
//! suggesting large energy reductions under ideal shutdown conditions"
//! (ref \[4\], *Predictive System Shutdown*). This module evaluates the
//! classic policy ladder — always-on, fixed timeout, predictive, oracle —
//! over busy/idle interval traces.

use lowvolt_device::units::{Joules, Seconds, Watts};

/// One interval of a session trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interval {
    /// Busy for the given duration.
    Busy(Seconds),
    /// Idle for the given duration.
    Idle(Seconds),
}

/// A busy/idle session trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    intervals: Vec<Interval>,
}

impl SessionTrace {
    /// Builds a trace from explicit intervals.
    #[must_use]
    pub fn new(intervals: Vec<Interval>) -> SessionTrace {
        SessionTrace { intervals }
    }

    /// Generates a pseudo-random bursty trace: exponential-ish busy and
    /// idle durations around the given means (deterministic per seed).
    ///
    /// # Panics
    ///
    /// Panics if either mean is not positive or `pairs` is zero.
    #[must_use]
    pub fn bursty(pairs: usize, mean_busy: Seconds, mean_idle: Seconds, seed: u64) -> SessionTrace {
        assert!(pairs > 0, "need at least one busy/idle pair");
        assert!(
            mean_busy.0 > 0.0 && mean_idle.0 > 0.0,
            "interval means must be positive"
        );
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut exp = |mean: f64| {
            // SplitMix64 → uniform (0,1] → exponential.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let u = (z >> 11) as f64 / (1u64 << 53) as f64;
            -mean * (1.0 - u).max(1e-16).ln()
        };
        let mut intervals = Vec::with_capacity(2 * pairs);
        for _ in 0..pairs {
            intervals.push(Interval::Busy(Seconds(exp(mean_busy.0))));
            intervals.push(Interval::Idle(Seconds(exp(mean_idle.0))));
        }
        SessionTrace { intervals }
    }

    /// The intervals.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Total trace duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        Seconds(
            self.intervals
                .iter()
                .map(|i| match i {
                    Interval::Busy(d) | Interval::Idle(d) => d.0,
                })
                .sum(),
        )
    }

    /// Fraction of time idle.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        let idle: f64 = self
            .intervals
            .iter()
            .map(|i| match i {
                Interval::Idle(d) => d.0,
                Interval::Busy(_) => 0.0,
            })
            .sum();
        let total = self.duration().0;
        if total == 0.0 {
            0.0
        } else {
            idle / total
        }
    }
}

/// Power/energy parameters of the managed hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerStates {
    /// Power while computing.
    pub active: Watts,
    /// Power while idle but not shut down (clock gated, still leaking at
    /// low V_T).
    pub idle: Watts,
    /// Power while shut down (high-V_T standby leakage).
    pub sleep: Watts,
    /// Energy cost of one shutdown/wake round trip (state save, control
    /// swing, pipeline refill).
    pub wake_energy: Joules,
}

impl PowerStates {
    /// The idle duration above which sleeping pays:
    /// `t_be = E_wake / (P_idle − P_sleep)`.
    ///
    /// # Panics
    ///
    /// Panics if `sleep >= idle` (sleeping would never pay).
    #[must_use]
    pub fn breakeven(&self) -> Seconds {
        assert!(
            self.sleep.0 < self.idle.0,
            "sleep power must be below idle power"
        );
        Seconds(self.wake_energy.0 / (self.idle.0 - self.sleep.0))
    }
}

/// A shutdown policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Never shut down.
    AlwaysOn,
    /// Shut down after the idle period has lasted this long.
    Timeout(Seconds),
    /// Predict each idle period as an exponential average of history
    /// (weight = 0.5) and shut down immediately when the prediction
    /// exceeds breakeven (ref \[4\]'s approach).
    Predictive,
    /// Clairvoyant: shut down exactly when the interval is longer than
    /// breakeven (the paper's "ideal shutdown conditions").
    Oracle,
}

impl Policy {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Policy::AlwaysOn => "always-on".into(),
            Policy::Timeout(t) => format!("timeout({:.0e} s)", t.0),
            Policy::Predictive => "predictive".into(),
            Policy::Oracle => "oracle".into(),
        }
    }
}

/// Result of evaluating a policy over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShutdownReport {
    /// Total energy over the trace.
    pub energy: Joules,
    /// Number of shutdowns taken.
    pub shutdowns: usize,
    /// Fraction of idle time actually spent asleep.
    pub sleep_fraction: f64,
}

/// Evaluates a policy on a trace.
#[must_use]
pub fn evaluate(trace: &SessionTrace, states: &PowerStates, policy: Policy) -> ShutdownReport {
    let breakeven = states.breakeven();
    let mut energy = 0.0;
    let mut shutdowns = 0usize;
    let mut slept = 0.0f64;
    let mut idle_total = 0.0f64;
    let mut predicted = breakeven.0; // prior guess: exactly breakeven
    for interval in trace.intervals() {
        match *interval {
            Interval::Busy(d) => energy += states.active.0 * d.0,
            Interval::Idle(d) => {
                idle_total += d.0;
                let (on_time, sleep_time, slept_now) = match policy {
                    Policy::AlwaysOn => (d.0, 0.0, false),
                    Policy::Timeout(t) => {
                        if d.0 > t.0 {
                            (t.0, d.0 - t.0, true)
                        } else {
                            (d.0, 0.0, false)
                        }
                    }
                    Policy::Predictive => {
                        let sleep_now = predicted > breakeven.0;
                        predicted = 0.5 * predicted + 0.5 * d.0;
                        if sleep_now {
                            (0.0, d.0, true)
                        } else {
                            (d.0, 0.0, false)
                        }
                    }
                    Policy::Oracle => {
                        if d.0 > breakeven.0 {
                            (0.0, d.0, true)
                        } else {
                            (d.0, 0.0, false)
                        }
                    }
                };
                energy += states.idle.0 * on_time + states.sleep.0 * sleep_time;
                if slept_now {
                    energy += states.wake_energy.0;
                    shutdowns += 1;
                    slept += sleep_time;
                }
            }
        }
    }
    ShutdownReport {
        energy: Joules(energy),
        shutdowns,
        sleep_fraction: if idle_total == 0.0 {
            0.0
        } else {
            slept / idle_total
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states() -> PowerStates {
        PowerStates {
            active: Watts(100e-3),
            idle: Watts(10e-3),
            sleep: Watts(10e-6),
            wake_energy: Joules(1e-3),
        }
    }

    fn x_trace() -> SessionTrace {
        // >95 % idle, like the paper's X sessions.
        SessionTrace::bursty(200, Seconds(0.02), Seconds(0.5), 42)
    }

    #[test]
    fn trace_statistics() {
        let t = x_trace();
        assert!(t.idle_fraction() > 0.9, "idle = {}", t.idle_fraction());
        assert!(t.duration().0 > 0.0);
        assert_eq!(t.intervals().len(), 400);
        // Deterministic per seed.
        assert_eq!(
            t,
            SessionTrace::bursty(200, Seconds(0.02), Seconds(0.5), 42)
        );
    }

    #[test]
    fn breakeven_formula() {
        let s = states();
        let be = s.breakeven();
        assert!((be.0 - 1e-3 / (10e-3 - 10e-6)).abs() < 1e-12);
    }

    #[test]
    fn policy_ladder_ordering() {
        // oracle <= predictive/timeout <= always-on for a bursty trace.
        let t = x_trace();
        let s = states();
        let on = evaluate(&t, &s, Policy::AlwaysOn).energy.0;
        let to = evaluate(&t, &s, Policy::Timeout(Seconds(0.2))).energy.0;
        let pr = evaluate(&t, &s, Policy::Predictive).energy.0;
        let or = evaluate(&t, &s, Policy::Oracle).energy.0;
        assert!(or <= to && or <= pr && or <= on, "oracle is a lower bound");
        assert!(to < on, "timeout must beat always-on on a >95% idle trace");
        assert!(pr < on, "predictive must beat always-on");
        // With long idle gaps the oracle removes almost all idle energy.
        assert!(or < 0.5 * on, "large reduction under ideal shutdown");
    }

    #[test]
    fn always_on_never_sleeps() {
        let r = evaluate(&x_trace(), &states(), Policy::AlwaysOn);
        assert_eq!(r.shutdowns, 0);
        assert_eq!(r.sleep_fraction, 0.0);
    }

    #[test]
    fn oracle_skips_short_gaps() {
        let s = states();
        let short = s.breakeven().0 * 0.5;
        let long = s.breakeven().0 * 10.0;
        let t = SessionTrace::new(vec![
            Interval::Busy(Seconds(0.01)),
            Interval::Idle(Seconds(short)),
            Interval::Busy(Seconds(0.01)),
            Interval::Idle(Seconds(long)),
        ]);
        let r = evaluate(&t, &s, Policy::Oracle);
        assert_eq!(r.shutdowns, 1, "only the long gap is worth sleeping");
    }

    #[test]
    fn timeout_pays_the_tail() {
        let s = states();
        let t = SessionTrace::new(vec![
            Interval::Busy(Seconds(0.01)),
            Interval::Idle(Seconds(1.0)),
        ]);
        let to = evaluate(&t, &s, Policy::Timeout(Seconds(0.1)));
        let or = evaluate(&t, &s, Policy::Oracle);
        assert!(to.energy.0 > or.energy.0, "timeout wastes the first 100 ms");
        assert_eq!(to.shutdowns, 1);
        assert!(to.sleep_fraction > 0.85);
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::AlwaysOn.name(), "always-on");
        assert!(Policy::Timeout(Seconds(1e-3)).name().contains("timeout"));
        assert_eq!(Policy::Oracle.name(), "oracle");
    }

    #[test]
    #[should_panic(expected = "sleep power must be below idle power")]
    fn degenerate_power_states_rejected() {
        let s = PowerStates {
            active: Watts(1.0),
            idle: Watts(0.1),
            sleep: Watts(0.2),
            wake_energy: Joules(1e-3),
        };
        let _ = s.breakeven();
    }
}
