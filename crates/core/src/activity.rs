//! The §5.1 activity variables.
//!
//! Three quantities characterise how a block consumes energy in a bursty
//! system (paper Fig. 7):
//!
//! - `fga` — "the fraction of time the module … is active",
//! - `bga` — "the probability of a power consuming transition on the
//!   backgate" (one per run of consecutive active cycles), and
//! - `α` — "the individual node transition activity (assuming the module
//!   is always turned on) which is a strong function of signal
//!   statistics".

use crate::error::CoreError;
use lowvolt_isa::profile::UnitStats;

/// A validated `(fga, bga, α)` triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityVars {
    /// Fraction of cycles the block is active.
    pub fga: f64,
    /// Standby-control transitions per cycle (run starts).
    pub bga: f64,
    /// Node transition activity while active.
    pub alpha: f64,
}

impl ActivityVars {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidActivity`] unless
    /// `0 ≤ bga ≤ fga ≤ 1` and `α ≥ 0` (glitching can push `α` past 1, so
    /// no upper bound there).
    pub fn new(fga: f64, bga: f64, alpha: f64) -> Result<ActivityVars, CoreError> {
        if !(0.0..=1.0).contains(&fga) {
            return Err(CoreError::InvalidActivity {
                name: "fga",
                value: fga,
                constraint: "must lie in [0, 1]",
            });
        }
        if bga < 0.0 || bga > fga + 1e-12 {
            return Err(CoreError::InvalidActivity {
                name: "bga",
                value: bga,
                constraint: "must lie in [0, fga] (a run needs an active cycle)",
            });
        }
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(CoreError::InvalidActivity {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and non-negative",
            });
        }
        Ok(ActivityVars { fga, bga, alpha })
    }

    /// A continuously-active block (`fga = 1`), whose standby control
    /// switches once and never again (`bga ≈ 0`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidActivity`] for a bad `alpha`.
    pub fn always_on(alpha: f64) -> Result<ActivityVars, CoreError> {
        ActivityVars::new(1.0, 0.0, alpha)
    }

    /// Builds the triple from an instruction-profiler unit report plus a
    /// circuit-level `α` — the paper's complete tool flow (§5.3): ATOM
    /// supplies `fga`/`bga`, the switch-level simulator supplies `α`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidActivity`] if the combination violates
    /// the invariants (it cannot for genuine profiler output).
    pub fn from_profile(stats: &UnitStats, alpha: f64) -> Result<ActivityVars, CoreError> {
        ActivityVars::new(stats.fga, stats.bga, alpha)
    }

    /// Scales the block activity by a system duty cycle: a block used
    /// `fga` of the time inside bursts that occupy `duty` of all cycles
    /// has system-level activity `duty·fga` (and proportionally scaled
    /// run rate).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidActivity`] if `duty` is outside
    /// `[0, 1]`.
    pub fn scaled_by_duty(&self, duty: f64) -> Result<ActivityVars, CoreError> {
        if !(0.0..=1.0).contains(&duty) {
            return Err(CoreError::InvalidActivity {
                name: "duty",
                value: duty,
                constraint: "must lie in [0, 1]",
            });
        }
        ActivityVars::new(self.fga * duty, self.bga * duty, self.alpha)
    }
}

impl std::fmt::Display for ActivityVars {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fga={:.4}, bga={:.4}, alpha={:.4}",
            self.fga, self.bga, self.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bounds() {
        assert!(ActivityVars::new(0.5, 0.1, 0.3).is_ok());
        assert!(ActivityVars::new(1.5, 0.1, 0.3).is_err());
        assert!(ActivityVars::new(0.5, 0.6, 0.3).is_err(), "bga > fga");
        assert!(ActivityVars::new(0.5, -0.1, 0.3).is_err());
        assert!(ActivityVars::new(0.5, 0.1, -1.0).is_err());
        assert!(ActivityVars::new(0.5, 0.1, f64::NAN).is_err());
        // Glitching α above 1 is legitimate.
        assert!(ActivityVars::new(0.5, 0.1, 1.8).is_ok());
    }

    #[test]
    fn always_on_has_unit_fga() {
        let a = ActivityVars::always_on(0.4).unwrap();
        assert_eq!(a.fga, 1.0);
        assert_eq!(a.bga, 0.0);
    }

    #[test]
    fn duty_scaling() {
        let a = ActivityVars::new(0.8, 0.1, 0.5).unwrap();
        let s = a.scaled_by_duty(0.25).unwrap();
        assert!((s.fga - 0.2).abs() < 1e-12);
        assert!((s.bga - 0.025).abs() < 1e-12);
        assert_eq!(s.alpha, 0.5);
        assert!(a.scaled_by_duty(2.0).is_err());
    }

    #[test]
    fn from_profile_roundtrips() {
        let stats = UnitStats {
            unit: lowvolt_isa::FunctionalUnit::Adder,
            uses: 697,
            runs: 23,
            fga: 0.697,
            bga: 0.023,
        };
        let a = ActivityVars::from_profile(&stats, 0.5).unwrap();
        assert_eq!(a.fga, 0.697);
        assert_eq!(a.bga, 0.023);
    }

    #[test]
    fn display_formats() {
        let a = ActivityVars::new(0.5, 0.1, 0.3).unwrap();
        assert!(a.to_string().contains("fga=0.5000"));
    }
}
