//! Error type for the CAD layer.

use std::error::Error;
use std::fmt;

/// Error returned by model construction and optimisation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An activity variable is outside its valid range.
    InvalidActivity {
        /// Which variable.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A model parameter is outside its valid range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An optimisation found no feasible point.
    Infeasible {
        /// What was being optimised.
        what: &'static str,
    },
    /// A device-layer error bubbled up.
    Device(lowvolt_device::DeviceError),
    /// A circuit-layer error bubbled up.
    Circuit(lowvolt_circuit::CircuitError),
    /// An energy computation produced a non-finite or negative value —
    /// the checked-numerics guard at the device/core boundary.
    NonPhysicalEnergy {
        /// Which energy term.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parallel sweep's work item failed at the execution layer: it
    /// panicked on every attempt or exhausted its deadline. The sweep
    /// degrades to this typed error instead of propagating the panic.
    Worker {
        /// Rendered [`lowvolt_exec::ExecError`].
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidActivity {
                name,
                value,
                constraint,
            } => write!(f, "invalid activity {name} = {value}: {constraint}"),
            CoreError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            CoreError::Infeasible { what } => write!(f, "no feasible point for {what}"),
            CoreError::Device(e) => write!(f, "device model error: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit error: {e}"),
            CoreError::NonPhysicalEnergy { what, value } => {
                write!(
                    f,
                    "non-physical {what} = {value}: energies must be finite and non-negative"
                )
            }
            CoreError::Worker { detail } => write!(f, "sweep worker failed: {detail}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Device(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lowvolt_device::DeviceError> for CoreError {
    fn from(e: lowvolt_device::DeviceError) -> CoreError {
        CoreError::Device(e)
    }
}

impl From<lowvolt_circuit::CircuitError> for CoreError {
    fn from(e: lowvolt_circuit::CircuitError) -> CoreError {
        CoreError::Circuit(e)
    }
}

impl From<lowvolt_exec::ExecError> for CoreError {
    fn from(e: lowvolt_exec::ExecError) -> CoreError {
        CoreError::Worker {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidActivity {
            name: "fga",
            value: 1.5,
            constraint: "must lie in [0, 1]",
        };
        assert!(e.to_string().contains("fga"));
        let d = CoreError::from(lowvolt_device::DeviceError::SolveFailed { what: "vdd" });
        assert!(d.to_string().contains("vdd"));
        assert!(Error::source(&d).is_some());
        assert!(Error::source(&e).is_none());
        let c = CoreError::from(lowvolt_circuit::CircuitError::UnknownNode(3));
        assert!(c.to_string().contains("circuit"));
        assert!(Error::source(&c).is_some());
        let n = CoreError::NonPhysicalEnergy {
            what: "switching energy",
            value: f64::NAN,
        };
        assert!(n.to_string().contains("switching energy"));
    }
}
