//! Error type for the CAD layer.

use std::error::Error;
use std::fmt;

/// Error returned by model construction and optimisation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An activity variable is outside its valid range.
    InvalidActivity {
        /// Which variable.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A model parameter is outside its valid range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An optimisation found no feasible point.
    Infeasible {
        /// What was being optimised.
        what: &'static str,
    },
    /// A device-layer error bubbled up.
    Device(lowvolt_device::DeviceError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidActivity {
                name,
                value,
                constraint,
            } => write!(f, "invalid activity {name} = {value}: {constraint}"),
            CoreError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            CoreError::Infeasible { what } => write!(f, "no feasible point for {what}"),
            CoreError::Device(e) => write!(f, "device model error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lowvolt_device::DeviceError> for CoreError {
    fn from(e: lowvolt_device::DeviceError) -> CoreError {
        CoreError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidActivity {
            name: "fga",
            value: 1.5,
            constraint: "must lie in [0, 1]",
        };
        assert!(e.to_string().contains("fga"));
        let d = CoreError::from(lowvolt_device::DeviceError::SolveFailed { what: "vdd" });
        assert!(d.to_string().contains("vdd"));
        assert!(Error::source(&d).is_some());
        assert!(Error::source(&e).is_none());
    }
}
