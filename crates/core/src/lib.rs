#![warn(missing_docs)]

//! # lowvolt-core
//!
//! The paper's primary contribution as a library: CAD models and
//! optimisers for low-voltage digital system design.
//!
//! - [`power`] — the three CMOS power components of §2 (Eq. 1 switching,
//!   short-circuit, sub-threshold leakage).
//! - [`activity`] — the §5.1 activity variables `fga`, `bga`, `α` and
//!   their extraction from profiler and trace outputs.
//! - [`energy`] — the §5.2 burst-mode per-cycle energy models: `E_SOI`
//!   (Eq. 3), `E_SOIAS` (Eq. 4), and their generalisation to MTCMOS and
//!   substrate-biased technologies.
//! - [`optimizer`] — §3: iso-delay `V_DD(V_T)` curves and the
//!   fixed-throughput energy optimum (Figs. 3–4).
//! - [`tradeoff`] — §5.4: the `log(E_SOIAS/E_SOI)` surface over
//!   `(fga, bga)`, its breakeven contour, and application operating
//!   points (Fig. 10).
//! - [`granularity`] — §5.2's V_T-control granularity question
//!   (transistor vs block vs chip).
//! - [`mtcmos`] — sleep-transistor sizing for the multi-threshold option.
//! - [`shutdown`] — event-driven shutdown policies for the §4 scenario.
//! - [`estimator`] — an end-to-end design power estimator combining all
//!   of the above.
//! - [`report`] — plain-text tables and CSV emission for the experiment
//!   harness.
//!
//! # Example: the Fig. 4 optimum
//!
//! ```
//! use lowvolt_core::optimizer::FixedThroughputOptimizer;
//! use lowvolt_device::units::{Seconds, Volts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let opt = FixedThroughputOptimizer::paper_ring(Seconds::from_nanos(2.0))?;
//! let best = opt.optimum(Seconds(1e-6))?; // 1 MHz throughput
//! // The optimum supply is far below the 3 V convention of the era:
//! assert!(best.vdd.0 < 1.0);
//! assert!(best.vt.0 > 0.0 && best.vt.0 < 0.5);
//! # Ok(())
//! # }
//! ```

pub mod activity;
pub mod energy;
pub mod error;
/// The parallel execution engine (re-exported from `lowvolt-exec`, the
/// bottom of the crate stack, so the circuit layer can share it):
/// [`exec::ExecPolicy`] selects a worker count
/// (`LOWVOLT_THREADS`-aware), [`exec::parallel_map`] runs a chunked
/// scoped-thread map with deterministic, input-ordered results. The
/// optimizer grid, sensitivity analysis, and tradeoff surface all accept
/// a policy via their `*_with` constructors.
pub mod exec {
    pub use lowvolt_exec::*;
}
/// The observability layer (re-exported from `lowvolt-obs`): the
/// [`obs::Recorder`] trait with its zero-cost [`obs::NoopRecorder`]
/// default, the [`obs::MetricsRegistry`] counter/timer store, and the
/// hand-rolled JSON metrics report. Subsystems across the workspace
/// accept a `&dyn Recorder` via their `*_recorded` entry points.
pub mod obs {
    pub use lowvolt_obs::*;
}
pub mod estimator;
pub mod granularity;
pub mod mtcmos;
pub mod optimizer;
pub mod power;
pub mod report;
pub mod scaling;
pub mod sensitivity;
pub mod shutdown;
pub mod tradeoff;

pub use activity::ActivityVars;
pub use energy::{BlockParams, BurstEnergyModel};
pub use error::CoreError;
