//! MTCMOS sleep-transistor sizing.
//!
//! In the multi-threshold option (§4, ref \[6\]) "the logic circuits are
//! implemented using low threshold devices and the low-V_T transistors are
//! gated using high threshold switches which are in series. … circuits
//! resume normal low threshold high speed operation, assuming proper
//! device sizing." This module quantifies that *proper sizing*: the sleep
//! device's linear-region resistance drops the virtual rail, which slows
//! the low-V_T logic; widening it restores speed at the cost of area and
//! sleep-control energy.

use crate::error::CoreError;
use lowvolt_device::on_current::AlphaPowerLaw;
use lowvolt_device::units::{Amps, Micrometers, Volts};

/// A sized sleep transistor and its consequences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepTransistorDesign {
    /// Chosen sleep-device width.
    pub width: Micrometers,
    /// Virtual-rail droop at peak current.
    pub rail_droop: Volts,
    /// Fractional delay penalty of the gated logic.
    pub delay_penalty: f64,
}

/// Sizing model: block peak current, supply, and the two thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct MtcmosSizer {
    /// Peak switching current drawn by the gated block.
    peak_current: Amps,
    /// Supply voltage.
    vdd: Volts,
    /// Logic (low) threshold.
    low_vt: Volts,
    /// Sleep-device (high) threshold.
    high_vt: Volts,
    /// Per-width linear-region conductance model of the sleep device.
    drive: AlphaPowerLaw,
}

impl MtcmosSizer {
    /// Creates a sizer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the current is not
    /// positive, `high_vt ≤ low_vt`, or `vdd ≤ high_vt` (the sleep device
    /// could not turn on).
    pub fn new(
        peak_current: Amps,
        vdd: Volts,
        low_vt: Volts,
        high_vt: Volts,
    ) -> Result<MtcmosSizer, CoreError> {
        if peak_current.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "peak_current",
                value: peak_current.0,
                constraint: "must be positive",
            });
        }
        if high_vt.0 <= low_vt.0 {
            return Err(CoreError::InvalidParameter {
                name: "high_vt",
                value: high_vt.0,
                constraint: "must exceed low_vt",
            });
        }
        if vdd.0 <= high_vt.0 {
            return Err(CoreError::InvalidParameter {
                name: "vdd",
                value: vdd.0,
                constraint: "must exceed high_vt to turn the sleep device on",
            });
        }
        Ok(MtcmosSizer {
            peak_current,
            vdd,
            low_vt,
            high_vt,
            drive: AlphaPowerLaw::with_width(Micrometers(1.0)),
        })
    }

    /// Virtual-rail droop for a given sleep width: the `V_ds` at which a
    /// linear-region sleep device of that width carries the peak current.
    ///
    /// Solved by bisection on the monotone triode I–V curve. If even the
    /// saturated device cannot pass the current the virtual rail has no
    /// equilibrium below `V_dsat` — it collapses, and the full supply is
    /// reported as droop.
    #[must_use]
    pub fn rail_droop(&self, width: Micrometers) -> Volts {
        let per_um = |vds: f64| {
            self.drive
                .drain_current(self.vdd, Volts(vds), self.high_vt)
                .0
        };
        let need = self.peak_current.0 / width.0.max(1e-12);
        let vdsat = self.drive.saturation_voltage(self.vdd, self.high_vt);
        if per_um(vdsat.0) <= need {
            return self.vdd;
        }
        let (mut lo, mut hi) = (0.0f64, vdsat.0);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if per_um(mid) < need {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Volts(0.5 * (lo + hi))
    }

    /// Delay penalty of the gated logic for a given sleep width: the
    /// alpha-power delay with the effective supply reduced by the droop,
    /// relative to an ungated block.
    #[must_use]
    pub fn delay_penalty(&self, width: Micrometers) -> f64 {
        let droop = self.rail_droop(width);
        let alpha = self.drive.alpha();
        let nominal = self.vdd.0 / (self.vdd.0 - self.low_vt.0).powf(alpha);
        let v_eff = self.vdd.0 - droop.0;
        if v_eff <= self.low_vt.0 {
            return f64::INFINITY;
        }
        let gated = v_eff / (v_eff - self.low_vt.0).powf(alpha);
        gated / nominal - 1.0
    }

    /// Sizes the sleep transistor for a maximum delay penalty, by
    /// doubling then bisecting on the monotone penalty-vs-width curve.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if the penalty target is not
    /// positive or cannot be met below 10⁶ µm of width.
    pub fn size_for_penalty(&self, max_penalty: f64) -> Result<SleepTransistorDesign, CoreError> {
        if max_penalty <= 0.0 {
            return Err(CoreError::Infeasible {
                what: "sleep transistor sizing (penalty must be positive)",
            });
        }
        let mut hi = 1.0f64;
        while self.delay_penalty(Micrometers(hi)) > max_penalty {
            hi *= 2.0;
            if hi > 1e6 {
                return Err(CoreError::Infeasible {
                    what: "sleep transistor sizing",
                });
            }
        }
        let mut lo = hi / 2.0;
        if hi <= 1.0 {
            lo = 1e-3;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.delay_penalty(Micrometers(mid)) > max_penalty {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let width = Micrometers(hi);
        Ok(SleepTransistorDesign {
            width,
            rail_droop: self.rail_droop(width),
            delay_penalty: self.delay_penalty(width),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizer() -> MtcmosSizer {
        MtcmosSizer::new(Amps(2e-3), Volts(1.0), Volts(0.2), Volts(0.55)).expect("valid")
    }

    #[test]
    fn constructor_validates() {
        assert!(MtcmosSizer::new(Amps(0.0), Volts(1.0), Volts(0.2), Volts(0.55)).is_err());
        assert!(MtcmosSizer::new(Amps(1e-3), Volts(1.0), Volts(0.6), Volts(0.55)).is_err());
        assert!(MtcmosSizer::new(Amps(1e-3), Volts(0.5), Volts(0.2), Volts(0.55)).is_err());
    }

    #[test]
    fn wider_sleep_device_droops_less() {
        let s = sizer();
        let narrow = s.rail_droop(Micrometers(10.0));
        let wide = s.rail_droop(Micrometers(100.0));
        assert!(wide.0 < narrow.0);
        assert!(wide.0 > 0.0);
    }

    #[test]
    fn penalty_monotone_in_width() {
        let s = sizer();
        let p1 = s.delay_penalty(Micrometers(20.0));
        let p2 = s.delay_penalty(Micrometers(80.0));
        assert!(p2 < p1);
    }

    #[test]
    fn sizing_meets_target() {
        let s = sizer();
        for target in [0.02, 0.05, 0.10] {
            let d = s.size_for_penalty(target).expect("feasible");
            assert!(
                d.delay_penalty <= target * 1.001,
                "penalty {}",
                d.delay_penalty
            );
            // Don't waste area: the target should be close to met.
            assert!(d.delay_penalty > target * 0.5, "oversized at {target}");
        }
    }

    #[test]
    fn tighter_penalty_needs_wider_device() {
        let s = sizer();
        let loose = s.size_for_penalty(0.10).unwrap();
        let tight = s.size_for_penalty(0.02).unwrap();
        assert!(tight.width.0 > loose.width.0);
    }

    #[test]
    fn undersized_width_penalty_is_infinite_or_large() {
        // A sliver of a sleep device cannot carry milliamps.
        let s = sizer();
        let p = s.delay_penalty(Micrometers(0.1));
        assert!(p > 1.0 || p.is_infinite());
        assert!(s.size_for_penalty(-0.1).is_err());
    }
}
