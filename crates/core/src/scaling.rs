//! Architectural voltage scaling: parallelism traded for supply voltage.
//!
//! The paper's introduction cites "an architectural voltage scaling
//! strategy which trades off silicon area for lower power consumption"
//! (ref \[1\]): duplicate a datapath N ways, clock each copy N× slower,
//! and the relaxed delay target lets the supply drop — switching energy
//! falls as `V_DD²`. This module adds what the 1996 paper insists on:
//! the *leakage* of N copies integrates over the lengthened per-unit
//! cycle, so with low-V_T devices the benefit saturates and reverses at
//! finite N.

use crate::error::CoreError;
use lowvolt_circuit::ring::RingOscillator;
use lowvolt_device::units::{Joules, Seconds, Volts};

/// One evaluated parallelism point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelPoint {
    /// Degree of parallelism.
    pub ways: usize,
    /// Supply each way runs at.
    pub vdd: Volts,
    /// Switching energy per operation (including interconnect overhead).
    pub switching: Joules,
    /// Leakage energy per operation across all ways.
    pub leakage: Joules,
}

impl ParallelPoint {
    /// Total energy per operation.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.switching + self.leakage
    }
}

/// The parallel-datapath scaling model.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelScaling {
    ring: RingOscillator,
    /// Threshold voltage of the implementation devices.
    vt: Volts,
    /// Stage-delay budget of the single-unit (N = 1) design.
    base_stage_delay: Seconds,
    /// System throughput period (one result must emerge every `t_op`).
    t_op: Seconds,
    /// Fractional switched-capacitance overhead added per extra way
    /// (routing, distribution, output muxing).
    overhead_per_way: f64,
    /// Ceiling on the usable supply.
    v_max: Volts,
}

/// Default interconnect/muxing overhead per added way (the classic
/// figure from the architecture-driven scaling literature is 10–20 %).
pub const DEFAULT_OVERHEAD_PER_WAY: f64 = 0.15;

impl ParallelScaling {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the base delay or
    /// throughput period is non-positive, or the overhead is negative.
    pub fn new(
        ring: RingOscillator,
        vt: Volts,
        base_stage_delay: Seconds,
        t_op: Seconds,
        overhead_per_way: f64,
    ) -> Result<ParallelScaling, CoreError> {
        if base_stage_delay.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "base_stage_delay",
                value: base_stage_delay.0,
                constraint: "must be positive",
            });
        }
        if t_op.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "t_op",
                value: t_op.0,
                constraint: "must be positive",
            });
        }
        if overhead_per_way < 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "overhead_per_way",
                value: overhead_per_way,
                constraint: "must be non-negative",
            });
        }
        Ok(ParallelScaling {
            ring,
            vt,
            base_stage_delay,
            t_op,
            overhead_per_way,
            v_max: Volts(3.3),
        })
    }

    /// Evaluates an `n`-way parallel implementation: each way gets an
    /// `n×` relaxed delay budget, the supply is re-solved, switching
    /// carries the interconnect overhead, and all `n` ways leak for the
    /// full operation period.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `n = 0` or
    /// [`CoreError::Device`] if the relaxed target is still infeasible.
    pub fn evaluate(&self, n: usize) -> Result<ParallelPoint, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidParameter {
                name: "ways",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        let relaxed = Seconds(self.base_stage_delay.0 * n as f64);
        let vdd = self
            .ring
            .supply_for_stage_delay(relaxed, self.vt, self.v_max)?;
        let c_op = self.ring.stages() as f64 * self.ring.stage_load().0;
        let overhead = 1.0 + self.overhead_per_way * (n as f64 - 1.0);
        let switching = Joules(c_op * overhead * vdd.0 * vdd.0);
        let leakage = (self.ring.leakage_current(vdd, self.vt) * vdd * self.t_op) * (n as f64);
        Ok(ParallelPoint {
            ways: n,
            vdd,
            switching,
            leakage,
        })
    }

    /// Sweeps 1..=`max_ways` and returns every feasible point.
    #[must_use]
    pub fn sweep(&self, max_ways: usize) -> Vec<ParallelPoint> {
        (1..=max_ways)
            .filter_map(|n| self.evaluate(n).ok())
            .collect()
    }

    /// The energy-minimising degree of parallelism up to `max_ways`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if no point is feasible.
    pub fn best(&self, max_ways: usize) -> Result<ParallelPoint, CoreError> {
        self.sweep(max_ways)
            .into_iter()
            .min_by(|a, b| a.total().0.total_cmp(&b.total().0))
            .ok_or(CoreError::Infeasible {
                what: "parallel scaling sweep",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A design whose single-unit implementation needs a healthy supply.
    fn model(vt: f64) -> ParallelScaling {
        let ring = RingOscillator::paper_default().unwrap();
        let base = ring.stage_delay(Volts(2.5), Volts(vt));
        ParallelScaling::new(
            ring,
            Volts(vt),
            base,
            Seconds(1e-6),
            DEFAULT_OVERHEAD_PER_WAY,
        )
        .expect("valid model")
    }

    #[test]
    fn constructor_validates() {
        let ring = RingOscillator::paper_default().unwrap();
        assert!(
            ParallelScaling::new(ring.clone(), Volts(0.4), Seconds(0.0), Seconds(1e-6), 0.1)
                .is_err()
        );
        assert!(
            ParallelScaling::new(ring.clone(), Volts(0.4), Seconds(1e-9), Seconds(0.0), 0.1)
                .is_err()
        );
        assert!(
            ParallelScaling::new(ring, Volts(0.4), Seconds(1e-9), Seconds(1e-6), -0.1).is_err()
        );
    }

    #[test]
    fn supply_falls_with_parallelism() {
        let m = model(0.4);
        let p1 = m.evaluate(1).unwrap();
        let p2 = m.evaluate(2).unwrap();
        let p4 = m.evaluate(4).unwrap();
        assert!(p2.vdd.0 < p1.vdd.0);
        assert!(p4.vdd.0 < p2.vdd.0);
        assert!((p1.vdd.0 - 2.5).abs() < 1e-6, "reference point recovered");
    }

    #[test]
    fn two_way_parallelism_saves_energy_at_high_vt() {
        // The classic architecture-driven result: V² wins over the
        // overhead when leakage is negligible (high V_T).
        let m = model(0.5);
        let p1 = m.evaluate(1).unwrap();
        let p2 = m.evaluate(2).unwrap();
        assert!(
            p2.total().0 < 0.7 * p1.total().0,
            "2-way should save >30%: {} vs {}",
            p2.total().0,
            p1.total().0
        );
    }

    #[test]
    fn benefit_saturates_and_reverses() {
        // This paper's addition: leakage of N low-V_T copies eventually
        // wins, so energy vs N is U-shaped for low V_T.
        let m = model(0.15);
        let sweep = m.sweep(32);
        assert!(sweep.len() >= 16);
        let best = m.best(32).unwrap();
        assert!(best.ways > 1, "some parallelism helps");
        assert!(best.ways < 32, "but not unboundedly: best = {}", best.ways);
        let last = sweep.last().unwrap();
        assert!(
            last.total().0 > best.total().0,
            "the tail of the sweep is past the optimum"
        );
        // At the far end leakage dominates switching.
        assert!(last.leakage.0 > last.switching.0);
    }

    #[test]
    fn higher_vt_tolerates_more_parallelism() {
        let lo = model(0.15).best(32).unwrap();
        let hi = model(0.45).best(32).unwrap();
        assert!(
            hi.ways >= lo.ways,
            "low leakage sustains deeper parallelism: {} vs {}",
            hi.ways,
            lo.ways
        );
    }

    #[test]
    fn zero_ways_rejected() {
        assert!(model(0.4).evaluate(0).is_err());
    }
}
