//! Burst-mode per-cycle energy models — the paper's Eqs. 3–4,
//! generalised over [`Technology`].
//!
//! ```text
//! E_SOI   = fga·α·C_fg·V_DD²  +  I_leak(low)·V_DD·t_cyc            (Eq. 3)
//!
//! E_SOIAS = fga·α·C_fg·V_DD²  +  bga·C_bg·V_bg²
//!         + fga·I_leak(low)·V_DD·t_cyc
//!         + (1−fga)·I_leak(high)·V_DD·t_cyc                         (Eq. 4)
//! ```
//!
//! A technology without a standby mode pays Eq. 3's always-on leakage; a
//! technology with one pays Eq. 4's control overhead (`bga·C_ctrl·V_ctrl²`
//! — back-gate, sleep-transistor gate, or well capacitance) plus the
//! two-state leakage mix. The same code therefore evaluates conventional
//! SOI, SOIAS, MTCMOS, and substrate-biased bulk on equal terms.

use crate::activity::ActivityVars;
use crate::error::CoreError;
use lowvolt_circuit::netlist::Netlist;
use lowvolt_device::technology::Technology;
use lowvolt_device::units::{Amps, Farads, Hertz, Joules, Seconds, Volts};

/// Physical parameters of one functional block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockParams {
    /// Block name (for reports).
    pub name: String,
    /// Total front-gate switched capacitance `C_fg` at full node activity
    /// (`α = 1`): the sum of node capacitances that can toggle per cycle.
    pub switched_cap: Farads,
    /// Total MOS gate area, µm² — sets the standby-control capacitance.
    pub gate_area_um2: f64,
    /// Total effective off-device width, µm — sets the leakage scale.
    pub leak_width_um: f64,
}

/// Gate area charged to each logic gate when deriving block parameters
/// from a netlist (two ~0.9 µm² transistor gates).
pub const GATE_AREA_PER_GATE_UM2: f64 = 1.8;

/// Effective leaking width charged to each logic gate (one off-device of
/// the complementary pair, ~1 µm).
pub const LEAK_WIDTH_PER_GATE_UM: f64 = 1.0;

impl BlockParams {
    /// Derives block parameters from a generated netlist: the switched
    /// capacitance is the netlist's total node capacitance, gate area and
    /// leakage width scale with its gate count.
    #[must_use]
    pub fn from_netlist(name: impl Into<String>, netlist: &Netlist) -> BlockParams {
        let gates = netlist.gate_count() as f64;
        BlockParams {
            name: name.into(),
            switched_cap: netlist.total_capacitance(),
            gate_area_um2: gates * GATE_AREA_PER_GATE_UM2,
            leak_width_um: gates * LEAK_WIDTH_PER_GATE_UM,
        }
    }

    /// The paper's example block: an 8-bit ripple-carry adder.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if the generator rejects the
    /// configuration (it never does for the shipped width of 8).
    pub fn adder_8bit() -> Result<BlockParams, CoreError> {
        let mut n = Netlist::new();
        let _ = lowvolt_circuit::adder::ripple_carry_adder(&mut n, 8)?;
        Ok(BlockParams::from_netlist("adder", &n))
    }

    /// An 8-bit barrel shifter block.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if the generator rejects the
    /// configuration (it never does for the shipped width of 8).
    pub fn shifter_8bit() -> Result<BlockParams, CoreError> {
        let mut n = Netlist::new();
        let _ = lowvolt_circuit::shifter::barrel_shifter_right(&mut n, 8)?;
        Ok(BlockParams::from_netlist("shifter", &n))
    }

    /// An 8×8 array multiplier block.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if the generator rejects the
    /// configuration (it never does for the shipped width of 8).
    pub fn multiplier_8x8() -> Result<BlockParams, CoreError> {
        let mut n = Netlist::new();
        let _ = lowvolt_circuit::multiplier::array_multiplier(&mut n, 8)?;
        Ok(BlockParams::from_netlist("multiplier", &n))
    }
}

/// Per-cycle energy decomposition of one block under one technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Front-gate switching energy `fga·α·C_fg·V_DD²`.
    pub switching: Joules,
    /// Standby-control overhead `bga·C_ctrl·V_ctrl²`.
    pub control: Joules,
    /// Leakage while in the active (low-V_T) state.
    pub leak_active: Joules,
    /// Leakage while in the standby (high-V_T) state.
    pub leak_standby: Joules,
}

impl EnergyBreakdown {
    /// Total energy per cycle.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.switching + self.control + self.leak_active + self.leak_standby
    }
}

/// The burst-mode energy model: a supply/clock operating point that
/// evaluates Eq. 3 / Eq. 4 for any technology and block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstEnergyModel {
    vdd: Volts,
    clock: Hertz,
}

impl BurstEnergyModel {
    /// Creates a model at the given supply and clock.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if either is non-positive.
    pub fn new(vdd: Volts, clock: Hertz) -> Result<BurstEnergyModel, CoreError> {
        if vdd.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "vdd",
                value: vdd.0,
                constraint: "must be positive",
            });
        }
        if clock.0 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "clock",
                value: clock.0,
                constraint: "must be positive",
            });
        }
        Ok(BurstEnergyModel { vdd, clock })
    }

    /// Operating supply.
    #[must_use]
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Clock frequency.
    #[must_use]
    pub fn clock(&self) -> Hertz {
        self.clock
    }

    /// Cycle time `t_cyc`.
    #[must_use]
    pub fn cycle_time(&self) -> Seconds {
        self.clock.period()
    }

    /// Per-cycle energy decomposition for a block on a technology.
    #[must_use]
    pub fn breakdown(
        &self,
        tech: &Technology,
        block: &BlockParams,
        activity: ActivityVars,
    ) -> EnergyBreakdown {
        let t_cyc = self.cycle_time();
        let switching =
            Joules(activity.fga * activity.alpha * block.switched_cap.0 * self.vdd.0 * self.vdd.0);
        let i_low = Amps(tech.active_off_current_per_um(self.vdd).0 * block.leak_width_um);
        if tech.has_standby_mode() {
            let c_ctrl = tech.control_capacitance(block.gate_area_um2);
            let v_ctrl = tech.control_swing();
            let control = Joules(activity.bga * c_ctrl.0 * v_ctrl.0 * v_ctrl.0);
            let i_high = Amps(tech.standby_off_current_per_um(self.vdd).0 * block.leak_width_um);
            EnergyBreakdown {
                switching,
                control,
                leak_active: (i_low * self.vdd * t_cyc) * activity.fga,
                leak_standby: (i_high * self.vdd * t_cyc) * (1.0 - activity.fga),
            }
        } else {
            // Eq. 3: fixed low threshold, "the device is continually
            // leaking".
            EnergyBreakdown {
                switching,
                control: Joules::ZERO,
                leak_active: i_low * self.vdd * t_cyc,
                leak_standby: Joules::ZERO,
            }
        }
    }

    /// Total per-cycle energy (Eq. 3 or Eq. 4 by technology).
    #[must_use]
    pub fn energy_per_cycle(
        &self,
        tech: &Technology,
        block: &BlockParams,
        activity: ActivityVars,
    ) -> Joules {
        self.breakdown(tech, block, activity).total()
    }

    /// `log10(E_a / E_b)` — the Fig. 10 surface value for one activity
    /// point, negative where technology `a` wins.
    #[must_use]
    pub fn log_energy_ratio(
        &self,
        tech_a: &Technology,
        tech_b: &Technology,
        block: &BlockParams,
        activity: ActivityVars,
    ) -> f64 {
        let ea = self.energy_per_cycle(tech_a, block, activity).0;
        let eb = self.energy_per_cycle(tech_b, block, activity).0;
        (ea / eb).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_device::soias::SoiasDevice;

    fn model() -> BurstEnergyModel {
        BurstEnergyModel::new(Volts(1.0), Hertz(20e6)).expect("valid")
    }

    fn soi() -> Technology {
        Technology::soi_fixed_vt(Volts(0.084))
    }

    fn soias() -> Technology {
        Technology::soias(SoiasDevice::paper_fig6(), Volts(3.0)).expect("valid")
    }

    #[test]
    fn constructor_validates() {
        assert!(BurstEnergyModel::new(Volts(0.0), Hertz(1e6)).is_err());
        assert!(BurstEnergyModel::new(Volts(1.0), Hertz(0.0)).is_err());
    }

    #[test]
    fn eq3_structure_for_fixed_vt() {
        // For SOI the leakage term must not depend on fga.
        let m = model();
        let block = BlockParams::adder_8bit().unwrap();
        let busy = ActivityVars::new(0.9, 0.01, 0.5).unwrap();
        let idle = ActivityVars::new(0.01, 0.01, 0.5).unwrap();
        let b_busy = m.breakdown(&soi(), &block, busy);
        let b_idle = m.breakdown(&soi(), &block, idle);
        assert_eq!(b_busy.leak_active, b_idle.leak_active);
        assert_eq!(b_busy.control, Joules::ZERO);
        assert!(b_busy.switching.0 > b_idle.switching.0);
    }

    #[test]
    fn eq4_leakage_mix_follows_fga() {
        let m = model();
        let block = BlockParams::adder_8bit().unwrap();
        let mostly_idle = ActivityVars::new(0.05, 0.01, 0.5).unwrap();
        let b = m.breakdown(&soias(), &block, mostly_idle);
        // 95% of the time in the high-V_T state whose leakage is ~4
        // decades lower: standby leakage must be far below what active
        // leakage would be at fga = 1.
        let always = ActivityVars::new(1.0, 0.0, 0.5).unwrap();
        let b_on = m.breakdown(&soias(), &block, always);
        assert!(b.leak_standby.0 < 0.01 * b_on.leak_active.0);
        assert!(b.control.0 > 0.0);
    }

    #[test]
    fn soias_wins_for_bursty_loses_for_continuous() {
        // The central Fig. 10 claim.
        let m = model();
        let block = BlockParams::adder_8bit().unwrap();
        let bursty = ActivityVars::new(0.01, 0.001, 0.5).unwrap();
        let continuous = ActivityVars::new(1.0, 0.0, 0.5).unwrap();
        let r_bursty = m.log_energy_ratio(&soias(), &soi(), &block, bursty);
        let r_cont = m.log_energy_ratio(&soias(), &soi(), &block, continuous);
        assert!(
            r_bursty < 0.0,
            "SOIAS must win when mostly idle: {r_bursty}"
        );
        assert!(
            r_cont >= -0.02,
            "SOIAS cannot beat SOI when always on: {r_cont}"
        );
    }

    #[test]
    fn control_energy_scales_with_bga() {
        let m = model();
        let block = BlockParams::adder_8bit().unwrap();
        let low = ActivityVars::new(0.5, 0.001, 0.5).unwrap();
        let high = ActivityVars::new(0.5, 0.4, 0.5).unwrap();
        let c_low = m.breakdown(&soias(), &block, low).control.0;
        let c_high = m.breakdown(&soias(), &block, high).control.0;
        assert!((c_high / c_low - 400.0).abs() < 1.0);
    }

    #[test]
    fn block_presets_are_ordered_by_size() {
        let adder = BlockParams::adder_8bit().unwrap();
        let shifter = BlockParams::shifter_8bit().unwrap();
        let mult = BlockParams::multiplier_8x8().unwrap();
        assert!(mult.switched_cap.0 > adder.switched_cap.0);
        assert!(mult.gate_area_um2 > shifter.gate_area_um2);
        assert!(adder.switched_cap.to_femtofarads() > 50.0);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let m = model();
        let block = BlockParams::multiplier_8x8().unwrap();
        let a = ActivityVars::new(0.3, 0.05, 0.4).unwrap();
        let b = m.breakdown(&soias(), &block, a);
        let sum = b.switching.0 + b.control.0 + b.leak_active.0 + b.leak_standby.0;
        assert!((b.total().0 - sum).abs() <= f64::EPSILON * sum);
    }

    #[test]
    fn slower_clock_raises_leakage_share() {
        // Leakage integrates over the cycle: at fixed V_DD, halving the
        // clock doubles per-cycle leakage energy but not switching.
        let block = BlockParams::adder_8bit().unwrap();
        let a = ActivityVars::new(1.0, 0.0, 0.5).unwrap();
        let fast = BurstEnergyModel::new(Volts(1.0), Hertz(40e6)).unwrap();
        let slow = BurstEnergyModel::new(Volts(1.0), Hertz(10e6)).unwrap();
        let bf = fast.breakdown(&soi(), &block, a);
        let bs = slow.breakdown(&soi(), &block, a);
        assert_eq!(bf.switching, bs.switching);
        assert!((bs.leak_active.0 / bf.leak_active.0 - 4.0).abs() < 1e-9);
    }
}
