//! The three CMOS power components of the paper's §2.
//!
//! ```text
//!     P_switching = α₀→₁ · C_L · V_DD² · f_clk            (Eq. 1)
//!     P_short     ≲ 10 % of P_switching with matched slopes
//!     P_leak      = I_leak · V_DD    (sub-threshold, Eq. 2)
//! ```

use lowvolt_device::units::{Amps, Farads, Hertz, Volts, Watts};

/// Switching (dynamic) power, the paper's Eq. 1.
///
/// # Panics
///
/// Panics if `alpha` is negative (glitch-inflated values above 1 are
/// allowed).
#[must_use]
pub fn switching_power(alpha: f64, load: Farads, vdd: Volts, clock: Hertz) -> Watts {
    assert!(alpha >= 0.0, "activity factor must be non-negative");
    Watts(alpha * load.0 * vdd.0 * vdd.0 * clock.0)
}

/// Short-circuit power estimate.
///
/// "By sizing transistors such that the input and output rise times are
/// approximately equal, the short circuit component can be kept to less
/// than 10 % of the total power." The estimate scales that bound by the
/// input/output slope ratio: matched slopes (`ratio = 1`) give the 10 %
/// figure, slower inputs linearly more.
///
/// # Panics
///
/// Panics if `slope_ratio` is not positive.
#[must_use]
pub fn short_circuit_power(switching: Watts, slope_ratio: f64) -> Watts {
    assert!(slope_ratio > 0.0, "slope ratio must be positive");
    Watts(switching.0 * 0.10 * slope_ratio)
}

/// Leakage power from an off-state current.
#[must_use]
pub fn leakage_power(leak: Amps, vdd: Volts) -> Watts {
    leak * vdd
}

/// A full §2 decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Dynamic (switching) component.
    pub switching: Watts,
    /// Short-circuit component.
    pub short_circuit: Watts,
    /// Sub-threshold leakage component.
    pub leakage: Watts,
}

impl PowerBreakdown {
    /// Computes all three components for one operating point.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or `slope_ratio` non-positive.
    #[must_use]
    pub fn evaluate(
        alpha: f64,
        load: Farads,
        vdd: Volts,
        clock: Hertz,
        leak: Amps,
        slope_ratio: f64,
    ) -> PowerBreakdown {
        let switching = switching_power(alpha, load, vdd, clock);
        PowerBreakdown {
            switching,
            short_circuit: short_circuit_power(switching, slope_ratio),
            leakage: leakage_power(leak, vdd),
        }
    }

    /// Total power.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.switching + self.short_circuit + self.leakage
    }

    /// Leakage share of the total (the quantity "current power estimation
    /// tools … do not take into account").
    #[must_use]
    pub fn leakage_fraction(&self) -> f64 {
        if self.total().0 == 0.0 {
            0.0
        } else {
            self.leakage.0 / self.total().0
        }
    }
}

impl std::fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "switching {:.3e} W + short-circuit {:.3e} W + leakage {:.3e} W = {:.3e} W",
            self.switching.0,
            self.short_circuit.0,
            self.leakage.0,
            self.total().0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_scales_quadratically_with_vdd() {
        let p1 = switching_power(0.5, Farads(10e-12), Volts(1.0), Hertz(1e6));
        let p2 = switching_power(0.5, Farads(10e-12), Volts(2.0), Hertz(1e6));
        assert!((p2.0 / p1.0 - 4.0).abs() < 1e-12);
        // And linearly with everything else.
        let p3 = switching_power(1.0, Farads(10e-12), Volts(1.0), Hertz(1e6));
        assert!((p3.0 / p1.0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matched_slopes_cap_short_circuit_at_ten_percent() {
        let sw = Watts(1.0);
        assert!((short_circuit_power(sw, 1.0).0 - 0.1).abs() < 1e-12);
        assert!(short_circuit_power(sw, 2.0).0 > short_circuit_power(sw, 1.0).0);
    }

    #[test]
    fn breakdown_totals_and_fraction() {
        let b = PowerBreakdown::evaluate(
            0.25,
            Farads(20e-12),
            Volts(1.0),
            Hertz(10e6),
            Amps(5e-6),
            1.0,
        );
        let total = b.switching.0 + b.short_circuit.0 + b.leakage.0;
        assert!((b.total().0 - total).abs() < 1e-18);
        assert!(b.leakage_fraction() > 0.0 && b.leakage_fraction() < 1.0);
    }

    #[test]
    fn leakage_dominates_at_low_activity() {
        // The §3 observation: low-activity circuits want higher V_T.
        let busy =
            PowerBreakdown::evaluate(0.5, Farads(20e-12), Volts(1.0), Hertz(1e6), Amps(1e-6), 1.0);
        let idle = PowerBreakdown::evaluate(
            0.001,
            Farads(20e-12),
            Volts(1.0),
            Hertz(1e6),
            Amps(1e-6),
            1.0,
        );
        assert!(idle.leakage_fraction() > 0.9 * busy.leakage_fraction());
        assert!(idle.leakage_fraction() > 0.5);
        assert!(busy.leakage_fraction() < 0.5);
    }

    #[test]
    fn zero_power_fraction_is_zero() {
        let b = PowerBreakdown {
            switching: Watts::ZERO,
            short_circuit: Watts::ZERO,
            leakage: Watts::ZERO,
        };
        assert_eq!(b.leakage_fraction(), 0.0);
    }
}
