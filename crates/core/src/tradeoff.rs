//! Technology trade-off surface — the paper's Fig. 10.
//!
//! "The ratio of the total energy dissipation for SOIAS to SOI was
//! analyzed as a function of algorithm and architecture dependent
//! parameters (fga and bga). … The zero contour shows the breakeven
//! point — points that lie below the line indicate a reduction in power
//! using the SOIAS technology over a conventional SOI technology."

use crate::activity::ActivityVars;
use crate::energy::{BlockParams, BurstEnergyModel};
use crate::error::CoreError;
use lowvolt_device::technology::Technology;
use lowvolt_exec::{parallel_map_isolated, ExecPolicy, FaultPolicy, ItemStatus};

/// A named application operating point placed on the surface.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Label ("adder", "multiplier", …).
    pub name: String,
    /// The activity point.
    pub activity: ActivityVars,
    /// `log10(E_a / E_b)` at this point.
    pub log_ratio: f64,
    /// Energy saving of technology `a` over `b`, `1 − E_a/E_b`.
    pub saving: f64,
}

/// The evaluated `log10(E_a/E_b)` surface over a log-spaced
/// `(fga, bga)` grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffSurface {
    fga_axis: Vec<f64>,
    bga_axis: Vec<f64>,
    /// `values[i][j]` is the log-ratio at `(fga_axis[i], bga_axis[j])`.
    values: Vec<Vec<f64>>,
}

impl TradeoffSurface {
    /// Evaluates the surface for technology `a` versus baseline `b`,
    /// serially. See [`TradeoffSurface::evaluate_with`] for the parallel
    /// variant.
    ///
    /// Axes are log-spaced over `[fga_range.0, fga_range.1]` ×
    /// `[bga_range.0, bga_range.1]`; infeasible cells (`bga > fga`) hold
    /// `NaN`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for empty or inverted
    /// ranges or fewer than 2 points per axis.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        model: &BurstEnergyModel,
        tech_a: &Technology,
        tech_b: &Technology,
        block: &BlockParams,
        alpha: f64,
        fga_range: (f64, f64),
        bga_range: (f64, f64),
        points: usize,
    ) -> Result<TradeoffSurface, CoreError> {
        TradeoffSurface::evaluate_with(
            &ExecPolicy::serial(),
            model,
            tech_a,
            tech_b,
            block,
            alpha,
            fga_range,
            bga_range,
            points,
        )
    }

    /// [`TradeoffSurface::evaluate`] with the `fga` rows fanned out over
    /// `policy`'s worker threads. Rows are independent; results land in
    /// row order and the first (lowest-`fga`-index) error wins, so the
    /// surface — and any error — is identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for empty or inverted
    /// ranges or fewer than 2 points per axis.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_with(
        policy: &ExecPolicy,
        model: &BurstEnergyModel,
        tech_a: &Technology,
        tech_b: &Technology,
        block: &BlockParams,
        alpha: f64,
        fga_range: (f64, f64),
        bga_range: (f64, f64),
        points: usize,
    ) -> Result<TradeoffSurface, CoreError> {
        for (name, (lo, hi)) in [("fga_range", fga_range), ("bga_range", bga_range)] {
            if !(lo > 0.0 && hi > lo && hi <= 1.0) {
                return Err(CoreError::InvalidParameter {
                    name,
                    value: lo,
                    constraint: "need 0 < lo < hi <= 1 (log axes)",
                });
            }
        }
        if points < 2 {
            return Err(CoreError::InvalidParameter {
                name: "points",
                value: points as f64,
                constraint: "need at least 2 per axis",
            });
        }
        let log_axis = |(lo, hi): (f64, f64)| -> Vec<f64> {
            let (llo, lhi) = (lo.log10(), hi.log10());
            (0..points)
                .map(|i| 10f64.powf(llo + (lhi - llo) * i as f64 / (points - 1) as f64))
                .collect()
        };
        let fga_axis = log_axis(fga_range);
        let bga_axis = log_axis(bga_range);
        let slots = parallel_map_isolated(
            policy,
            &FaultPolicy::default(),
            lowvolt_obs::noop(),
            &fga_axis,
            |_, &fga, _| {
                let mut row = Vec::with_capacity(points);
                for &bga in &bga_axis {
                    if bga > fga {
                        row.push(f64::NAN);
                        continue;
                    }
                    let activity = match ActivityVars::new(fga, bga, alpha) {
                        Ok(a) => a,
                        Err(e) => return ItemStatus::Done(Err(e)),
                    };
                    row.push(model.log_energy_ratio(tech_a, tech_b, block, activity));
                }
                ItemStatus::Done(Ok::<Vec<f64>, CoreError>(row))
            },
        );
        let mut values = Vec::with_capacity(slots.len());
        for slot in slots {
            values.push(slot.map_err(CoreError::from)??);
        }
        Ok(TradeoffSurface {
            fga_axis,
            bga_axis,
            values,
        })
    }

    /// The `fga` axis values.
    #[must_use]
    pub fn fga_axis(&self) -> &[f64] {
        &self.fga_axis
    }

    /// The `bga` axis values.
    #[must_use]
    pub fn bga_axis(&self) -> &[f64] {
        &self.bga_axis
    }

    /// The log-ratio at grid indices `(i, j)`.
    #[must_use]
    pub fn value(&self, fga_index: usize, bga_index: usize) -> f64 {
        self.values[fga_index][bga_index]
    }

    /// For a given `fga` row, the interpolated `bga` at which the ratio
    /// crosses zero — one point of the Fig. 10 breakeven contour. `None`
    /// when the row never crosses (always winning or always losing).
    #[must_use]
    pub fn breakeven_bga(&self, fga_index: usize) -> Option<f64> {
        let row = &self.values[fga_index];
        for j in 1..row.len() {
            let (a, b) = (row[j - 1], row[j]);
            if a.is_nan() || b.is_nan() {
                continue;
            }
            if (a <= 0.0 && b > 0.0) || (a > 0.0 && b <= 0.0) {
                // Interpolate in log(bga).
                let (xa, xb) = (self.bga_axis[j - 1].log10(), self.bga_axis[j].log10());
                let t = a / (a - b);
                return Some(10f64.powf(xa + t * (xb - xa)));
            }
        }
        None
    }

    /// The whole breakeven contour as `(fga, bga)` pairs.
    #[must_use]
    pub fn breakeven_contour(&self) -> Vec<(f64, f64)> {
        (0..self.fga_axis.len())
            .filter_map(|i| self.breakeven_bga(i).map(|b| (self.fga_axis[i], b)))
            .collect()
    }
}

/// Places a named application point on the surface (the paper's adder /
/// shifter / multiplier markers).
#[must_use]
pub fn place_point(
    model: &BurstEnergyModel,
    tech_a: &Technology,
    tech_b: &Technology,
    block: &BlockParams,
    name: impl Into<String>,
    activity: ActivityVars,
) -> OperatingPoint {
    let log_ratio = model.log_energy_ratio(tech_a, tech_b, block, activity);
    OperatingPoint {
        name: name.into(),
        activity,
        log_ratio,
        saving: 1.0 - 10f64.powf(log_ratio),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_device::soias::SoiasDevice;
    use lowvolt_device::units::{Hertz, Volts};

    fn setup() -> (BurstEnergyModel, Technology, Technology, BlockParams) {
        // 1 MHz: the paper's Fig. 4 throughput regime, where the low-V_T
        // leakage integrated over the cycle rivals the switching energy —
        // the regime in which Fig. 10's large SOIAS savings arise.
        let model = BurstEnergyModel::new(Volts(1.0), Hertz(1e6)).unwrap();
        let device = SoiasDevice::paper_fig6();
        let soias = Technology::soias(device.clone(), Volts(3.0)).unwrap();
        // The Eq. 3 baseline is the *same* low-V_T device, fixed.
        let soi = Technology::soi_fixed_vt_device(device.front_device(Volts(3.0)));
        (model, soias, soi, BlockParams::adder_8bit().unwrap())
    }

    fn surface() -> TradeoffSurface {
        let (model, soias, soi, block) = setup();
        // 61 points per axis: at this leakage-dominated operating point
        // the breakeven contour hugs the fga → 1 edge, so the grid must
        // be fine enough to land rows inside that strip.
        TradeoffSurface::evaluate(
            &model,
            &soias,
            &soi,
            &block,
            0.5,
            (1e-3, 1.0),
            (1e-4, 1.0),
            61,
        )
        .unwrap()
    }

    #[test]
    fn axes_are_log_spaced_and_bounded() {
        let s = surface();
        assert_eq!(s.fga_axis().len(), 61);
        assert!((s.fga_axis()[0] - 1e-3).abs() < 1e-9);
        assert!((s.fga_axis()[60] - 1.0).abs() < 1e-9);
        let r01 = s.fga_axis()[1] / s.fga_axis()[0];
        let r12 = s.fga_axis()[2] / s.fga_axis()[1];
        assert!((r01 - r12).abs() < 1e-6, "log spacing");
    }

    #[test]
    fn infeasible_cells_are_nan() {
        let s = surface();
        // Smallest fga with largest bga must be infeasible.
        assert!(s.value(0, 60).is_nan());
        // Largest fga, small bga is a real number.
        assert!(s.value(60, 0).is_finite());
    }

    #[test]
    fn corner_signs_match_fig10() {
        let s = surface();
        // Low fga, low bga: SOIAS saves orders of magnitude → negative.
        assert!(s.value(0, 0) < -0.5, "idle corner: {}", s.value(0, 0));
        // fga = 1 (always on): SOIAS cannot win; ratio ~ 0 or positive.
        assert!(s.value(60, 0) > -0.05, "busy corner: {}", s.value(60, 0));
        // High bga at moderate fga: control overhead pushes ratio up
        // relative to the low-bga point of the same row.
        let row = 30;
        let lo_bga = s.value(row, 0);
        let mut hi_bga = f64::NAN;
        for j in (0..61).rev() {
            if s.value(row, j).is_finite() {
                hi_bga = s.value(row, j);
                break;
            }
        }
        assert!(hi_bga > lo_bga, "backgate switching must cost energy");
    }

    #[test]
    fn breakeven_contour_exists_and_is_ordered() {
        let s = surface();
        let contour = s.breakeven_contour();
        assert!(
            !contour.is_empty(),
            "the zero contour must cross the plotted region"
        );
        for &(fga, bga) in &contour {
            assert!(bga <= fga + 1e-9, "contour stays feasible");
        }
    }

    #[test]
    fn x_server_points_show_savings() {
        // The paper's §5.4 bottom points: an X server active 20% of the
        // time gives large SOIAS savings for all three modules.
        let (model, soias, soi, _) = setup();
        let cases = [
            ("adder", BlockParams::adder_8bit().unwrap(), 0.697, 0.023),
            (
                "shifter",
                BlockParams::shifter_8bit().unwrap(),
                0.109,
                0.087,
            ),
            (
                "multiplier",
                BlockParams::multiplier_8x8().unwrap(),
                0.0083,
                0.0083,
            ),
        ];
        let mut savings = Vec::new();
        for (name, block, fga, bga) in cases {
            let activity = ActivityVars::new(fga, bga, 0.5).unwrap();
            let p = place_point(&model, &soias, &soi, &block, name, activity);
            assert!(p.log_ratio < 0.0, "{name} must save energy");
            savings.push((name, p.saving));
        }
        // Ordering: the idler the block, the larger the saving —
        // multiplier > shifter > adder, as in the paper (97/80/43 %).
        assert!(savings[2].1 > savings[1].1, "{savings:?}");
        assert!(savings[1].1 > savings[0].1, "{savings:?}");
        assert!(savings[2].1 > 0.8, "multiplier saving {:?}", savings[2]);
    }

    #[test]
    fn continuous_points_show_little_advantage() {
        // The top set of Fig. 10 points: continuously active processor,
        // modules powered down only between their own uses — "little
        // advantage going to the SOIAS technology".
        let (model, soias, soi, block) = setup();
        let activity = ActivityVars::new(0.697, 0.115, 0.5).unwrap();
        let p = place_point(&model, &soias, &soi, &block, "adder-continuous", activity);
        assert!(
            p.saving < 0.45,
            "continuous-mode saving should be modest: {}",
            p.saving
        );
    }

    #[test]
    fn evaluate_validates_ranges() {
        let (model, soias, soi, block) = setup();
        assert!(TradeoffSurface::evaluate(
            &model,
            &soias,
            &soi,
            &block,
            0.5,
            (0.0, 1.0),
            (1e-4, 1.0),
            10
        )
        .is_err());
        assert!(TradeoffSurface::evaluate(
            &model,
            &soias,
            &soi,
            &block,
            0.5,
            (1e-3, 1.0),
            (1e-4, 1.0),
            1
        )
        .is_err());
    }
}
