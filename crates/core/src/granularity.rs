//! V_T-control granularity — the paper's §5.2 design question.
//!
//! "The degree of V_T control ranges from affecting individual
//! transistors to switching the V_T of the entire chip at once. …
//! controlling each transistor in a digital system individually would
//! require a great deal of additional wiring to route the back gate
//! control signals. Switching the entire chip, while requiring little
//! wiring overhead, is only useful for systems which are idle for long
//! periods … We have chosen to assume a model of operation in which
//! functional units, or blocks, share a common V_T."
//!
//! This module evaluates all three granularities on the same design so
//! that block-level control can be shown to be the sweet spot.

use crate::activity::ActivityVars;
use crate::energy::{BlockParams, BurstEnergyModel};
use crate::error::CoreError;
use lowvolt_device::technology::Technology;
use lowvolt_device::units::Joules;

/// The three control granularities of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlGranularity {
    /// One control for the whole chip: standby only when *everything* is
    /// idle.
    Chip,
    /// One control per functional block (the paper's chosen model).
    Block,
    /// One control per transistor: maximal leakage saving, massive
    /// control-wiring capacitance.
    PerTransistor,
}

impl ControlGranularity {
    /// All granularities, coarse to fine.
    pub const ALL: [ControlGranularity; 3] = [
        ControlGranularity::Chip,
        ControlGranularity::Block,
        ControlGranularity::PerTransistor,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ControlGranularity::Chip => "chip",
            ControlGranularity::Block => "block",
            ControlGranularity::PerTransistor => "per-transistor",
        }
    }
}

impl std::fmt::Display for ControlGranularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Multiplier on the control capacitance when every transistor gets its
/// own routed control wire (§5.2's "great deal of additional wiring").
/// A per-transistor back gate is a femtofarad-scale load at the end of a
/// dedicated routed wire plus its own driver; the wire and driver
/// capacitance dwarf the gate itself by an order of magnitude.
pub const PER_TRANSISTOR_WIRING_FACTOR: f64 = 12.0;

/// Per-granularity energy for a design of blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityComparison {
    /// Energy per cycle at chip-level control.
    pub chip: Joules,
    /// Energy per cycle at block-level control.
    pub block: Joules,
    /// Energy per cycle at per-transistor control.
    pub per_transistor: Joules,
}

impl GranularityComparison {
    /// The granularity with the lowest energy.
    #[must_use]
    pub fn best(&self) -> ControlGranularity {
        let mut best = (ControlGranularity::Chip, self.chip.0);
        for (g, e) in [
            (ControlGranularity::Block, self.block.0),
            (ControlGranularity::PerTransistor, self.per_transistor.0),
        ] {
            if e < best.1 {
                best = (g, e);
            }
        }
        best.0
    }

    /// Energy for a given granularity.
    #[must_use]
    pub fn energy(&self, g: ControlGranularity) -> Joules {
        match g {
            ControlGranularity::Chip => self.chip,
            ControlGranularity::Block => self.block,
            ControlGranularity::PerTransistor => self.per_transistor,
        }
    }
}

/// Evaluates the three granularities for a design.
///
/// - `blocks` are `(parameters, activity)` pairs; activities are
///   system-level (duty already folded in).
/// - `system_duty` is the fraction of cycles *any* block is active —
///   chip-level control can only sleep outside it.
/// - `system_bga` is the chip-level wake rate (session bursts per cycle).
///
/// # Errors
///
/// Returns [`CoreError::InvalidActivity`] if `system_duty` is outside
/// `[0, 1]`, the duty is smaller than some block's `fga` (the chip cannot
/// be idle while a block runs), or `blocks` is empty.
pub fn compare_granularities(
    model: &BurstEnergyModel,
    tech: &Technology,
    blocks: &[(BlockParams, ActivityVars)],
    system_duty: f64,
    system_bga: f64,
) -> Result<GranularityComparison, CoreError> {
    if blocks.is_empty() {
        return Err(CoreError::InvalidActivity {
            name: "blocks",
            value: 0.0,
            constraint: "need at least one block",
        });
    }
    if !(0.0..=1.0).contains(&system_duty) {
        return Err(CoreError::InvalidActivity {
            name: "system_duty",
            value: system_duty,
            constraint: "must lie in [0, 1]",
        });
    }
    for (p, a) in blocks {
        if a.fga > system_duty + 1e-12 {
            return Err(CoreError::InvalidActivity {
                name: "system_duty",
                value: system_duty,
                constraint: "must cover every block's fga",
            });
        }
        let _ = p;
    }

    // Block-level: straight Eq. 4 per block.
    let block_energy: f64 = blocks
        .iter()
        .map(|(p, a)| model.energy_per_cycle(tech, p, *a).0)
        .sum();

    // Chip-level: every block shares the chip's standby schedule — low
    // V_T (active leakage) whenever the *chip* is busy, one shared
    // control toggled at the session rate.
    let mut chip_energy = 0.0;
    let total_area: f64 = blocks.iter().map(|(p, _)| p.gate_area_um2).sum();
    for (p, a) in blocks {
        let chip_activity =
            ActivityVars::new(system_duty, 0.0, a.alpha * a.fga / system_duty.max(1e-12))?;
        // switching must reflect the block's own fga·α, so fold it into
        // alpha while the leakage follows the chip duty.
        let b = model.breakdown(tech, p, chip_activity);
        chip_energy += b.switching.0 + b.leak_active.0 + b.leak_standby.0;
    }
    let c_ctrl = tech.control_capacitance(total_area);
    let v_ctrl = tech.control_swing();
    chip_energy += system_bga * c_ctrl.0 * v_ctrl.0 * v_ctrl.0;

    // Per-transistor: the block only leaks at low V_T while actually
    // switching (leakage window ≈ fga·α instead of fga), but every
    // control transition drags the wiring-amplified capacitance and
    // toggles at the node rate (bga → fga·α).
    let mut per_transistor = 0.0;
    for (p, a) in blocks {
        let window = (a.fga * a.alpha).min(1.0);
        let fine = ActivityVars::new(window, window, a.alpha / a.alpha.max(1e-12))?;
        // fine.alpha = 1 within the window: switching identical to Eq. 4.
        let mut b = model.breakdown(tech, p, fine);
        b.switching = Joules(a.fga * a.alpha * p.switched_cap.0 * model.vdd().0 * model.vdd().0);
        let c_fine = tech.control_capacitance(p.gate_area_um2).0 * PER_TRANSISTOR_WIRING_FACTOR;
        let control = window * c_fine * v_ctrl.0 * v_ctrl.0;
        per_transistor += b.switching.0 + control + b.leak_active.0 + b.leak_standby.0;
    }

    Ok(GranularityComparison {
        chip: Joules(chip_energy),
        block: Joules(block_energy),
        per_transistor: Joules(per_transistor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvolt_device::soias::SoiasDevice;
    use lowvolt_device::units::{Hertz, Volts};

    fn setup() -> (BurstEnergyModel, Technology) {
        (
            BurstEnergyModel::new(Volts(1.0), Hertz(20e6)).unwrap(),
            Technology::soias(SoiasDevice::paper_fig6(), Volts(3.0)).unwrap(),
        )
    }

    fn x_server_blocks() -> Vec<(BlockParams, ActivityVars)> {
        vec![
            (
                BlockParams::adder_8bit().unwrap(),
                ActivityVars::new(0.1394, 0.0046, 0.5).unwrap(), // 0.697·0.2
            ),
            (
                BlockParams::shifter_8bit().unwrap(),
                ActivityVars::new(0.0218, 0.0174, 0.5).unwrap(),
            ),
            (
                BlockParams::multiplier_8x8().unwrap(),
                ActivityVars::new(0.00166, 0.00166, 0.5).unwrap(),
            ),
        ]
    }

    #[test]
    fn block_level_wins_for_x_server() {
        // The paper's chosen model should be the sweet spot: chip-level
        // leaves idle blocks hot during bursts; per-transistor pays
        // wiring energy on every use.
        let (model, tech) = setup();
        let cmp = compare_granularities(&model, &tech, &x_server_blocks(), 0.2, 1e-4).unwrap();
        assert_eq!(cmp.best(), ControlGranularity::Block, "{cmp:?}");
        assert!(cmp.block.0 < cmp.chip.0);
        assert!(cmp.block.0 < cmp.per_transistor.0);
    }

    #[test]
    fn chip_level_fine_for_fully_synchronised_blocks() {
        // If every block is busy exactly when the chip is, chip-level
        // control loses nothing (and saves control energy).
        let (model, tech) = setup();
        let duty = 0.2;
        let blocks = vec![(
            BlockParams::adder_8bit().unwrap(),
            ActivityVars::new(duty, 0.001, 0.5).unwrap(),
        )];
        let cmp = compare_granularities(&model, &tech, &blocks, duty, 0.001).unwrap();
        let gap = (cmp.chip.0 - cmp.block.0).abs() / cmp.block.0;
        assert!(gap < 0.2, "chip ≈ block for synchronised use: {gap}");
    }

    #[test]
    fn validation_errors() {
        let (model, tech) = setup();
        assert!(compare_granularities(&model, &tech, &[], 0.5, 0.0).is_err());
        let blocks = x_server_blocks();
        assert!(compare_granularities(&model, &tech, &blocks, 1.5, 0.0).is_err());
        // Duty below a block's fga is inconsistent.
        assert!(compare_granularities(&model, &tech, &blocks, 0.01, 0.0).is_err());
    }

    #[test]
    fn energy_accessor_and_names() {
        let (model, tech) = setup();
        let cmp = compare_granularities(&model, &tech, &x_server_blocks(), 0.2, 1e-4).unwrap();
        for g in ControlGranularity::ALL {
            assert!(cmp.energy(g).0 > 0.0);
            assert!(!g.name().is_empty());
        }
        assert_eq!(ControlGranularity::Block.to_string(), "block");
    }
}
