//! X-reachability (LV010–LV011): forward contamination analysis. A
//! source that can carry `X` forever — a floating net or a primary
//! input outside the target's stimulus contract — contaminates every
//! node reachable from it through combinational gates. Any declared
//! output in that set can silently read `X` in simulation, which is
//! exactly the failure the fault campaign classifies as
//! `PropagatedAsX`; this pass predicts it without running a vector.
//!
//! The analysis is deliberately conservative (structural reachability,
//! no don't-care masking): a `Mux2` with a contaminated data leg is
//! counted as contaminated even if the select could steer around it.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use lowvolt_circuit::netlist::NodeId;

use crate::diagnostic::{Diagnostic, Location, Rule};
use crate::target::LintTarget;

/// Runs the X-reachability pass.
#[must_use]
pub fn run(target: &LintTarget) -> Vec<Diagnostic> {
    let n = &target.netlist;
    let mut diags = Vec::new();

    let constrained: BTreeSet<usize> = target
        .inputs
        .iter()
        .chain(target.clock.iter())
        .map(|i| i.index())
        .collect();

    let mut driver_count = vec![0usize; n.node_count()];
    for gate in n.gates() {
        if let Some(slot) = driver_count.get_mut(gate.output.index()) {
            *slot += 1;
        }
    }

    // X sources: unconstrained primary inputs and floating internal
    // nodes that something consumes.
    let mut sources: Vec<(NodeId, &'static str)> = Vec::new();
    for node in n.node_ids() {
        let idx = node.index();
        if n.is_primary_input(node) {
            if !constrained.contains(&idx) {
                sources.push((node, "unconstrained primary input"));
                diags.push(Diagnostic::new(
                    Rule::UnconstrainedInput,
                    Location::Node {
                        index: idx,
                        name: n.node_name(node).to_string(),
                    },
                    "primary input is not driven by the target's stimulus contract".to_string(),
                    "add the input to the stimulus list (or the clock slot) or tie it off"
                        .to_string(),
                ));
            }
        } else if driver_count[idx] == 0 && !n.fanout(node).is_empty() {
            sources.push((node, "floating node"));
        }
    }

    if sources.is_empty() {
        return diags;
    }

    // BFS forward over gate edges. Flip-flops do not stop contamination:
    // an X on `d` is latched on the next clock edge.
    let mut contaminated = vec![false; n.node_count()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    // Remember which source first reaches each node, for the message.
    let mut origin: Vec<Option<usize>> = vec![None; n.node_count()];
    for (si, (node, _)) in sources.iter().enumerate() {
        let idx = node.index();
        if !contaminated[idx] {
            contaminated[idx] = true;
            origin[idx] = Some(si);
            queue.push_back(idx);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &g in n.fanout(NodeId::from_index(v)) {
            let Some(gate) = n.gates().get(g.index()) else {
                continue;
            };
            let out = gate.output.index();
            if !contaminated[out] {
                contaminated[out] = true;
                origin[out] = origin[v];
                queue.push_back(out);
            }
        }
    }

    for output in &target.outputs {
        let idx = output.index();
        if idx < contaminated.len() && contaminated[idx] {
            let via = origin[idx]
                .and_then(|si| sources.get(si))
                .map_or_else(String::new, |(node, what)| {
                    format!(" via {} '{}'", what, n.node_name(*node))
                });
            diags.push(Diagnostic::new(
                Rule::XContamination,
                Location::Node {
                    index: idx,
                    name: n.node_name(*output).to_string(),
                },
                format!("declared output is reachable from an X source{via}"),
                "constrain or tie off the contaminating source".to_string(),
            ));
        }
    }

    diags
}
