//! Slack-aware static timing (LV040, LV041): runs the zero-simulation
//! STA engine over the target with each gate priced at *its own power
//! domain's* operating point, then checks every endpoint against the
//! configured required time.
//!
//! - **LV040** fires on endpoints whose worst-path arrival misses the
//!   required time outright — including domains run so close to (or
//!   below) threshold that their gates effectively never switch.
//! - **LV041** fires when the base analysis meets timing but a second
//!   run with each gated domain's delays derated by its sized MTCMOS
//!   sleep-device penalty (`lowvolt_core::mtcmos`) no longer does: the
//!   sleep network as sized eats all the slack, so the sizing is
//!   slack-infeasible even though LV025's penalty ceiling is met.
//!
//! Unlevelizable netlists are skipped here — the structural pass owns
//! combinational loops and multi-driver reporting — as are targets with
//! no endpoints.

use lowvolt_core::mtcmos::MtcmosSizer;
use lowvolt_device::units::Seconds;
use lowvolt_exec::ExecPolicy;
use lowvolt_sta::{
    analyze_priced, DelayPricer, StaConfig, StaError, StaReport, NOMINAL_VDD, NOMINAL_VT,
};

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, Location, Rule};
use crate::intent::DomainKind;
use crate::target::LintTarget;

/// Runs the timing pass.
#[must_use]
pub fn run(target: &LintTarget, config: &LintConfig) -> Vec<Diagnostic> {
    let pricer = DelayPricer::paper_default();
    let sta_config = StaConfig::at(NOMINAL_VDD, NOMINAL_VT).with_required(config.timing_required);

    // Per-gate operating point from the gate's power domain; gates with
    // no intent (or a malformed assignment, which LV024 reports) price
    // at the toolkit-wide nominal point.
    let base = analyze(target, sta_config, &|gi, fanout| {
        let (vdd, vt) = match target.intent.as_ref().and_then(|i| i.domain_of(gi)) {
            Some((_, d)) => match &d.kind {
                DomainKind::AlwaysOn { logic_vt, vdd } => (*vdd, *logic_vt),
                DomainKind::Gated { sleep } => (sleep.vdd, sleep.low_vt),
            },
            None => (NOMINAL_VDD, NOMINAL_VT),
        };
        pricer.delay(vdd, vt, fanout)
    });
    let Some(base) = base else {
        return Vec::new();
    };

    let mut diags = Vec::new();
    let mut base_clean = true;
    for ep in &base.endpoints {
        if ep.slack.0 >= 0.0 {
            continue;
        }
        base_clean = false;
        let message = if ep.arrival.0.is_finite() {
            format!(
                "worst path ({} gates from '{}') arrives at {} against a required time of {} \
                 (slack {})",
                ep.depth,
                ep.startpoint,
                fmt_ps(ep.arrival),
                fmt_ps(ep.required),
                fmt_ps(ep.slack)
            )
        } else {
            format!(
                "endpoint is unreachable: its domain operates with V_DD at or below V_T, so the \
                 worst path ({} gates from '{}') never settles",
                ep.depth, ep.startpoint
            )
        };
        diags.push(Diagnostic::new(
            Rule::NegativeSlack,
            Location::Node {
                index: ep.node_index,
                name: ep.node.clone(),
            },
            message,
            "raise the domain's V_DD, lower its V_T along the iso-delay contour (paper Figs. \
             3-4), or relax the required time"
                .to_string(),
        ));
    }

    // LV041 only makes sense when the base point meets timing and at
    // least one gated domain carries a finite, non-zero delay penalty.
    if !base_clean {
        return diags;
    }
    let Some(intent) = &target.intent else {
        return diags;
    };
    let mut penalty = vec![0.0f64; intent.domains.len()];
    let mut any_penalty = false;
    for (idx, domain) in intent.domains.iter().enumerate() {
        if let DomainKind::Gated { sleep } = &domain.kind {
            // Infeasible sizer parameters are LV020's finding; an
            // infinite penalty (rail collapse) is LV025's. Both derate
            // runs would only double-report, so they price as zero here.
            if let Ok(sizer) =
                MtcmosSizer::new(sleep.peak_current, sleep.vdd, sleep.low_vt, sleep.high_vt)
            {
                let p = sizer.delay_penalty(sleep.width);
                if p.is_finite() && p > 0.0 {
                    penalty[idx] = p;
                    any_penalty = true;
                }
            }
        }
    }
    if !any_penalty {
        return diags;
    }

    let derated = analyze(target, sta_config, &|gi, fanout| {
        let (vdd, vt, factor) = match intent.domain_of(gi) {
            Some((id, d)) => match &d.kind {
                DomainKind::AlwaysOn { logic_vt, vdd } => (*vdd, *logic_vt, 1.0),
                DomainKind::Gated { sleep } => (sleep.vdd, sleep.low_vt, 1.0 + penalty[id.0]),
            },
            None => (NOMINAL_VDD, NOMINAL_VT, 1.0),
        };
        let d = pricer.delay(vdd, vt, fanout)?;
        Ok(Seconds(d.0 * factor))
    });
    let Some(derated) = derated else {
        return diags;
    };
    for ep in &derated.endpoints {
        if ep.slack.0 >= 0.0 {
            continue;
        }
        diags.push(Diagnostic::new(
            Rule::SlackInfeasibleSleep,
            Location::Node {
                index: ep.node_index,
                name: ep.node.clone(),
            },
            format!(
                "meets timing without power gating, but the sized sleep device's active-delay \
                 penalty pushes the worst path ({} gates from '{}') to {} against a required \
                 time of {} (slack {})",
                ep.depth,
                ep.startpoint,
                fmt_ps(ep.arrival),
                fmt_ps(ep.required),
                fmt_ps(ep.slack)
            ),
            "widen the sleep transistor (trading standby leakage for delay, paper §4) or relax \
             the required time"
                .to_string(),
        ));
    }
    diags
}

/// Runs the STA engine, mapping "not a timing problem" errors to `None`:
/// unlevelizable netlists belong to the structural pass and endpoint-free
/// netlists constrain nothing.
fn analyze(
    target: &LintTarget,
    config: StaConfig,
    price: &dyn Fn(usize, usize) -> Result<Seconds, StaError>,
) -> Option<StaReport> {
    analyze_priced(
        &ExecPolicy::serial(),
        lowvolt_obs::noop(),
        &target.name,
        &target.netlist,
        &target.outputs,
        config,
        price,
    )
    .ok()
}

/// `123.456 ps` for finite values; diagnostics never print raw `inf`.
fn fmt_ps(s: Seconds) -> String {
    if s.0.is_finite() {
        format!("{:.3} ps", s.0 * 1e12)
    } else {
        "unreachable".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::{PowerDomain, PowerIntent, SleepSpec};
    use crate::target::standard_lint_targets;
    use lowvolt_device::units::{Amps, Volts};

    #[test]
    fn standard_datapaths_meet_the_default_required_time() {
        for t in standard_lint_targets(8).expect("targets build") {
            let diags = run(&t, &LintConfig::default());
            assert!(diags.is_empty(), "{}: {:?}", t.name, diags);
        }
    }

    #[test]
    fn near_threshold_domain_fires_lv040() {
        let mut targets = standard_lint_targets(8).expect("targets build");
        let mut t = targets.swap_remove(0);
        t.intent = Some(PowerIntent::single(
            PowerDomain {
                name: "slow".to_string(),
                kind: DomainKind::AlwaysOn {
                    logic_vt: Volts(0.30),
                    vdd: Volts(0.33),
                },
                body: None,
            },
            &t.netlist,
        ));
        let diags = run(&t, &LintConfig::default());
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == Rule::NegativeSlack));
    }

    #[test]
    fn subthreshold_domain_reports_unreachable_endpoints() {
        let mut targets = standard_lint_targets(8).expect("targets build");
        let mut t = targets.swap_remove(0);
        t.intent = Some(PowerIntent::single(
            PowerDomain {
                name: "dead".to_string(),
                kind: DomainKind::AlwaysOn {
                    logic_vt: Volts(0.40),
                    vdd: Volts(0.35),
                },
                body: None,
            },
            &t.netlist,
        ));
        let diags = run(&t, &LintConfig::default());
        assert!(!diags.is_empty());
        assert!(diags[0].message.contains("unreachable"));
    }

    #[test]
    fn undersized_sleep_that_eats_the_slack_fires_lv041() {
        let mut targets = standard_lint_targets(8).expect("targets build");
        let mut t = targets.swap_remove(0);
        // Find the required time that leaves ~2% of headroom over the
        // penalty-free critical path, then attach a sleep device whose
        // penalty is far larger than that headroom (but still finite).
        let pricer = DelayPricer::paper_default();
        let base = analyze(&t, StaConfig::at(NOMINAL_VDD, NOMINAL_VT), &|_, fanout| {
            pricer.delay(NOMINAL_VDD, NOMINAL_VT, fanout)
        })
        .expect("analyzable");
        let sleep =
            SleepSpec::sized_for_penalty(Volts(0.2), Volts(0.55), Volts(1.0), Amps(2e-4), 0.05)
                .expect("feasible sizing");
        let sizer = MtcmosSizer::new(sleep.peak_current, sleep.vdd, sleep.low_vt, sleep.high_vt)
            .expect("feasible sizer");
        let penalty = sizer.delay_penalty(sleep.width);
        assert!(penalty.is_finite() && penalty > 0.02, "penalty {penalty}");
        t.intent = Some(PowerIntent::single(
            PowerDomain {
                name: "gated".to_string(),
                kind: DomainKind::Gated { sleep },
                body: None,
            },
            &t.netlist,
        ));
        let config = LintConfig::default().with_timing_required(Seconds(base.critical.0 * 1.02));
        let diags = run(&t, &config);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == Rule::SlackInfeasibleSleep));
    }

    #[test]
    fn unlevelizable_targets_are_left_to_the_structural_pass() {
        let t = crate::fixtures::seeded_defect(crate::fixtures::Defect::CombinationalLoop)
            .expect("fixture builds");
        assert!(run(&t, &LintConfig::default()).is_empty());
    }
}
