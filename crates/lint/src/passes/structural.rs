//! Structural design-rule checks (LV001–LV004): driver/fanout
//! bookkeeping plus combinational-loop detection by Tarjan's strongly
//! connected components algorithm over the netlist's CSR fanout index.

use std::collections::BTreeSet;

use lowvolt_circuit::netlist::{GateKind, Netlist, NodeId};

use crate::diagnostic::{Diagnostic, Location, Rule};
use crate::target::LintTarget;

/// Runs the structural pass.
#[must_use]
pub fn run(target: &LintTarget) -> Vec<Diagnostic> {
    let n = &target.netlist;
    let mut diags = Vec::new();

    let mut driver_count = vec![0usize; n.node_count()];
    for gate in n.gates() {
        if let Some(slot) = driver_count.get_mut(gate.output.index()) {
            *slot += 1;
        }
    }
    let declared: BTreeSet<usize> = target.outputs.iter().map(|o| o.index()).collect();

    for node in n.node_ids() {
        let idx = node.index();
        let drivers = driver_count[idx];
        let used = !n.fanout(node).is_empty();
        let is_output = declared.contains(&idx);
        let loc = node_loc(n, node);
        if n.is_primary_input(node) {
            // A gate driving a primary input is a drive fight between the
            // stimulus and the netlist.
            if drivers > 0 {
                diags.push(Diagnostic::new(
                    Rule::MultipleDrivers,
                    loc,
                    format!("primary input is also driven by {drivers} gate output(s)"),
                    "remove the gate driver or demote the node from the input list".to_string(),
                ));
            }
            continue;
        }
        if drivers == 0 && (used || is_output) {
            diags.push(Diagnostic::new(
                Rule::FloatingNode,
                loc,
                format!(
                    "no driver, but {} depend on it",
                    if used {
                        "downstream gates"
                    } else {
                        "declared outputs"
                    }
                ),
                "drive the node from a gate output or declare it a primary input".to_string(),
            ));
        } else if drivers > 1 {
            diags.push(Diagnostic::new(
                Rule::MultipleDrivers,
                loc,
                format!("driven by {drivers} gate outputs"),
                "keep exactly one driver per node; mux or gate the sources instead".to_string(),
            ));
        } else if drivers == 1 && !used && !is_output {
            diags.push(Diagnostic::new(
                Rule::DanglingOutput,
                loc,
                "driven but never consumed and not a declared output".to_string(),
                "declare the node as an output or remove the dead logic (it still burns leakage)"
                    .to_string(),
            ));
        }
    }

    diags.extend(combinational_loops(target));
    diags
}

fn node_loc(n: &Netlist, node: NodeId) -> Location {
    Location::Node {
        index: node.index(),
        name: n.node_name(node).to_string(),
    }
}

/// Finds combinational cycles: Tarjan SCC over the node graph whose
/// edges are `gate input -> gate output` for every non-flip-flop gate
/// (a [`GateKind::Dff`] output changes only on a clock edge, so it
/// legitimately breaks a cycle). Any SCC of size > 1, or any single
/// node with a combinational self-edge, is a loop.
fn combinational_loops(target: &LintTarget) -> Vec<Diagnostic> {
    let n = &target.netlist;
    let node_count = n.node_count();

    // Iterative Tarjan over the CSR fanout index: successors of node v
    // are the outputs of v's combinational fanout gates.
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; node_count];
    let mut lowlink = vec![0usize; node_count];
    let mut on_stack = vec![false; node_count];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, iterator position over its successors).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    // Successor lists materialised once from the CSR fanout index so the
    // DFS inner loop is allocation-free.
    let successors: Vec<Vec<usize>> = (0..node_count)
        .map(|v| {
            n.fanout(NodeId::from_index(v))
                .iter()
                .filter_map(|&g| {
                    let gate = n.gates().get(g.index())?;
                    (gate.kind != GateKind::Dff).then(|| gate.output.index())
                })
                .collect()
        })
        .collect();

    for root in 0..node_count {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut succ_pos)) = frames.last_mut() {
            if let Some(&w) = successors[v].get(*succ_pos) {
                *succ_pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if component.len() > 1 {
                        sccs.push(component);
                    }
                }
            }
        }
    }

    // Size-1 SCCs with a self-edge (a combinational gate feeding its own
    // output node) are loops too; Tarjan above only keeps size > 1.
    let mut diags: Vec<Diagnostic> = n
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| g.kind != GateKind::Dff && g.inputs.contains(&g.output))
        .map(|(i, g)| {
            Diagnostic::new(
                Rule::CombinationalLoop,
                Location::Gate {
                    index: i,
                    kind: g.kind.name().to_string(),
                    output: n.node_name(g.output).to_string(),
                },
                "gate output feeds directly back into its own input".to_string(),
                "break the loop with a flip-flop or remove the feedback".to_string(),
            )
        })
        .collect();

    for mut component in sccs {
        component.sort_unstable();
        let names: Vec<&str> = component
            .iter()
            .take(6)
            .map(|&v| n.node_name(NodeId::from_index(v)))
            .collect();
        let suffix = if component.len() > names.len() {
            format!(", … ({} nodes total)", component.len())
        } else {
            String::new()
        };
        let anchor = NodeId::from_index(component[0]);
        diags.push(Diagnostic::new(
            Rule::CombinationalLoop,
            node_loc(n, anchor),
            format!(
                "combinational cycle through {{{}{}}} with no flip-flop to break it",
                names.join(", "),
                suffix
            ),
            "insert a Dff in the cycle or restructure the feedback".to_string(),
        ));
    }

    diags
}
