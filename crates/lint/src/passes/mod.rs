//! The five analysis pass families. Each pass is a pure function
//! `(&LintTarget, &LintConfig) -> Vec<Diagnostic>` — no simulation, no
//! I/O, no shared state — which is what lets the engine fan the passes
//! out over `lowvolt_exec::parallel_map` with deterministic results.

pub mod leakage;
pub mod power;
pub mod structural;
pub mod timing;
pub mod xreach;

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, Pass};
use crate::target::LintTarget;

/// Runs one pass family over a target.
#[must_use]
pub fn run_pass(pass: Pass, target: &LintTarget, config: &LintConfig) -> Vec<Diagnostic> {
    match pass {
        Pass::Structural => structural::run(target),
        Pass::XReachability => xreach::run(target),
        Pass::PowerIntent => power::run(target, config),
        Pass::Leakage => leakage::run(target, config),
        Pass::Timing => timing::run(target, config),
    }
}
