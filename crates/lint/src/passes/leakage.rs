//! Static leakage bounds (LV030): prices each power domain's worst-case
//! standby leakage with the paper's Eq. 2 sub-threshold device model and
//! the Eq. 3/4 leakage-width convention
//! (`lowvolt_core::energy::LEAK_WIDTH_PER_GATE_UM`), then compares it to
//! the configured budget.
//!
//! - An **always-on** domain leaks through its full logic width at the
//!   logic `V_T` — the scenario Fig. 5 warns about when `V_T` is scaled
//!   down for speed.
//! - A **gated** domain in standby leaks only through its high-`V_T`
//!   sleep device (the series header limits the path), so the bound is
//!   that device's off-current at its sized width.
//!
//! Domains without power intent are not priced: leakage is a function
//! of `V_T`, and without intent there is no declared threshold to
//! price. Attach intent (see `standard_lint_targets`) to opt in.

use lowvolt_core::energy::LEAK_WIDTH_PER_GATE_UM;
use lowvolt_core::power::leakage_power;
use lowvolt_device::mosfet::Mosfet;
use lowvolt_device::units::{Micrometers, Watts};

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, Location, Rule, Severity};
use crate::intent::DomainKind;
use crate::target::LintTarget;

/// Runs the leakage pass.
#[must_use]
pub fn run(target: &LintTarget, config: &LintConfig) -> Vec<Diagnostic> {
    let Some(intent) = &target.intent else {
        return Vec::new();
    };
    let mut diags = Vec::new();

    // Gate population per domain, from the assignment table (entries the
    // intent-shape check flags as malformed simply don't count here).
    let mut population = vec![0usize; intent.domains.len()];
    for gi in 0..target.netlist.gate_count() {
        if let Some((id, _)) = intent.domain_of(gi) {
            population[id.0] += 1;
        }
    }

    for (idx, domain) in intent.domains.iter().enumerate() {
        let gates = population[idx];
        let (standby, vdd, path) = match &domain.kind {
            DomainKind::AlwaysOn { logic_vt, vdd } => {
                let width = Micrometers(LEAK_WIDTH_PER_GATE_UM * gates as f64);
                if width.0 <= 0.0 {
                    continue;
                }
                let leak = Mosfet::nmos_with_vt(*logic_vt)
                    .with_width(width)
                    .off_current(*vdd);
                (
                    leakage_power(leak, *vdd),
                    *vdd,
                    format!("{gates} gate(s), {width} of leaking width at V_T {logic_vt}"),
                )
            }
            DomainKind::Gated { sleep } => {
                let leak = Mosfet::nmos_with_vt(sleep.high_vt)
                    .with_width(sleep.width)
                    .off_current(sleep.vdd);
                (
                    leakage_power(leak, sleep.vdd),
                    sleep.vdd,
                    format!(
                        "series sleep device, {} at V_T {}",
                        sleep.width, sleep.high_vt
                    ),
                )
            }
        };
        let budget = config.standby_budget;
        let warn_at = Watts(budget.0 * config.leakage_warn_fraction);
        let loc = Location::Domain {
            name: domain.name.clone(),
        };
        if standby > budget {
            diags.push(Diagnostic::new(
                Rule::LeakageBudget,
                loc,
                format!(
                    "worst-case standby leakage {} exceeds the {budget} budget at V_DD {vdd} \
                     ({path})",
                    standby
                ),
                "raise V_T, power-gate the domain with a high-V_T sleep device, or raise the \
                 budget"
                    .to_string(),
            ));
        } else if standby > warn_at {
            diags.push(
                Diagnostic::new(
                    Rule::LeakageBudget,
                    loc,
                    format!(
                        "standby leakage {} is within budget but over {:.0}% of it ({path})",
                        standby,
                        config.leakage_warn_fraction * 100.0
                    ),
                    "headroom is thin; consider a higher V_T or power gating before scaling \
                     the block up"
                        .to_string(),
                )
                .with_severity(Severity::Warning),
            );
        }
    }
    diags
}
