//! Power-intent checks (LV020–LV026): the static verification layer for
//! the paper's §4 power-down options. Cross-checks the declared intent
//! against the `lowvolt_core::mtcmos` sleep-transistor sizing model and
//! the `lowvolt_device::body` back-gate law, and — when a switch-level
//! view is attached — proves there is no conduction path from the
//! supply that bypasses every sleep device.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use lowvolt_core::mtcmos::MtcmosSizer;

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, Location, Rule, Severity};
use crate::intent::{DomainKind, PowerIntent};
use crate::target::{LintTarget, SwitchView};

/// Runs the power-intent pass.
#[must_use]
pub fn run(target: &LintTarget, config: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Some(intent) = &target.intent {
        check_intent_shape(target, intent, &mut diags);
        check_sleep_networks(intent, config, &mut diags);
        check_isolation(target, intent, &mut diags);
        check_body_bias(intent, &mut diags);
    }
    if let Some(view) = &target.switch_view {
        check_sleep_bypass(view, &mut diags);
    }
    diags
}

fn domain_loc(intent: &PowerIntent, idx: usize) -> Location {
    match intent.domains.get(idx) {
        Some(d) => Location::Domain {
            name: d.name.clone(),
        },
        None => Location::Design,
    }
}

/// LV024: the intent must actually describe this netlist.
fn check_intent_shape(target: &LintTarget, intent: &PowerIntent, diags: &mut Vec<Diagnostic>) {
    let gates = target.netlist.gate_count();
    if intent.assignment.len() != gates {
        diags.push(Diagnostic::new(
            Rule::MalformedIntent,
            Location::Design,
            format!(
                "intent assigns {} gate(s) but the netlist has {gates}",
                intent.assignment.len()
            ),
            "rebuild the intent from the final netlist (one domain entry per gate)".to_string(),
        ));
    }
    let bad_domain_refs = intent
        .assignment
        .iter()
        .filter(|&&d| d >= intent.domains.len())
        .count();
    if bad_domain_refs > 0 {
        diags.push(Diagnostic::new(
            Rule::MalformedIntent,
            Location::Design,
            format!(
                "{bad_domain_refs} gate assignment(s) reference a domain that does not exist \
                 ({} domain(s) declared)",
                intent.domains.len()
            ),
            "fix the assignment table to point at declared domains".to_string(),
        ));
    }
    let nodes = target.netlist.node_count();
    let bad_iso = intent.isolated.iter().filter(|&&i| i >= nodes).count();
    if bad_iso > 0 {
        diags.push(Diagnostic::new(
            Rule::MalformedIntent,
            Location::Design,
            format!("{bad_iso} isolation marker(s) reference nodes outside the netlist"),
            "mark isolation on real nets".to_string(),
        ));
    }
    if intent.domains.is_empty() {
        diags.push(Diagnostic::new(
            Rule::MalformedIntent,
            Location::Design,
            "intent declares no power domains".to_string(),
            "declare at least one domain and assign every gate to it".to_string(),
        ));
    }
}

/// LV020 + LV025: every gated domain's sleep network must be able to cut
/// off, and its sizing must not cost more active delay than allowed.
fn check_sleep_networks(intent: &PowerIntent, config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for (idx, domain) in intent.domains.iter().enumerate() {
        let DomainKind::Gated { sleep } = &domain.kind else {
            continue;
        };
        let loc = domain_loc(intent, idx);
        let sizer =
            match MtcmosSizer::new(sleep.peak_current, sleep.vdd, sleep.low_vt, sleep.high_vt) {
                Ok(sizer) => sizer,
                Err(e) => {
                    diags.push(Diagnostic::new(
                        Rule::IncompleteSleepCutoff,
                        loc,
                        format!(
                        "sleep network cannot cut off (V_T,sleep {} vs V_T,logic {}, V_DD {}): {e}",
                        sleep.high_vt, sleep.low_vt, sleep.vdd
                    ),
                        "use a high-V_T sleep device with V_T,logic < V_T,sleep < V_DD (paper §4)"
                            .to_string(),
                    ));
                    continue;
                }
            };
        let droop = sizer.rail_droop(sleep.width);
        let penalty = sizer.delay_penalty(sleep.width);
        if !penalty.is_finite() || droop >= sleep.vdd {
            diags.push(
                Diagnostic::new(
                    Rule::UndersizedSleepDevice,
                    loc,
                    format!(
                        "sleep device of width {} cannot carry the {} peak current: virtual rail \
                         collapses",
                        sleep.width, sleep.peak_current
                    ),
                    "widen the sleep device until the rail droop stays well below V_DD".to_string(),
                )
                .with_severity(Severity::Error),
            );
        } else if penalty > config.max_sleep_penalty {
            diags.push(Diagnostic::new(
                Rule::UndersizedSleepDevice,
                loc,
                format!(
                    "sleep device costs {:.1}% active delay (rail droop {}), over the {:.1}% \
                     ceiling",
                    penalty * 100.0,
                    droop,
                    config.max_sleep_penalty * 100.0
                ),
                "widen the sleep device or raise the allowed penalty".to_string(),
            ));
        }
    }
}

/// LV021: a net crossing out of a gated domain floats when that domain
/// sleeps, so any consumer in a *different* domain needs an isolation
/// cell on the crossing.
fn check_isolation(target: &LintTarget, intent: &PowerIntent, diags: &mut Vec<Diagnostic>) {
    let n = &target.netlist;
    // Driving gate of each node (first driver wins; multi-driver nets are
    // already LV002 territory).
    let mut driver: Vec<Option<usize>> = vec![None; n.node_count()];
    for (gi, gate) in n.gates().iter().enumerate() {
        let slot = &mut driver[gate.output.index()];
        if slot.is_none() {
            *slot = Some(gi);
        }
    }
    for (gi, gate) in n.gates().iter().enumerate() {
        let Some((sink_dom, _)) = intent.domain_of(gi) else {
            continue; // malformed assignments already reported as LV024
        };
        for input in &gate.inputs {
            let Some(src_gate) = driver[input.index()] else {
                continue; // primary inputs and floating nets
            };
            let Some((src_dom, src)) = intent.domain_of(src_gate) else {
                continue;
            };
            if src_dom == sink_dom {
                continue;
            }
            if !matches!(src.kind, DomainKind::Gated { .. }) {
                continue;
            }
            if intent.isolated.contains(&input.index()) {
                continue;
            }
            diags.push(Diagnostic::new(
                Rule::MissingIsolation,
                Location::Gate {
                    index: gi,
                    kind: gate.kind.name().to_string(),
                    output: n.node_name(gate.output).to_string(),
                },
                format!(
                    "input '{}' comes from gated domain '{}' without an isolation cell; it \
                     floats when that domain sleeps",
                    n.node_name(*input),
                    src.name
                ),
                "add an isolation cell on the crossing (mark_isolated) or move the consumer \
                 into the gated domain"
                    .to_string(),
            ));
        }
    }
}

/// LV022 + LV023: body-bias feasibility per domain and consistency per
/// shared rail.
fn check_body_bias(intent: &PowerIntent, diags: &mut Vec<Diagnostic>) {
    use lowvolt_device::body::BodyEffect;

    // rail name -> (domain index, required bias in volts)
    let mut rails: BTreeMap<&str, Vec<(usize, f64)>> = BTreeMap::new();

    for (idx, domain) in intent.domains.iter().enumerate() {
        let Some(body) = &domain.body else { continue };
        let loc = domain_loc(intent, idx);
        let model = match BodyEffect::new(body.vt0, body.gamma, body.surface_potential) {
            Ok(m) => m,
            Err(e) => {
                diags.push(Diagnostic::new(
                    Rule::MalformedIntent,
                    loc,
                    format!("body-bias spec is not a valid body-effect model: {e}"),
                    "use a non-negative gamma and positive surface potential".to_string(),
                ));
                continue;
            }
        };
        let bias = match model.bias_for_vt_shift(body.standby_shift) {
            Ok(b) => b,
            Err(e) => {
                diags.push(Diagnostic::new(
                    Rule::ExcessiveBodyBias,
                    loc,
                    format!(
                        "no substrate bias achieves the requested {} V_T shift: {e}",
                        body.standby_shift
                    ),
                    "request a non-negative shift on a device with real body effect".to_string(),
                ));
                continue;
            }
        };
        if bias > body.max_bias {
            diags.push(Diagnostic::new(
                Rule::ExcessiveBodyBias,
                loc,
                format!(
                    "raising V_T by {} needs {bias} of reverse bias, but the rail delivers at \
                     most {} (square-root law saturates — the paper's Fig. 5 caveat)",
                    body.standby_shift, body.max_bias
                ),
                "lower the standby shift, raise gamma, or combine with power gating".to_string(),
            ));
        }
        rails
            .entry(body.rail.as_str())
            .or_default()
            .push((idx, bias.0));
    }

    // Domains on one physical rail all see the same bias; requirements
    // more than 1 mV apart cannot all be met.
    const RAIL_TOLERANCE_V: f64 = 1e-3;
    for (rail, members) in rails {
        if members.len() < 2 {
            continue;
        }
        let min = members
            .iter()
            .map(|&(_, b)| b)
            .fold(f64::INFINITY, f64::min);
        let max = members
            .iter()
            .map(|&(_, b)| b)
            .fold(f64::NEG_INFINITY, f64::max);
        if max - min > RAIL_TOLERANCE_V {
            let names: Vec<String> = members
                .iter()
                .filter_map(|&(idx, bias)| {
                    intent
                        .domains
                        .get(idx)
                        .map(|d| format!("{} ({bias:.3} V)", d.name))
                })
                .collect();
            diags.push(Diagnostic::new(
                Rule::BodyBiasConflict,
                Location::Domain {
                    name: rail.to_string(),
                },
                format!(
                    "domains on body rail '{rail}' need biases {:.3} V apart: {}",
                    max - min,
                    names.join(", ")
                ),
                "split the rail or align the domains' V_T shift targets".to_string(),
            ));
        }
    }
}

/// LV026: delete every sleep transistor from the switch-level view and
/// check that no gated node still reaches the supply through channel
/// edges. A surviving path is a sneak supply that defeats power gating
/// (standby current flows no matter what the sleep signal says).
fn check_sleep_bypass(view: &SwitchView, diags: &mut Vec<Diagnostic>) {
    let n = &view.netlist;
    let node_count = n.node_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); node_count];
    for (ti, t) in n.transistors().iter().enumerate() {
        if view.sleep_transistors.contains(&ti) {
            continue;
        }
        let (a, b) = (t.a.index(), t.b.index());
        if a < node_count && b < node_count {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    let mut reachable = vec![false; node_count];
    let start = n.vdd().index();
    let gnd = n.gnd().index();
    let mut queue = VecDeque::new();
    if start < node_count {
        reachable[start] = true;
        queue.push_back(start);
    }
    while let Some(v) = queue.pop_front() {
        // The ground rail is absorbing: a walk entering gnd is a
        // pull-down path, not a supply bypass, so it does not extend to
        // gnd's other channel neighbours.
        if v == gnd {
            continue;
        }
        for &w in &adj[v] {
            if !reachable[w] {
                reachable[w] = true;
                queue.push_back(w);
            }
        }
    }
    for &node in &view.gated_nodes {
        let idx = node.index();
        if idx < node_count && reachable[idx] {
            diags.push(Diagnostic::new(
                Rule::SleepBypass,
                Location::Node {
                    index: idx,
                    name: n.node_name(node).to_string(),
                },
                "gated node still reaches the supply with every sleep transistor cut off"
                    .to_string(),
                "route every pull-up through the sleep header (or register the bypass device \
                 as a sleep transistor)"
                    .to_string(),
            ));
        }
    }
}
