//! The lint engine: fans the four pass families out over the
//! deterministic execution engine, then applies the configured rule
//! filters and a stable sort.

use std::cmp::Reverse;

use lowvolt_exec::{parallel_map, ExecPolicy};

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, LintReport, Pass, Severity};
use crate::passes::run_pass;
use crate::target::LintTarget;

/// Runs lint passes over targets.
#[derive(Debug, Clone, Default)]
pub struct Linter {
    /// The configuration every run of this linter uses.
    pub config: LintConfig,
}

impl Linter {
    /// A linter with the given configuration.
    #[must_use]
    pub fn new(config: LintConfig) -> Linter {
        Linter { config }
    }

    /// A linter with [`LintConfig::default`].
    #[must_use]
    pub fn with_defaults() -> Linter {
        Linter::default()
    }

    /// Lints one target with the environment's execution policy.
    #[must_use]
    pub fn lint(&self, target: &LintTarget) -> LintReport {
        self.lint_with(&ExecPolicy::from_env(), target)
    }

    /// Lints one target, running the four passes in parallel under
    /// `policy`. Results are deterministic regardless of thread count:
    /// `parallel_map` returns pass outputs in input order and the final
    /// sort is total.
    #[must_use]
    pub fn lint_with(&self, policy: &ExecPolicy, target: &LintTarget) -> LintReport {
        let per_pass: Vec<Vec<Diagnostic>> = parallel_map(policy, &Pass::ALL, |_, &pass| {
            run_pass(pass, target, &self.config)
        });
        let mut diagnostics: Vec<Diagnostic> = per_pass
            .into_iter()
            .flatten()
            .filter(|d| !self.config.allow.contains(&d.rule))
            .map(|mut d| {
                if self.config.deny.contains(&d.rule) {
                    d.severity = Severity::Error;
                }
                d
            })
            .collect();
        diagnostics.sort_by(|a, b| {
            (Reverse(a.severity), a.rule.id(), &a.location, &a.message).cmp(&(
                Reverse(b.severity),
                b.rule.id(),
                &b.location,
                &b.message,
            ))
        });
        LintReport {
            target: target.name.clone(),
            diagnostics,
        }
    }

    /// Lints many targets, parallelising across targets (each target's
    /// passes then run serially — the outer fan-out already saturates
    /// the policy's workers).
    #[must_use]
    pub fn lint_all(&self, policy: &ExecPolicy, targets: &[LintTarget]) -> Vec<LintReport> {
        parallel_map(policy, targets, |_, t| {
            self.lint_with(&ExecPolicy::serial(), t)
        })
    }
}
