//! The lint engine: fans the four pass families out over the
//! deterministic execution engine, then applies the configured rule
//! filters and a stable sort.

use std::cmp::Reverse;

use lowvolt_exec::{parallel_map_recorded, ExecPolicy};
use lowvolt_obs::{names, span, Recorder};

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, LintReport, Pass, Severity};
use crate::passes::run_pass;
use crate::target::LintTarget;

/// Runs lint passes over targets.
#[derive(Debug, Clone, Default)]
pub struct Linter {
    /// The configuration every run of this linter uses.
    pub config: LintConfig,
}

impl Linter {
    /// A linter with the given configuration.
    #[must_use]
    pub fn new(config: LintConfig) -> Linter {
        Linter { config }
    }

    /// A linter with [`LintConfig::default`].
    #[must_use]
    pub fn with_defaults() -> Linter {
        Linter::default()
    }

    /// Lints one target with the environment's execution policy.
    #[must_use]
    pub fn lint(&self, target: &LintTarget) -> LintReport {
        self.lint_with(&ExecPolicy::from_env(), target)
    }

    /// Lints one target, running the four passes in parallel under
    /// `policy`. Results are deterministic regardless of thread count:
    /// `parallel_map` returns pass outputs in input order and the final
    /// sort is total.
    #[must_use]
    pub fn lint_with(&self, policy: &ExecPolicy, target: &LintTarget) -> LintReport {
        self.lint_recorded(policy, lowvolt_obs::noop(), target)
    }

    /// [`Linter::lint_with`] with lint metrics flushed to `rec`: one
    /// `lint.pass.<name>` span per pass family, plus the `lint.targets`,
    /// `lint.passes`, and `lint.diagnostics` counters (diagnostics are
    /// counted after allow/deny filtering, matching what the report
    /// carries). Counter totals are thread-invariant; only span
    /// durations vary.
    #[must_use]
    pub fn lint_recorded(
        &self,
        policy: &ExecPolicy,
        rec: &dyn Recorder,
        target: &LintTarget,
    ) -> LintReport {
        let per_pass: Vec<Vec<Diagnostic>> =
            parallel_map_recorded(policy, rec, &Pass::ALL, |_, &pass| {
                let _timer = span(
                    rec,
                    format!("{}.{}", names::SPAN_LINT_PASS_PREFIX, pass.name()),
                );
                run_pass(pass, target, &self.config)
            });
        let mut diagnostics: Vec<Diagnostic> = per_pass
            .into_iter()
            .flatten()
            .filter(|d| !self.config.allow.contains(&d.rule))
            .map(|mut d| {
                if self.config.deny.contains(&d.rule) {
                    d.severity = Severity::Error;
                }
                d
            })
            .collect();
        diagnostics.sort_by(|a, b| {
            (Reverse(a.severity), a.rule.id(), &a.location, &a.message).cmp(&(
                Reverse(b.severity),
                b.rule.id(),
                &b.location,
                &b.message,
            ))
        });
        if rec.is_enabled() {
            rec.add(names::LINT_TARGETS, 1);
            rec.add(names::LINT_PASSES, Pass::ALL.len() as u64);
            rec.add(names::LINT_DIAGNOSTICS, diagnostics.len() as u64);
        }
        LintReport {
            target: target.name.clone(),
            diagnostics,
        }
    }

    /// Lints many targets, parallelising across targets (each target's
    /// passes then run serially — the outer fan-out already saturates
    /// the policy's workers).
    #[must_use]
    pub fn lint_all(&self, policy: &ExecPolicy, targets: &[LintTarget]) -> Vec<LintReport> {
        self.lint_all_recorded(policy, lowvolt_obs::noop(), targets)
    }

    /// [`Linter::lint_all`] with metrics: the outer target fan-out goes
    /// through the recorded execution engine and every inner
    /// (serial-policy) lint run flushes its own pass spans and counters.
    #[must_use]
    pub fn lint_all_recorded(
        &self,
        policy: &ExecPolicy,
        rec: &dyn Recorder,
        targets: &[LintTarget],
    ) -> Vec<LintReport> {
        parallel_map_recorded(policy, rec, targets, |_, t| {
            self.lint_recorded(&ExecPolicy::serial(), rec, t)
        })
    }
}
