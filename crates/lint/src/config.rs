//! Lint engine configuration: rule filters and numeric thresholds.

use std::collections::BTreeSet;
use std::fmt;

use crate::diagnostic::Rule;
use lowvolt_device::units::{Seconds, Watts};

/// A rule name that neither the `LVnnn` id table nor the kebab-case
/// alias table recognises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRule(pub String);

impl fmt::Display for UnknownRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown lint rule '{}'", self.0)
    }
}

impl std::error::Error for UnknownRule {}

/// Configuration for a [`crate::engine::Linter`] run.
///
/// Filters compose in this order: a rule in `allow` is dropped entirely;
/// a surviving rule in `deny` is escalated to error severity;
/// `deny_warnings` then decides whether remaining warnings fail the
/// gate (see [`crate::LintReport::passes_gate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    /// Treat any surviving warning as a gate failure.
    pub deny_warnings: bool,
    /// Rules to suppress entirely.
    pub allow: BTreeSet<Rule>,
    /// Rules to escalate to error severity.
    pub deny: BTreeSet<Rule>,
    /// Standby-leakage budget per power domain (and for the whole
    /// design when no intent is attached).
    pub standby_budget: Watts,
    /// Fraction of the budget above which LV030 fires as a warning even
    /// though the budget itself is still met.
    pub leakage_warn_fraction: f64,
    /// Maximum acceptable active-delay penalty from a sleep device
    /// before LV025 fires (the paper's §4 MTCMOS sizing trade-off).
    pub max_sleep_penalty: f64,
    /// Required arrival time the timing pass applies at every endpoint
    /// (LV040 fires on endpoints that miss it; LV041 when only the
    /// MTCMOS delay penalty makes them miss it).
    pub timing_required: Seconds,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            deny_warnings: false,
            allow: BTreeSet::new(),
            deny: BTreeSet::new(),
            // 1 µW standby: generous for a few-hundred-gate datapath at
            // a healthy V_T, but decisively blown by a low-V_T always-on
            // block (the Fig. 5 standby-leakage scenario).
            standby_budget: Watts(1e-6),
            leakage_warn_fraction: 0.25,
            max_sleep_penalty: 0.10,
            // Generous for the standard width-8 datapaths at the nominal
            // (1.0 V, 0.2 V) operating point — even the multiplier's
            // critical path with the 5%-penalty sleep device fits — but
            // decisively missed once a domain runs near threshold.
            timing_required: Seconds(10e-9),
        }
    }
}

impl LintConfig {
    /// Adds rules (by id or name, comma- or repeated-flag style) to the
    /// allow set.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownRule`] for any name that is not a rule.
    pub fn allow_named(mut self, names: &str) -> Result<LintConfig, UnknownRule> {
        for rule in parse_rule_list(names)? {
            self.allow.insert(rule);
        }
        Ok(self)
    }

    /// Adds rules to the deny (escalate-to-error) set. The special name
    /// `warnings` sets [`LintConfig::deny_warnings`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownRule`] for any name that is neither `warnings`
    /// nor a rule.
    pub fn deny_named(mut self, names: &str) -> Result<LintConfig, UnknownRule> {
        for part in names.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part.eq_ignore_ascii_case("warnings") {
                self.deny_warnings = true;
            } else if let Some(rule) = Rule::parse(part) {
                self.deny.insert(rule);
            } else {
                return Err(UnknownRule(part.to_string()));
            }
        }
        Ok(self)
    }

    /// Sets the standby-leakage budget.
    #[must_use]
    pub fn with_standby_budget(mut self, budget: Watts) -> LintConfig {
        self.standby_budget = budget;
        self
    }

    /// Sets the required arrival time the timing pass checks against.
    #[must_use]
    pub fn with_timing_required(mut self, required: Seconds) -> LintConfig {
        self.timing_required = required;
        self
    }
}

fn parse_rule_list(names: &str) -> Result<Vec<Rule>, UnknownRule> {
    let mut rules = Vec::new();
    for part in names.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match Rule::parse(part) {
            Some(rule) => rules.push(rule),
            None => return Err(UnknownRule(part.to_string())),
        }
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_filters_parse_ids_and_names() {
        let cfg = LintConfig::default()
            .allow_named("LV003, x-contamination")
            .and_then(|c| c.deny_named("warnings,LV011"));
        let cfg = cfg.expect("valid rule names");
        assert!(cfg.allow.contains(&Rule::DanglingOutput));
        assert!(cfg.allow.contains(&Rule::XContamination));
        assert!(cfg.deny_warnings);
        assert!(cfg.deny.contains(&Rule::UnconstrainedInput));
    }

    #[test]
    fn unknown_rule_is_rejected_with_its_name() {
        let err = LintConfig::default().allow_named("LV042").unwrap_err();
        assert_eq!(err, UnknownRule("LV042".into()));
        assert!(err.to_string().contains("LV042"));
        assert!(LintConfig::default().deny_named("nope").is_err());
    }

    #[test]
    fn empty_segments_are_ignored() {
        let cfg = LintConfig::default().allow_named(",, LV001 ,").expect("ok");
        assert_eq!(cfg.allow.len(), 1);
    }
}
