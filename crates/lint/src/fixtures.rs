//! Seeded-defect fixtures: the adder datapath with one deliberate
//! defect per pass family. These are what the CI lint-gate runs with an
//! expectation of *failure*, and what the acceptance tests use to prove
//! each pass actually detects its defect class.

use lowvolt_circuit::netlist::GateKind;
use lowvolt_circuit::switchlevel::{SwKind, SwitchNetlist};
use lowvolt_device::units::Volts;

use crate::intent::{DomainKind, PowerDomain, PowerIntent, SleepSpec};
use crate::target::{default_gated_intent, standard_lint_targets, LintTarget, SwitchView};
use crate::LintError;

/// Which deliberate defect to seed into the adder datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// A floating net feeding logic that reaches a declared output
    /// (structural + X-reachability families: LV001, LV010).
    FloatingNode,
    /// A combinational feedback loop with no flip-flop (LV004).
    CombinationalLoop,
    /// A sleep network that cannot cut off, plus a switch-level pull-up
    /// that bypasses the sleep header (power-intent family: LV020,
    /// LV026).
    IncompleteSleep,
    /// An always-on low-`V_T` domain that blows the standby-leakage
    /// budget (LV030).
    LeakageBudget,
    /// An always-on domain run so close to threshold that every endpoint
    /// misses the required time (timing family: LV040).
    NegativeSlack,
}

impl Defect {
    /// All defects, one per pass family.
    pub const ALL: [Defect; 5] = [
        Defect::FloatingNode,
        Defect::CombinationalLoop,
        Defect::IncompleteSleep,
        Defect::LeakageBudget,
        Defect::NegativeSlack,
    ];

    /// CLI name of the defect.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Defect::FloatingNode => "floating",
            Defect::CombinationalLoop => "loop",
            Defect::IncompleteSleep => "sleep",
            Defect::LeakageBudget => "leakage",
            Defect::NegativeSlack => "slack",
        }
    }

    /// Parses a CLI defect name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Defect> {
        Defect::ALL
            .iter()
            .copied()
            .find(|d| d.name().eq_ignore_ascii_case(s.trim()))
    }
}

/// Builds the 8-bit adder datapath with the given defect seeded in.
///
/// # Errors
///
/// Returns [`LintError`] only if the underlying generators fail, which
/// the fixed parameters here do not provoke.
pub fn seeded_defect(defect: Defect) -> Result<LintTarget, LintError> {
    let mut targets = standard_lint_targets(8)?;
    // standard_lint_targets puts the adder first; take it by name so a
    // reordering there cannot silently change the fixture.
    let pos = targets
        .iter()
        .position(|t| t.name.starts_with("adder"))
        .unwrap_or(0);
    let mut target = targets.swap_remove(pos);
    target.name = format!("{}+{}", target.name, defect.name());

    match defect {
        Defect::FloatingNode => {
            // A net nobody drives, XORed into a new declared output: the
            // float is an LV001 error and the output it reaches is LV010.
            let float = target.netlist.node("float_net");
            let sum0 = target.outputs[0];
            let bad = target
                .netlist
                .gate(GateKind::Xor2, &[sum0, float])
                .map_err(LintError::Circuit)?;
            target.outputs.push(bad);
            // The new gate joins the gated domain like everything else.
            target.intent = Some(default_gated_intent(&target.netlist)?);
        }
        Defect::CombinationalLoop => {
            // sum[7] NAND fb -> y, and y buffered straight back into fb:
            // a two-node combinational cycle with no flip-flop.
            let sum_hi = target.outputs[7];
            let fb = target.netlist.node("fb");
            let y = target
                .netlist
                .gate(GateKind::Nand2, &[sum_hi, fb])
                .map_err(LintError::Circuit)?;
            target
                .netlist
                .gate_into(GateKind::Buf, &[y], fb)
                .map_err(LintError::Circuit)?;
            target.intent = Some(default_gated_intent(&target.netlist)?);
        }
        Defect::IncompleteSleep => {
            // Thresholds reversed: the "sleep" device turns off *less*
            // than the logic it gates, so standby current never stops.
            let sleep = SleepSpec {
                low_vt: Volts(0.30),
                high_vt: Volts(0.18),
                vdd: Volts(1.0),
                peak_current: lowvolt_device::units::Amps(2e-4),
                width: lowvolt_device::units::Micrometers(20.0),
            };
            target.intent = Some(PowerIntent::single(
                PowerDomain {
                    name: "core".to_string(),
                    kind: DomainKind::Gated { sleep },
                    body: None,
                },
                &target.netlist,
            ));
            target.switch_view = Some(bypassed_sleep_view()?);
        }
        Defect::LeakageBudget => {
            // The Fig. 5 trap: V_T scaled down to 50 mV for speed with no
            // power gating. ~40 gates of leaking width at that threshold
            // is microwatts of standby power, over the 1 µW default
            // budget.
            target.intent = Some(PowerIntent::single(
                PowerDomain {
                    name: "core".to_string(),
                    kind: DomainKind::AlwaysOn {
                        logic_vt: Volts(0.05),
                        vdd: Volts(1.0),
                    },
                    body: None,
                },
                &target.netlist,
            ));
        }
        Defect::NegativeSlack => {
            // Voltage scaled for energy with V_T left high: 30 mV of
            // overdrive makes every gate tens of times slower than at
            // the nominal point, so the whole datapath misses the
            // default required time — the slack side of the paper's
            // Figs. 3-4 trade-off.
            target.intent = Some(PowerIntent::single(
                PowerDomain {
                    name: "core".to_string(),
                    kind: DomainKind::AlwaysOn {
                        logic_vt: Volts(0.30),
                        vdd: Volts(0.33),
                    },
                    body: None,
                },
                &target.netlist,
            ));
        }
    }
    Ok(target)
}

/// A tiny switch-level power-gating fabric with a deliberate hole: two
/// inverters nominally on the virtual rail behind a PMOS sleep header,
/// but the second inverter's pull-up was wired to the real supply — a
/// sneak path the LV026 reachability check must find.
fn bypassed_sleep_view() -> Result<SwitchView, LintError> {
    let mut n = SwitchNetlist::new();
    let sleep_b = n.input("sleep_b");
    let vvdd = n.node("vvdd");
    let (vdd, gnd) = (n.vdd(), n.gnd());
    let header = n
        .transistor(SwKind::P, sleep_b, vdd, vvdd)
        .map_err(LintError::Circuit)?;

    let a1 = n.input("a1");
    let y1 = n.node("y1");
    n.transistor(SwKind::P, a1, vvdd, y1)
        .map_err(LintError::Circuit)?;
    n.transistor(SwKind::N, a1, y1, gnd)
        .map_err(LintError::Circuit)?;

    let a2 = n.input("a2");
    let y2 = n.node("y2");
    // The defect: pull-up tied to the real rail instead of vvdd.
    n.transistor(SwKind::P, a2, vdd, y2)
        .map_err(LintError::Circuit)?;
    n.transistor(SwKind::N, a2, y2, gnd)
        .map_err(LintError::Circuit)?;

    Ok(SwitchView {
        netlist: n,
        sleep_transistors: vec![header],
        gated_nodes: vec![y1, y2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defect_names_round_trip() {
        for d in Defect::ALL {
            assert_eq!(Defect::parse(d.name()), Some(d));
            assert_eq!(Defect::parse(&d.name().to_uppercase()), Some(d));
        }
        assert_eq!(Defect::parse("nope"), None);
    }

    #[test]
    fn fixtures_build() {
        for d in Defect::ALL {
            let t = seeded_defect(d).expect("fixture builds");
            assert!(t.name.contains(d.name()));
        }
    }
}
