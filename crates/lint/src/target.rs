//! What the linter runs on: a netlist plus its stimulus contract,
//! optional power intent, and an optional switch-level view of the
//! sleep network.

use lowvolt_circuit::faults::{standard_targets, FaultTarget};
use lowvolt_circuit::netlist::{Netlist, NodeId};
use lowvolt_circuit::switchlevel::{SwNodeId, SwitchNetlist};
use lowvolt_device::units::{Amps, Volts};

use crate::intent::{DomainKind, PowerDomain, PowerIntent, SleepSpec};
use crate::LintError;

/// A switch-level view of a target's power-gating fabric, used by the
/// LV026 sleep-bypass check: with every sleep transistor removed, no
/// gated node may still reach the supply rail through channel edges.
#[derive(Debug, Clone)]
pub struct SwitchView {
    /// The switch-level netlist.
    pub netlist: SwitchNetlist,
    /// Indices (into [`SwitchNetlist::transistors`]) of the sleep
    /// devices.
    pub sleep_transistors: Vec<usize>,
    /// Nodes that belong to the gated domain and must lose their supply
    /// path when the sleep devices are cut.
    pub gated_nodes: Vec<SwNodeId>,
}

/// One unit of lint work.
#[derive(Debug, Clone)]
pub struct LintTarget {
    /// Name used in reports (e.g. `adder8`).
    pub name: String,
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Inputs the stimulus contract drives.
    pub inputs: Vec<NodeId>,
    /// Declared observable outputs.
    pub outputs: Vec<NodeId>,
    /// Clock, for sequential targets.
    pub clock: Option<NodeId>,
    /// Power intent; `None` skips the power pass's intent checks and
    /// prices leakage for the whole design at the default threshold.
    pub intent: Option<PowerIntent>,
    /// Switch-level sleep-network view; `None` skips LV026.
    pub switch_view: Option<SwitchView>,
}

impl LintTarget {
    /// Wraps a fault-campaign target, without power intent.
    #[must_use]
    pub fn from_fault_target(t: FaultTarget) -> LintTarget {
        LintTarget {
            name: t.name,
            netlist: t.netlist,
            inputs: t.inputs,
            outputs: t.outputs,
            clock: t.clock,
            intent: None,
            switch_view: None,
        }
    }

    /// Attaches power intent.
    #[must_use]
    pub fn with_intent(mut self, intent: PowerIntent) -> LintTarget {
        self.intent = Some(intent);
        self
    }

    /// Attaches a switch-level sleep-network view.
    #[must_use]
    pub fn with_switch_view(mut self, view: SwitchView) -> LintTarget {
        self.switch_view = Some(view);
        self
    }
}

/// Per-gate peak-current estimate used to size the default sleep
/// devices: 5 µA of simultaneous switching current per gate, the same
/// order as the MTCMOS sizing example in `lowvolt_core::mtcmos`.
pub const PEAK_CURRENT_PER_GATE: Amps = Amps(5e-6);

/// Logic threshold of the default gated domain.
pub const DEFAULT_LOW_VT: Volts = Volts(0.2);

/// Sleep-device threshold of the default gated domain; well above the
/// logic `V_T`, as the paper's §4 MTCMOS scheme requires.
pub const DEFAULT_HIGH_VT: Volts = Volts(0.55);

/// Supply of the default domain.
pub const DEFAULT_VDD: Volts = Volts(1.0);

/// Delay-penalty target used to size the default sleep device; half the
/// default LV025 warning ceiling, so standard targets lint clean.
pub const DEFAULT_SIZING_PENALTY: f64 = 0.05;

/// Default power intent for a standard datapath: a single MTCMOS-gated
/// domain over the whole netlist, sleep device sized for a 5% delay
/// penalty.
///
/// # Errors
///
/// Returns [`LintError::Core`] if the sleep sizing model rejects the
/// parameters (it cannot for the constants used here unless the netlist
/// has zero gates, which yields zero peak current).
pub fn default_gated_intent(netlist: &Netlist) -> Result<PowerIntent, LintError> {
    let gates = netlist.gate_count().max(1);
    let peak = Amps(PEAK_CURRENT_PER_GATE.0 * gates as f64);
    let sleep = SleepSpec::sized_for_penalty(
        DEFAULT_LOW_VT,
        DEFAULT_HIGH_VT,
        DEFAULT_VDD,
        peak,
        DEFAULT_SIZING_PENALTY,
    )?;
    Ok(PowerIntent::single(
        PowerDomain {
            name: "core".to_string(),
            kind: DomainKind::Gated { sleep },
            body: None,
        },
        netlist,
    ))
}

/// The five standard datapaths (`adder`, `shifter`, `multiplier`,
/// `alu`, `registers`) as lint targets, each annotated with the default
/// gated power intent. These are the designs the CI lint-gate requires
/// to be clean.
///
/// # Errors
///
/// Returns [`LintError::Circuit`] if a generator rejects `width`, or
/// [`LintError::Core`] if sleep sizing fails.
pub fn standard_lint_targets(width: usize) -> Result<Vec<LintTarget>, LintError> {
    let mut out = Vec::with_capacity(5);
    for ft in standard_targets(width)? {
        let mut t = LintTarget::from_fault_target(ft);
        let intent = default_gated_intent(&t.netlist)?;
        t = t.with_intent(intent);
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_targets_carry_gated_intent() {
        let targets = standard_lint_targets(4).expect("generators accept width 4");
        assert_eq!(targets.len(), 5);
        for t in &targets {
            let intent = t.intent.as_ref().expect("intent attached");
            assert_eq!(intent.assignment.len(), t.netlist.gate_count());
            match &intent.domains[0].kind {
                DomainKind::Gated { sleep } => {
                    assert!(sleep.width.0 > 0.0);
                    assert!(sleep.high_vt > sleep.low_vt);
                }
                DomainKind::AlwaysOn { .. } => panic!("default intent must be gated"),
            }
        }
    }

    #[test]
    fn invalid_width_is_a_circuit_error() {
        assert!(matches!(
            standard_lint_targets(0),
            Err(LintError::Circuit(_))
        ));
    }
}
