//! Structured lint findings: severities, stable rule identifiers,
//! netlist locations, and the [`LintReport`] container with human-text
//! and JSON rendering.

use std::fmt;

/// How serious a finding is. Ordered so that `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational; never fails a gate.
    Info,
    /// Suspicious but not necessarily broken; fails a gate only under
    /// `--deny warnings`.
    Warning,
    /// A defect; always fails the gate.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The five analysis pass families. Passes are independent and run in
/// parallel under an `ExecPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// Structural design-rule checks over the gate-level netlist.
    Structural,
    /// Forward X-contamination reachability from unconstrained sources.
    XReachability,
    /// MTCMOS sleep-network, isolation, and body-bias consistency.
    PowerIntent,
    /// Worst-case standby leakage vs. the configured budget.
    Leakage,
    /// Slack-aware static timing at each domain's operating point.
    Timing,
}

impl Pass {
    /// All passes, in the order the engine schedules them.
    pub const ALL: [Pass; 5] = [
        Pass::Structural,
        Pass::XReachability,
        Pass::PowerIntent,
        Pass::Leakage,
        Pass::Timing,
    ];

    /// Short kebab-case name used in output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pass::Structural => "structural",
            Pass::XReachability => "x-reachability",
            Pass::PowerIntent => "power-intent",
            Pass::Leakage => "leakage",
            Pass::Timing => "timing",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable rule identifiers. The numeric id (`LVnnn`) never changes once
/// published; the kebab-case name is the human alias accepted by
/// `--allow` / `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// LV001: a used node with no driver and no primary-input declaration.
    FloatingNode,
    /// LV002: a node driven by more than one gate (or a driven primary input).
    MultipleDrivers,
    /// LV003: a driven node that nothing consumes and no output declares.
    DanglingOutput,
    /// LV004: a combinational cycle (not broken by any flip-flop).
    CombinationalLoop,
    /// LV010: a declared output reachable from an X-producing source.
    XContamination,
    /// LV011: a primary input not covered by the target's stimulus contract.
    UnconstrainedInput,
    /// LV020: a gated domain whose sleep device cannot cut off.
    IncompleteSleepCutoff,
    /// LV021: an always-on gate consuming a gated-domain output without isolation.
    MissingIsolation,
    /// LV022: two domains demand conflicting body biases on one shared rail.
    BodyBiasConflict,
    /// LV023: a body-bias domain needs more reverse bias than its rail allows.
    ExcessiveBodyBias,
    /// LV024: power intent that does not match the netlist it annotates.
    MalformedIntent,
    /// LV025: a sleep device sized so small that the active-delay penalty
    /// exceeds the configured ceiling (or collapses the virtual rail).
    UndersizedSleepDevice,
    /// LV026: a switch-level conduction path from the supply that bypasses
    /// every sleep transistor.
    SleepBypass,
    /// LV030: standby leakage above the configured budget.
    LeakageBudget,
    /// LV040: an endpoint whose worst-path arrival exceeds the required
    /// time at its domain's operating point.
    NegativeSlack,
    /// LV041: timing that is met only without the MTCMOS sleep device's
    /// active-delay penalty — the sized sleep network eats all the slack.
    SlackInfeasibleSleep,
}

impl Rule {
    /// Every rule, ordered by id.
    pub const ALL: [Rule; 16] = [
        Rule::FloatingNode,
        Rule::MultipleDrivers,
        Rule::DanglingOutput,
        Rule::CombinationalLoop,
        Rule::XContamination,
        Rule::UnconstrainedInput,
        Rule::IncompleteSleepCutoff,
        Rule::MissingIsolation,
        Rule::BodyBiasConflict,
        Rule::ExcessiveBodyBias,
        Rule::MalformedIntent,
        Rule::UndersizedSleepDevice,
        Rule::SleepBypass,
        Rule::LeakageBudget,
        Rule::NegativeSlack,
        Rule::SlackInfeasibleSleep,
    ];

    /// The stable `LVnnn` identifier.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::FloatingNode => "LV001",
            Rule::MultipleDrivers => "LV002",
            Rule::DanglingOutput => "LV003",
            Rule::CombinationalLoop => "LV004",
            Rule::XContamination => "LV010",
            Rule::UnconstrainedInput => "LV011",
            Rule::IncompleteSleepCutoff => "LV020",
            Rule::MissingIsolation => "LV021",
            Rule::BodyBiasConflict => "LV022",
            Rule::ExcessiveBodyBias => "LV023",
            Rule::MalformedIntent => "LV024",
            Rule::UndersizedSleepDevice => "LV025",
            Rule::SleepBypass => "LV026",
            Rule::LeakageBudget => "LV030",
            Rule::NegativeSlack => "LV040",
            Rule::SlackInfeasibleSleep => "LV041",
        }
    }

    /// The kebab-case alias accepted by CLI filters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::FloatingNode => "floating-node",
            Rule::MultipleDrivers => "multiple-drivers",
            Rule::DanglingOutput => "dangling-output",
            Rule::CombinationalLoop => "combinational-loop",
            Rule::XContamination => "x-contamination",
            Rule::UnconstrainedInput => "unconstrained-input",
            Rule::IncompleteSleepCutoff => "incomplete-sleep-cutoff",
            Rule::MissingIsolation => "missing-isolation",
            Rule::BodyBiasConflict => "body-bias-conflict",
            Rule::ExcessiveBodyBias => "excessive-body-bias",
            Rule::MalformedIntent => "malformed-intent",
            Rule::UndersizedSleepDevice => "undersized-sleep-device",
            Rule::SleepBypass => "sleep-bypass",
            Rule::LeakageBudget => "leakage-budget",
            Rule::NegativeSlack => "negative-slack",
            Rule::SlackInfeasibleSleep => "slack-infeasible-sleep",
        }
    }

    /// The pass family that emits this rule.
    #[must_use]
    pub fn pass(self) -> Pass {
        match self {
            Rule::FloatingNode
            | Rule::MultipleDrivers
            | Rule::DanglingOutput
            | Rule::CombinationalLoop => Pass::Structural,
            Rule::XContamination | Rule::UnconstrainedInput => Pass::XReachability,
            Rule::IncompleteSleepCutoff
            | Rule::MissingIsolation
            | Rule::BodyBiasConflict
            | Rule::ExcessiveBodyBias
            | Rule::MalformedIntent
            | Rule::UndersizedSleepDevice
            | Rule::SleepBypass => Pass::PowerIntent,
            Rule::LeakageBudget => Pass::Leakage,
            Rule::NegativeSlack | Rule::SlackInfeasibleSleep => Pass::Timing,
        }
    }

    /// The severity a finding of this rule carries unless escalated or
    /// downgraded by the emitting pass.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            Rule::DanglingOutput
            | Rule::XContamination
            | Rule::UnconstrainedInput
            | Rule::UndersizedSleepDevice
            | Rule::SlackInfeasibleSleep => Severity::Warning,
            Rule::NegativeSlack
            | Rule::FloatingNode
            | Rule::MultipleDrivers
            | Rule::CombinationalLoop
            | Rule::IncompleteSleepCutoff
            | Rule::MissingIsolation
            | Rule::BodyBiasConflict
            | Rule::ExcessiveBodyBias
            | Rule::MalformedIntent
            | Rule::SleepBypass
            | Rule::LeakageBudget => Severity::Error,
        }
    }

    /// One-line description for the `--rules` catalog listing.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::FloatingNode => "used node has no driver and is not a primary input",
            Rule::MultipleDrivers => "node is driven by more than one gate output",
            Rule::DanglingOutput => "driven node has no fanout and is not a declared output",
            Rule::CombinationalLoop => "combinational cycle not broken by a flip-flop",
            Rule::XContamination => "declared output reachable from an X-producing source",
            Rule::UnconstrainedInput => "primary input outside the target's stimulus contract",
            Rule::IncompleteSleepCutoff => {
                "gated domain's sleep device cannot cut off standby current"
            }
            Rule::MissingIsolation => {
                "always-on gate consumes a gated-domain output without isolation"
            }
            Rule::BodyBiasConflict => "domains sharing a body rail require conflicting biases",
            Rule::ExcessiveBodyBias => "required reverse body bias exceeds the rail limit",
            Rule::MalformedIntent => "power intent inconsistent with the annotated netlist",
            Rule::UndersizedSleepDevice => "sleep device too small: delay penalty over the ceiling",
            Rule::SleepBypass => "supply path bypasses every sleep transistor",
            Rule::LeakageBudget => "worst-case standby leakage exceeds the budget",
            Rule::NegativeSlack => {
                "endpoint misses the required time at its domain's operating point"
            }
            Rule::SlackInfeasibleSleep => {
                "timing met only without the sleep device's active-delay penalty"
            }
        }
    }

    /// Parses a rule from its `LVnnn` id or kebab-case name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

/// Where in the design a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// The design as a whole (e.g. a budget over the full netlist).
    Design,
    /// A specific net/node.
    Node {
        /// Node index within the netlist.
        index: usize,
        /// The node's debug name.
        name: String,
    },
    /// A specific gate, identified by its index and output net.
    Gate {
        /// Gate index within the netlist.
        index: usize,
        /// Gate kind name (e.g. `Nand2`).
        kind: String,
        /// Debug name of the gate's output node.
        output: String,
    },
    /// A power domain.
    Domain {
        /// The domain's name from the power intent.
        name: String,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Design => f.write_str("design"),
            Location::Node { index, name } => write!(f, "node {name} (#{index})"),
            Location::Gate {
                index,
                kind,
                output,
            } => write!(f, "gate #{index} {kind} -> {output}"),
            Location::Domain { name } => write!(f, "domain {name}"),
        }
    }
}

/// A single lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Severity after any engine-side escalation.
    pub severity: Severity,
    /// Where in the design the finding points.
    pub location: Location,
    /// What is wrong, with concrete values.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the rule's default severity.
    #[must_use]
    pub fn new(rule: Rule, location: Location, message: String, hint: String) -> Diagnostic {
        Diagnostic {
            rule,
            severity: rule.default_severity(),
            location,
            message,
            hint,
        }
    }

    /// Overrides the severity (used e.g. when an undersized sleep device
    /// collapses the rail outright).
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity,
            self.rule.id(),
            self.location,
            self.message
        )?;
        if !self.hint.is_empty() {
            write!(f, "\n    hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// The outcome of linting one target: all surviving diagnostics, sorted
/// by descending severity then rule id then location.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// Name of the linted target (e.g. `adder8`).
    pub target: String,
    /// Findings, sorted by the engine.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when there are no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the report passes a CI gate: no errors, and no warnings
    /// either when `deny_warnings` is set.
    #[must_use]
    pub fn passes_gate(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Renders the report as a JSON object (no external serializer; the
    /// toolkit has none).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 192);
        out.push_str("{\"target\":");
        push_json_str(&mut out, &self.target);
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.errors(),
            self.warnings()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            push_json_str(&mut out, d.rule.id());
            out.push_str(",\"name\":");
            push_json_str(&mut out, d.rule.name());
            out.push_str(",\"pass\":");
            push_json_str(&mut out, d.rule.pass().name());
            out.push_str(",\"severity\":");
            push_json_str(&mut out, d.severity.label());
            out.push_str(",\"location\":");
            push_json_str(&mut out, &d.location.to_string());
            out.push_str(",\"message\":");
            push_json_str(&mut out, &d.message);
            out.push_str(",\"hint\":");
            push_json_str(&mut out, &d.hint);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "{}: clean", self.target);
        }
        writeln!(
            f,
            "{}: {} error(s), {} warning(s)",
            self.target,
            self.errors(),
            self.warnings()
        )?;
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_parse_round_trip() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Rule::ALL {
            assert!(seen.insert(r.id()), "duplicate id {}", r.id());
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(r.name()), Some(r));
            assert_eq!(Rule::parse(&r.id().to_lowercase()), Some(r));
        }
        assert_eq!(Rule::parse("LV999"), None);
        assert_eq!(Rule::parse(""), None);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_gate_semantics() {
        let warn = Diagnostic::new(
            Rule::DanglingOutput,
            Location::Design,
            "w".into(),
            String::new(),
        );
        let err = Diagnostic::new(
            Rule::FloatingNode,
            Location::Design,
            "e".into(),
            String::new(),
        );
        let clean = LintReport {
            target: "t".into(),
            diagnostics: vec![],
        };
        assert!(clean.is_clean() && clean.passes_gate(true));
        let warned = LintReport {
            target: "t".into(),
            diagnostics: vec![warn],
        };
        assert!(warned.passes_gate(false) && !warned.passes_gate(true));
        let errored = LintReport {
            target: "t".into(),
            diagnostics: vec![err],
        };
        assert!(!errored.passes_gate(false));
    }

    #[test]
    fn json_escapes_specials() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let rep = LintReport {
            target: "quo\"te".into(),
            diagnostics: vec![Diagnostic::new(
                Rule::LeakageBudget,
                Location::Domain {
                    name: "core".into(),
                },
                "over budget".into(),
                "raise V_T".into(),
            )],
        };
        let json = rep.to_json();
        assert!(json.contains("\"quo\\\"te\""));
        assert!(json.contains("\"rule\":\"LV030\""));
        assert!(json.contains("\"pass\":\"leakage\""));
        assert!(json.contains("\"errors\":1"));
    }
}
