#![warn(missing_docs)]

//! # lowvolt-lint
//!
//! Static netlist and power-intent analysis — checks that run *without
//! simulating*. Low-voltage designs fail in ways simulation alone won't
//! catch until deep inside a run: sub-threshold leakage paths, sleep
//! transistor (MTCMOS) networks that don't actually cut off standby
//! current, and body-bias domains that drift apart. Waiting for the
//! event simulator's oscillation watchdog or an X-propagation failure to
//! surface a netlist error wastes a full simulation; this crate finds
//! the same classes of defect structurally, before any vector is
//! applied.
//!
//! Five pass families, run in parallel by the [`engine::Linter`] via the
//! deterministic execution engine (`lowvolt_core::exec`):
//!
//! 1. **Structural DRC** ([`passes::structural`]) — undriven/floating
//!    nodes, multi-driver conflicts, dangling gate outputs, and
//!    combinational loops found by Tarjan's SCC algorithm over the
//!    netlist's CSR fanout index.
//! 2. **X-reachability** ([`passes::xreach`]) — which declared outputs
//!    can be contaminated by `X` from unconstrained inputs or floating
//!    nets, by forward reachability over the fanout index.
//! 3. **Power intent** ([`passes::power`]) — every MTCMOS-gated domain
//!    has a sleep device that can actually cut off (the paper's §4
//!    multi-threshold option demands `V_T,sleep > V_T,logic`), no
//!    always-on logic consumes a gated domain's output without
//!    isolation, body-bias domains are internally consistent, and — on
//!    the switch-level view — no conduction path from the supply rail
//!    bypasses every sleep transistor.
//! 4. **Leakage bounds** ([`passes::leakage`]) — worst-case standby
//!    leakage of each power domain from the Eq. 2/Eq. 3 device models,
//!    checked against a configurable budget.
//! 5. **Slack-aware timing** ([`passes::timing`]) — zero-simulation
//!    static timing (`lowvolt_sta`) with each gate priced at its own
//!    domain's `(V_DD, V_T)`, flagging endpoints that miss the required
//!    time (LV040) and MTCMOS sleep sizings whose active-delay penalty
//!    eats all the slack (LV041).
//!
//! Every finding is a structured [`Diagnostic`] (severity, stable rule
//! id, netlist location, message, fix hint), collected into a
//! [`LintReport`] renderable as human text or JSON. The `lowvolt lint`
//! CLI subcommand exposes the engine with `--deny`/`--allow` rule
//! filters and is wired into CI so the five standard datapaths must
//! lint clean.
//!
//! # Example
//!
//! ```
//! use lowvolt_lint::engine::Linter;
//! use lowvolt_lint::target::standard_lint_targets;
//!
//! # fn main() -> Result<(), lowvolt_lint::LintError> {
//! let linter = Linter::with_defaults();
//! for target in standard_lint_targets(8)? {
//!     let report = linter.lint(&target);
//!     assert!(report.is_clean(), "{report}");
//! }
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod diagnostic;
pub mod engine;
pub mod fixtures;
pub mod intent;
pub mod passes;
pub mod target;

pub use config::{LintConfig, UnknownRule};
pub use diagnostic::{Diagnostic, LintReport, Location, Pass, Rule, Severity};
pub use engine::Linter;
pub use fixtures::{seeded_defect, Defect};
pub use intent::{BodyBiasSpec, DomainId, DomainKind, PowerDomain, PowerIntent, SleepSpec};
pub use target::{standard_lint_targets, LintTarget, SwitchView};

use lowvolt_circuit::CircuitError;
use lowvolt_core::error::CoreError;

/// An error while *building* lint inputs (targets, intent). The analysis
/// passes themselves never fail — malformed structures become
/// diagnostics, not errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LintError {
    /// A circuit generator rejected its configuration.
    Circuit(CircuitError),
    /// A power-intent model (e.g. sleep-transistor sizing) rejected its
    /// parameters.
    Core(CoreError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Circuit(e) => write!(f, "{e}"),
            LintError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<CircuitError> for LintError {
    fn from(e: CircuitError) -> LintError {
        LintError::Circuit(e)
    }
}

impl From<CoreError> for LintError {
    fn from(e: CoreError) -> LintError {
        LintError::Core(e)
    }
}
