//! Power-intent annotations for a netlist: which gates belong to which
//! power domain, how each gated domain's sleep network is specified, and
//! which cross-domain nets carry isolation.
//!
//! This is the static metadata the power-intent pass cross-checks
//! against the `lowvolt_core::mtcmos` sizing model and the
//! `lowvolt_device::body` back-gate model — the same role UPF/CPF plays
//! in a commercial flow, scaled down to this toolkit.

use std::collections::BTreeSet;

use lowvolt_circuit::netlist::{GateId, Netlist, NodeId};
use lowvolt_core::mtcmos::{MtcmosSizer, SleepTransistorDesign};
use lowvolt_core::CoreError;
use lowvolt_device::units::{Amps, Micrometers, Volts};

/// Index of a [`PowerDomain`] inside a [`PowerIntent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub usize);

/// The MTCMOS sleep network of a gated domain: a high-`V_T` series
/// device (paper §4, Fig. 6) between the real and virtual rails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepSpec {
    /// Threshold of the gated logic devices.
    pub low_vt: Volts,
    /// Threshold of the sleep device; must exceed `low_vt` for the
    /// network to cut off in standby.
    pub high_vt: Volts,
    /// Supply voltage of the domain.
    pub vdd: Volts,
    /// Peak current the gated block draws through the sleep device.
    pub peak_current: Amps,
    /// Chosen sleep-device width.
    pub width: Micrometers,
}

impl SleepSpec {
    /// Builds a spec whose width is sized by the MTCMOS model for a
    /// target active-delay penalty.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the thresholds or
    /// supply are infeasible, or if no finite width meets the penalty.
    pub fn sized_for_penalty(
        low_vt: Volts,
        high_vt: Volts,
        vdd: Volts,
        peak_current: Amps,
        max_penalty: f64,
    ) -> Result<SleepSpec, CoreError> {
        let sizer = MtcmosSizer::new(peak_current, vdd, low_vt, high_vt)?;
        let design: SleepTransistorDesign = sizer.size_for_penalty(max_penalty)?;
        Ok(SleepSpec {
            low_vt,
            high_vt,
            vdd,
            peak_current,
            width: design.width,
        })
    }
}

/// A back-gate (body-bias) specification for a domain, checked against
/// the square-root body-effect law in `lowvolt_device::body`.
#[derive(Debug, Clone, PartialEq)]
pub struct BodyBiasSpec {
    /// Zero-bias threshold of the domain's devices.
    pub vt0: Volts,
    /// Body-effect coefficient γ.
    pub gamma: f64,
    /// Surface potential `2φ_F`.
    pub surface_potential: Volts,
    /// Standby `V_T` shift the designer wants from reverse body bias.
    pub standby_shift: Volts,
    /// Largest reverse bias the rail generator can deliver.
    pub max_bias: Volts,
    /// Name of the shared body-bias rail this domain connects to.
    pub rail: String,
}

/// Whether a domain is permanently powered or sits behind a sleep
/// device.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainKind {
    /// Always powered; leakage is governed only by the logic `V_T`.
    AlwaysOn {
        /// Threshold of the domain's logic devices.
        logic_vt: Volts,
        /// Supply voltage.
        vdd: Volts,
    },
    /// Power-gated through an MTCMOS sleep network.
    Gated {
        /// The sleep network specification.
        sleep: SleepSpec,
    },
}

/// One power domain.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDomain {
    /// Human-readable name (appears in diagnostics).
    pub name: String,
    /// Always-on or gated.
    pub kind: DomainKind,
    /// Optional back-gate specification.
    pub body: Option<BodyBiasSpec>,
}

/// The full power-intent annotation for one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIntent {
    /// The domains, indexed by [`DomainId`].
    pub domains: Vec<PowerDomain>,
    /// Domain index for each gate, parallel to `Netlist::gates()`. A
    /// length mismatch or out-of-range entry is reported as LV024
    /// rather than panicking.
    pub assignment: Vec<usize>,
    /// Node indices that carry an isolation cell on a gated→always-on
    /// crossing.
    pub isolated: BTreeSet<usize>,
}

impl PowerIntent {
    /// Intent placing every gate of `netlist` in the single given
    /// domain.
    #[must_use]
    pub fn single(domain: PowerDomain, netlist: &Netlist) -> PowerIntent {
        PowerIntent {
            domains: vec![domain],
            assignment: vec![0; netlist.gate_count()],
            isolated: BTreeSet::new(),
        }
    }

    /// Appends a domain and returns its id.
    pub fn add_domain(&mut self, domain: PowerDomain) -> DomainId {
        self.domains.push(domain);
        DomainId(self.domains.len() - 1)
    }

    /// Moves one gate into a domain. Out-of-range gate ids are ignored
    /// (and will surface as LV024 if the assignment is malformed).
    pub fn assign(&mut self, gate: GateId, domain: DomainId) {
        if let Some(slot) = self.assignment.get_mut(gate.index()) {
            *slot = domain.0;
        }
    }

    /// Marks a net as carrying an isolation cell.
    pub fn mark_isolated(&mut self, node: NodeId) {
        self.isolated.insert(node.index());
    }

    /// The domain a gate is assigned to, if the assignment covers it
    /// and points at a real domain.
    #[must_use]
    pub fn domain_of(&self, gate: usize) -> Option<(DomainId, &PowerDomain)> {
        let idx = *self.assignment.get(gate)?;
        self.domains.get(idx).map(|d| (DomainId(idx), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate_netlist() -> Netlist {
        use lowvolt_circuit::netlist::GateKind;
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.gate(GateKind::And2, &[a, b]).expect("and");
        let _y = n.gate(GateKind::Not, &[x]).expect("not");
        n
    }

    #[test]
    fn sized_sleep_spec_is_feasible() {
        let spec =
            SleepSpec::sized_for_penalty(Volts(0.2), Volts(0.55), Volts(1.0), Amps(2e-4), 0.05)
                .expect("feasible sizing");
        assert!(spec.width.0 > 0.0);
        // Reversed thresholds are infeasible by construction.
        assert!(SleepSpec::sized_for_penalty(
            Volts(0.55),
            Volts(0.2),
            Volts(1.0),
            Amps(2e-4),
            0.05
        )
        .is_err());
    }

    #[test]
    fn single_intent_covers_every_gate() {
        let n = two_gate_netlist();
        let intent = PowerIntent::single(
            PowerDomain {
                name: "core".into(),
                kind: DomainKind::AlwaysOn {
                    logic_vt: Volts(0.4),
                    vdd: Volts(1.0),
                },
                body: None,
            },
            &n,
        );
        assert_eq!(intent.assignment.len(), n.gate_count());
        for g in 0..n.gate_count() {
            let (id, d) = intent.domain_of(g).expect("assigned");
            assert_eq!(id, DomainId(0));
            assert_eq!(d.name, "core");
        }
        assert_eq!(intent.domain_of(99), None);
    }

    #[test]
    fn assign_and_isolate() {
        let n = two_gate_netlist();
        let mut intent = PowerIntent::single(
            PowerDomain {
                name: "aon".into(),
                kind: DomainKind::AlwaysOn {
                    logic_vt: Volts(0.4),
                    vdd: Volts(1.0),
                },
                body: None,
            },
            &n,
        );
        let gated = intent.add_domain(PowerDomain {
            name: "gated".into(),
            kind: DomainKind::AlwaysOn {
                logic_vt: Volts(0.4),
                vdd: Volts(1.0),
            },
            body: None,
        });
        intent.assign(GateId::from_index(0), gated);
        assert_eq!(intent.assignment[0], 1);
        // Out-of-range assignment is a no-op, not a panic.
        intent.assign(GateId::from_index(50), gated);
        let node = NodeId::from_index(2);
        intent.mark_isolated(node);
        assert!(intent.isolated.contains(&2));
    }
}
