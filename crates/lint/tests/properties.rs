//! Lint soundness property: any randomly built netlist that passes the
//! structural DRC error-free also simulates cleanly — the event
//! simulator settles without tripping its oscillation or budget
//! watchdogs on random stimulus. In other words, structural lint
//! over-approximates the runtime failure modes it claims to predict.

use lowvolt_circuit::logic::Bit;
use lowvolt_circuit::netlist::{GateKind, Netlist, NodeId};
use lowvolt_circuit::sim::Simulator;
use lowvolt_lint::passes::structural;
use lowvolt_lint::{LintTarget, Severity};
use proptest::prelude::*;

/// Deterministic xorshift64* generator so the netlist shape is a pure
/// function of the proptest-supplied seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

const COMBINATIONAL: [GateKind; 10] = [
    GateKind::Buf,
    GateKind::Not,
    GateKind::And2,
    GateKind::Or2,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::Xor2,
    GateKind::Xnor2,
    GateKind::Mux2,
    GateKind::And3,
];

/// How the forward-declared node (if any) is closed, exercising each
/// structural verdict: a combinational back-edge (must be flagged), a
/// flip-flop closure (legal), or left floating (must be flagged when
/// used).
#[derive(Clone, Copy)]
enum Closure {
    None,
    CombinationalBackEdge,
    FlipFlop,
    LeftFloating,
}

fn build_random(seed: u64, n_inputs: usize, n_gates: usize, closure: Closure) -> LintTarget {
    let mut rng = Rng(seed);
    let mut n = Netlist::new();
    let inputs: Vec<NodeId> = (0..n_inputs).map(|i| n.input(format!("in{i}"))).collect();
    let clk = n.input("clk");

    let fwd = match closure {
        Closure::None => None,
        _ => Some(n.node("fwd")),
    };

    // Candidate fan-in pool grows as gates are added: a DAG by
    // construction, except for any edge through `fwd`.
    let mut pool: Vec<NodeId> = inputs.clone();
    if let Some(f) = fwd {
        pool.push(f);
    }
    let mut last = inputs[0];
    for _ in 0..n_gates {
        let kind = COMBINATIONAL[rng.below(COMBINATIONAL.len())];
        let fanin: Vec<NodeId> = (0..kind.arity())
            .map(|_| pool[rng.below(pool.len())])
            .collect();
        if let Ok(out) = n.gate(kind, &fanin) {
            pool.push(out);
            last = out;
        }
    }

    match (closure, fwd) {
        (Closure::CombinationalBackEdge, Some(f)) => {
            // Close the forward node from the last gate output: if any
            // consumer of `fwd` feeds `last`, this is a genuine loop.
            let _ = n.gate_into(GateKind::Buf, &[last], f);
        }
        (Closure::FlipFlop, Some(f)) => {
            let _ = n.gate_into(GateKind::Dff, &[clk, last], f);
        }
        _ => {}
    }

    LintTarget {
        name: format!("random{seed:x}"),
        netlist: n,
        inputs,
        outputs: vec![last],
        clock: Some(clk),
        intent: None,
        switch_view: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structural_drc_pass_implies_clean_simulation(
        seed in any::<u64>(),
        n_inputs in 2usize..5,
        n_gates in 1usize..48,
        mode in 0usize..4,
        stim in any::<u64>(),
    ) {
        let closure = [
            Closure::None,
            Closure::CombinationalBackEdge,
            Closure::FlipFlop,
            Closure::LeftFloating,
        ][mode];
        let target = build_random(seed, n_inputs, n_gates, closure);

        let findings = structural::run(&target);
        let structurally_sound = findings
            .iter()
            .all(|d| d.severity != Severity::Error);
        if !structurally_sound {
            // Nothing to prove: lint rejected it. (The interesting
            // direction — accepted implies simulable — is below.)
            return Ok(());
        }

        let mut sim = Simulator::new(&target.netlist);
        let mut bits = stim;
        for &input in &target.inputs {
            sim.set_input(input, Bit::from(bits & 1 == 1)).expect("input");
            bits >>= 1;
        }
        if let Some(clk) = target.clock {
            sim.set_input(clk, Bit::Zero).expect("clock");
        }
        // A structurally sound netlist must settle: no oscillation, no
        // exhausted budget. (Floating nets may read X; that is the
        // X-reachability pass's business, not a settling failure.)
        prop_assert!(sim.settle().is_ok(), "accepted netlist failed to settle");
        // And a clock edge on the sequential closure must also settle.
        if let Some(clk) = target.clock {
            sim.set_input(clk, Bit::One).expect("clock");
            prop_assert!(sim.settle().is_ok(), "clock edge failed to settle");
        }
    }

    #[test]
    fn combinational_back_edges_never_go_unflagged(
        seed in any::<u64>(),
        n_gates in 1usize..32,
    ) {
        // Force a guaranteed cycle: fwd -> buf -> ... -> fwd. When the
        // first gate consumes fwd and the closure buffers the last
        // output back, a cycle exists iff fwd reaches last; make that
        // certain by chaining every gate off the previous output.
        let mut n = Netlist::new();
        let _a = n.input("a");
        let fwd = n.node("fwd");
        let mut last = fwd;
        for _ in 0..n_gates {
            last = n.gate(GateKind::Not, &[last]).expect("chain gate");
        }
        let _ = n.gate_into(GateKind::Buf, &[last], fwd).expect("close loop");
        let target = LintTarget {
            name: format!("forced-loop{seed:x}"),
            netlist: n,
            inputs: vec![],
            outputs: vec![last],
            clock: None,
            intent: None,
            switch_view: None,
        };
        let findings = structural::run(&target);
        prop_assert!(
            findings
                .iter()
                .any(|d| d.rule == lowvolt_lint::Rule::CombinationalLoop),
            "a certain cycle of {} gates was not flagged",
            n_gates + 1
        );
    }
}
