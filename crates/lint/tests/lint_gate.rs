//! Acceptance tests for the lint engine: the five standard datapaths
//! must be clean (zero false positives), every seeded-defect fixture
//! must be caught by its pass family, filters and gating behave as the
//! CLI relies on, and results are identical under any thread count.

use lowvolt_circuit::netlist::GateKind;
use lowvolt_exec::ExecPolicy;
use lowvolt_lint::{seeded_defect, standard_lint_targets, Defect, LintConfig, Linter, Rule};

fn rules_of(report: &lowvolt_lint::LintReport) -> Vec<Rule> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn standard_datapaths_lint_clean() {
    let linter = Linter::with_defaults();
    for target in standard_lint_targets(8).expect("standard targets build") {
        let report = linter.lint(&target);
        assert!(
            report.is_clean(),
            "false positive(s) on {}:\n{report}",
            target.name
        );
        assert!(report.passes_gate(true));
    }
}

#[test]
fn floating_node_fixture_is_caught_by_structural_and_xreach() {
    let target = seeded_defect(Defect::FloatingNode).expect("fixture");
    let report = Linter::with_defaults().lint(&target);
    let rules = rules_of(&report);
    assert!(rules.contains(&Rule::FloatingNode), "{report}");
    assert!(rules.contains(&Rule::XContamination), "{report}");
    assert!(report.errors() >= 1);
    assert!(!report.passes_gate(false));
    // The defect is precisely located: the floating diagnostic names the
    // seeded net.
    let float = report
        .diagnostics
        .iter()
        .find(|d| d.rule == Rule::FloatingNode)
        .expect("LV001 present");
    assert!(float.location.to_string().contains("float_net"), "{float}");
}

#[test]
fn combinational_loop_fixture_is_caught() {
    let target = seeded_defect(Defect::CombinationalLoop).expect("fixture");
    let report = Linter::with_defaults().lint(&target);
    let rules = rules_of(&report);
    assert!(rules.contains(&Rule::CombinationalLoop), "{report}");
    assert!(!report.passes_gate(false));
    // The loop is the only defect: no structural false positives ride
    // along.
    assert!(
        rules.iter().all(|r| *r == Rule::CombinationalLoop),
        "unexpected extra findings: {report}"
    );
}

#[test]
fn incomplete_sleep_fixture_is_caught_with_bypass_localised() {
    let target = seeded_defect(Defect::IncompleteSleep).expect("fixture");
    let report = Linter::with_defaults().lint(&target);
    let rules = rules_of(&report);
    assert!(rules.contains(&Rule::IncompleteSleepCutoff), "{report}");
    assert!(rules.contains(&Rule::SleepBypass), "{report}");
    // Only the inverter wired past the header is flagged; the properly
    // gated one is not.
    let bypasses: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::SleepBypass)
        .collect();
    assert_eq!(bypasses.len(), 1, "{report}");
    assert!(bypasses[0].location.to_string().contains("y2"));
}

#[test]
fn leakage_budget_fixture_is_caught() {
    let target = seeded_defect(Defect::LeakageBudget).expect("fixture");
    let report = Linter::with_defaults().lint(&target);
    assert!(rules_of(&report).contains(&Rule::LeakageBudget), "{report}");
    assert!(report.errors() >= 1, "over-budget must be an error");
    // Raising the budget three orders of magnitude clears the finding —
    // the check responds to configuration, not hard-coded numbers.
    let generous = LintConfig::default().with_standby_budget(lowvolt_device::units::Watts(1e-3));
    let report = Linter::new(generous).lint(&target);
    assert!(
        !rules_of(&report).contains(&Rule::LeakageBudget),
        "{report}"
    );
}

#[test]
fn csr_cache_is_invalidated_by_mutation_between_lints() {
    // Lint once (builds and caches the CSR fanout index), mutate the
    // netlist, lint again: the second run must see the new adjacency,
    // proving every mutating method cleared the OnceLock cache.
    let mut targets = standard_lint_targets(8).expect("targets");
    let mut target = targets.remove(0);
    let linter = Linter::with_defaults();
    assert!(linter.lint(&target).is_clean());

    let float = target.netlist.node("late_float");
    let sum0 = target.outputs[0];
    let bad = target
        .netlist
        .gate(GateKind::Xor2, &[sum0, float])
        .expect("gate");
    target.outputs.push(bad);

    let report = linter.lint(&target);
    let rules = rules_of(&report);
    assert!(
        rules.contains(&Rule::FloatingNode),
        "stale fanout index: mutation invisible to re-lint\n{report}"
    );
    // The gate count changed under the intent, which the shape check
    // must also notice on the fresh views.
    assert!(rules.contains(&Rule::MalformedIntent), "{report}");
}

#[test]
fn allow_and_deny_filters_compose() {
    let target = seeded_defect(Defect::FloatingNode).expect("fixture");

    let allowed = LintConfig::default()
        .allow_named("LV001")
        .expect("valid rule");
    let report = Linter::new(allowed).lint(&target);
    let rules = rules_of(&report);
    assert!(!rules.contains(&Rule::FloatingNode));
    assert!(rules.contains(&Rule::XContamination), "{report}");

    let denied = LintConfig::default()
        .deny_named("x-contamination")
        .expect("valid rule");
    let report = Linter::new(denied).lint(&target);
    let xc = report
        .diagnostics
        .iter()
        .find(|d| d.rule == Rule::XContamination)
        .expect("LV010 present");
    assert_eq!(xc.severity, lowvolt_lint::Severity::Error);
}

#[test]
fn deny_warnings_gates_warning_only_reports() {
    // A driven-but-unused node is only a warning (LV003): the report
    // passes the default gate but fails under --deny warnings.
    let mut targets = standard_lint_targets(8).expect("targets");
    let mut target = targets.remove(0);
    let sum0 = target.outputs[0];
    target
        .netlist
        .gate(GateKind::Buf, &[sum0])
        .expect("dead buffer");
    // Keep the intent consistent with the mutated netlist.
    target.intent =
        Some(lowvolt_lint::target::default_gated_intent(&target.netlist).expect("intent"));

    let report = Linter::with_defaults().lint(&target);
    assert_eq!(report.errors(), 0, "{report}");
    assert!(report.warnings() >= 1, "{report}");
    assert!(report.passes_gate(false));
    assert!(!report.passes_gate(true));
}

#[test]
fn json_rendering_is_structured() {
    let target = seeded_defect(Defect::IncompleteSleep).expect("fixture");
    let json = Linter::with_defaults().lint(&target).to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for needle in [
        "\"target\":\"adder8+sleep\"",
        "\"rule\":\"LV020\"",
        "\"rule\":\"LV026\"",
        "\"pass\":\"power-intent\"",
        "\"severity\":\"error\"",
        "\"hint\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}

#[test]
fn reports_are_identical_across_thread_counts() {
    let linter = Linter::with_defaults();
    for defect in Defect::ALL {
        let target = seeded_defect(defect).expect("fixture");
        let serial = linter.lint_with(&ExecPolicy::serial(), &target);
        for threads in [2, 4, 8] {
            let parallel = linter.lint_with(&ExecPolicy::with_threads(threads), &target);
            assert_eq!(serial, parallel, "divergence at {threads} threads");
        }
    }
}

#[test]
fn lint_all_covers_every_target_in_order() {
    let targets = standard_lint_targets(8).expect("targets");
    let reports = Linter::with_defaults().lint_all(&ExecPolicy::with_threads(4), &targets);
    assert_eq!(reports.len(), targets.len());
    for (t, r) in targets.iter().zip(&reports) {
        assert_eq!(t.name, r.target);
        assert!(r.is_clean(), "{r}");
    }
}

#[test]
fn recorded_lint_flushes_counters_and_pass_spans() {
    use lowvolt_obs::{names, MetricsRegistry};

    let target = seeded_defect(Defect::IncompleteSleep).expect("fixture");
    let linter = Linter::with_defaults();

    let run = |threads: usize| {
        let reg = MetricsRegistry::new();
        let report = linter.lint_recorded(&ExecPolicy::with_threads(threads), &reg, &target);
        (reg.snapshot(), report)
    };

    let (snap, report) = run(1);
    assert_eq!(snap.counter(names::LINT_TARGETS), 1);
    assert_eq!(snap.counter(names::LINT_PASSES), 5);
    assert_eq!(
        snap.counter(names::LINT_DIAGNOSTICS),
        report.diagnostics.len() as u64
    );
    for pass in [
        "structural",
        "x-reachability",
        "power-intent",
        "leakage",
        "timing",
    ] {
        let name = format!("{}.{pass}", names::SPAN_LINT_PASS_PREFIX);
        assert!(snap.span(&name).is_some(), "missing span {name}");
    }

    // Counter totals are thread-invariant (exec.chunks excepted).
    let (snap4, _) = run(4);
    for &name in names::COUNTERS {
        if name == names::EXEC_CHUNKS {
            continue;
        }
        assert_eq!(snap.counter(name), snap4.counter(name), "counter {name}");
    }
}

#[test]
fn recorded_lint_all_covers_every_target() {
    use lowvolt_obs::{names, MetricsRegistry};

    let targets = standard_lint_targets(4).expect("targets");
    let reg = MetricsRegistry::new();
    let reports =
        Linter::with_defaults().lint_all_recorded(&ExecPolicy::with_threads(2), &reg, &targets);
    assert_eq!(reports.len(), targets.len());
    let snap = reg.snapshot();
    assert_eq!(snap.counter(names::LINT_TARGETS), targets.len() as u64);
    assert_eq!(snap.counter(names::LINT_PASSES), (5 * targets.len()) as u64);
}
