#![warn(missing_docs)]

//! # lowvolt-cli
//!
//! The command-line face of the toolkit: the paper's §5 methodology as a
//! tool a designer runs, not a library they link.
//!
//! ```text
//! lowvolt profile  --example idea            # fga/bga from execution
//! lowvolt activity --circuit adder8          # alpha from simulation
//! lowvolt optimize --delay-ps 150            # Fig. 3/4 optimum
//! lowvolt compare  --fga 0.1 --bga 0.01      # technology decision
//! lowvolt iv       --vt 0.25                 # device I-V table
//! ```
//!
//! Every subcommand is a function taking parsed arguments and returning
//! its report as a `String`, so the binary stays a thin dispatcher and
//! the tests drive the same code paths the user does.

pub mod args;
pub mod commands;

pub use args::{parse, Parsed};
pub use commands::{run_command, CliError, CliFailure};
