//! Subcommand implementations. Each returns its full report as a string;
//! the binary prints it.

use std::fmt;

use crate::args::Parsed;
use lowvolt_circuit::adder::ripple_carry_adder;
use lowvolt_circuit::alu::alu;
use lowvolt_circuit::compiled::CompiledNetlist;
use lowvolt_circuit::multiplier::array_multiplier;
use lowvolt_circuit::netlist::Netlist;
use lowvolt_circuit::shifter::barrel_shifter_right;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_core::activity::ActivityVars;
use lowvolt_core::energy::{BlockParams, BurstEnergyModel};
use lowvolt_core::report::{fmt_sig, Table};
use lowvolt_device::body::BodyEffect;
use lowvolt_device::mosfet::Mosfet;
use lowvolt_device::soias::SoiasDevice;
use lowvolt_device::technology::Technology;
use lowvolt_device::units::{Hertz, Volts};
use lowvolt_exec::{ByteCache, ExecPolicy};
use lowvolt_io::ImportedCircuit;
use lowvolt_lint::{standard_lint_targets, Rule, UnknownRule};
use lowvolt_obs::{MetricsRegistry, Recorder};
use lowvolt_serve::client::{self, Event as SubmitEvent};
use lowvolt_serve::jobs::{
    self, CampaignPersist, Engine, JobError, NullSink, ProgramSource, RunMode, SourceSpec,
};
use lowvolt_serve::json::Json;
use lowvolt_serve::server::Server;

/// A command failed: carries the message shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> CliError {
        CliError(s)
    }
}

impl From<lowvolt_circuit::CircuitError> for CliError {
    fn from(e: lowvolt_circuit::CircuitError) -> CliError {
        CliError(e.to_string())
    }
}

impl From<lowvolt_core::error::CoreError> for CliError {
    fn from(e: lowvolt_core::error::CoreError) -> CliError {
        CliError(e.to_string())
    }
}

impl From<lowvolt_device::error::DeviceError> for CliError {
    fn from(e: lowvolt_device::error::DeviceError) -> CliError {
        CliError(e.to_string())
    }
}

impl From<JobError> for CliError {
    fn from(e: JobError) -> CliError {
        CliError(e.0)
    }
}

/// Why a command did not succeed — and where its output belongs.
///
/// `Gate` carries a *completed* report whose lint gate failed: the
/// binary prints it to stdout (so `--json` output stays
/// machine-readable even on failure) and exits 1. `Error` is a usage or
/// runtime error whose message belongs on stderr, exit 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliFailure {
    /// Usage or runtime error: message to stderr, exit 2.
    Error(CliError),
    /// Completed report that failed its gate: report to stdout, exit 1.
    Gate(String),
}

impl fmt::Display for CliFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliFailure::Error(e) => write!(f, "{e}"),
            CliFailure::Gate(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliFailure {}

impl From<CliError> for CliFailure {
    fn from(e: CliError) -> CliFailure {
        CliFailure::Error(e)
    }
}

impl From<String> for CliFailure {
    fn from(s: String) -> CliFailure {
        CliFailure::Error(CliError(s))
    }
}

impl From<UnknownRule> for CliFailure {
    fn from(e: UnknownRule) -> CliFailure {
        CliFailure::Error(e.into())
    }
}

impl From<lowvolt_lint::LintError> for CliFailure {
    fn from(e: lowvolt_lint::LintError) -> CliFailure {
        CliFailure::Error(e.into())
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
lowvolt — low-voltage digital system design toolkit

USAGE:
  lowvolt profile  (<file.s> | --example idea|espresso|li|fir) [--budget N]
                   [--hysteresis N] [--blocks] [--duty D] [--metrics-json PATH]
  lowvolt sim      (--circuit adder8|adder16|shifter8|mult8|alu8 | SOURCE)
                   [--patterns random|counting] [--cycles N] [--seed N]
                   [--engine event|compiled] [--metrics-json PATH]
  lowvolt activity (--circuit adder8|adder16|shifter8|mult8|alu8 | SOURCE)
                   [--patterns random|counting] [--cycles N] [--seed N]
  lowvolt optimize [--delay-ps PS] [--throughput-mhz F] [--activity A]
                   [--threads N] [--sta [--circuit NAME | SOURCE] [--width N]]
  lowvolt sta      [--circuit adder|shifter|multiplier|alu|registers|all | SOURCE]
                   [--width N] [--vdd V] [--vt V] [--required-ps PS]
                   [--json] [--threads N] [--metrics-json PATH]
  lowvolt campaign [--width N | SOURCE] [--vectors N] [--seed N] [--threads N]
                   [--engine event|compiled]
                   [--checkpoint PATH [--resume] [--interrupt-after N]]
                   [--max-retries N] [--item-timeout-ms MS] [--cache DIR]
                   [--metrics-json PATH]
  lowvolt circuits
  lowvolt compare  --fga F --bga B [--alpha A] [--block adder|shifter|multiplier]
                   [--vdd V] [--mhz F]
  lowvolt iv       [--vt V] [--soias] [--vds V]
  lowvolt lint     [--circuit NAME|all | SOURCE] [--width N]
                   [--fixture floating|loop|sleep|leakage|slack]
                   [--json] [--deny warnings|RULES] [--allow RULES]
                   [--leakage-budget-uw F] [--threads N] [--rules]
                   [--metrics-json PATH]
  lowvolt disasm   (<file.s> | --example idea|espresso|li|fir)
  lowvolt serve    [--listen ADDR] [--state DIR]
  lowvolt submit   --connect ADDR --request JSON [--metrics-json PATH]
  lowvolt help

SOURCE selects a circuit beyond the built-ins, anywhere --circuit is
accepted: `--netlist PATH` imports a gate-level netlist (.blif
structural BLIF or .bench/.isc ISCAS-85/89, format by extension;
malformed input exits 2 with a single PATH:LINE:COL-anchored message on
stderr), and `--generate N` synthesizes a seeded deterministic random
netlist with N gates (`--seed S`, `--gen-inputs K`, `--dff-fraction F`
shape it; the same seed reproduces the identical circuit on any host).
`lowvolt circuits` prints the full catalog: built-in datapaths,
standard families, import formats, and generator knobs.

`--threads N` selects the worker count for parallel sweeps (N = 0 or the
LOWVOLT_THREADS environment variable mean \"all available cores\");
results are identical for any thread count.

`--metrics-json PATH` collects internal counters and span timings while
the command runs and writes them as JSON to PATH (`-` replaces the
normal report on stdout with the metrics JSON). Counter totals are
identical for any thread count; only wall-clock fields vary.

`campaign` is fault-tolerant: `--checkpoint PATH` journals every
completed injection so a killed run finishes later with `--resume`
(the resumed coverage table is byte-identical to an uninterrupted
run's); `--max-retries N` and `--item-timeout-ms MS` bound each
injection, degrading persistent failures to typed per-injection
errors; `--cache DIR` reuses golden traces across invocations;
`--interrupt-after N` stops after N new injections (the deterministic
interruption hook the resume tests use).

`--engine compiled` selects the bit-parallel levelized engine: gates
are topologically levelized, 64 stimulus vectors are packed per machine
word, and each fault re-evaluates only its difference frontier against
the golden planes. Classifications, the coverage table, and settled
activity are byte-identical to the event engine on supported circuits;
structures only the event engine can simulate (combinational cycles,
bridge faults, gated flip-flop clocks, register feedback) are refused
with an explanatory error. Under `--engine compiled` the checkpoint,
`--interrupt-after`, and resume unit is a 64-vector stimulus *word*,
not an injection, and a journal written by one engine is not replayed
by the other (the mismatched records are recomputed with a warning).

`sta` runs zero-simulation static timing analysis over a standard
datapath: the critical path as a named gate chain, per-endpoint arrival
and slack, all priced from the alpha-power-law delay model at the
`--vdd`/`--vt` operating point. `--required-ps` sets an explicit
required time (default: the critical delay itself, pinning worst slack
to zero).

`optimize --sta` replaces the 101-stage ring-oscillator proxy with the
chosen circuit's own critical path from static timing analysis:
`--delay-ps` then budgets each critical-path gate (the whole-path
target is PS x path depth), switching energy prices the circuit's
switched capacitance, and leakage its gate count — an optimum per
circuit rather than per proxy.

`serve` starts the job daemon: a TCP service speaking one JSON object
per line that runs the same five job kinds (campaign, optimize, lint,
sta, profile) with byte-identical payloads. Campaign jobs execute in
journal-backed shards under `--state DIR`, so a killed daemon resumes
completed work when the job is resubmitted. `submit` sends one request
line (`--request '{\"job\":\"campaign\",...}'`) to a running daemon,
streams progress to stderr, and prints the result payload to stdout
exactly as the equivalent direct command would.

Run any experiment of the paper with the separate `regen` binary.";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns [`CliFailure::Error`] with a user-facing message for unknown
/// commands, bad arguments, or failed runs, and [`CliFailure::Gate`]
/// with the full report when `lint` completes but the gate fails.
pub fn run_command(parsed: &Parsed) -> Result<String, CliFailure> {
    if parsed.command == "lint" {
        return lint(parsed);
    }
    if parsed.command == "submit" {
        return submit(parsed);
    }
    match parsed.command.as_str() {
        "profile" => profile(parsed),
        "sim" => sim(parsed),
        "activity" => activity(parsed),
        "optimize" => optimize(parsed),
        "sta" => sta(parsed),
        "campaign" => campaign(parsed),
        "circuits" => circuits(),
        "compare" => compare(parsed),
        "iv" => iv(parsed),
        "disasm" => disasm(parsed),
        "serve" => serve(parsed),
        "help" | "" => Ok(USAGE.to_string()),
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
    .map_err(CliFailure::Error)
}

/// Resolves the execution policy for a command: `--threads N` when
/// given (0 = all cores), else the `LOWVOLT_THREADS` environment
/// variable, else the machine's available parallelism.
fn exec_policy(parsed: &Parsed) -> Result<ExecPolicy, CliError> {
    Ok(match parsed.threads()? {
        Some(n) => ExecPolicy::with_threads(n),
        None => ExecPolicy::from_env(),
    })
}

/// Metrics collection for one command invocation, driven by
/// `--metrics-json PATH`. Without the flag the recorder is the shared
/// noop and instrumentation costs nothing; with it, a
/// [`MetricsRegistry`] collects counters and spans, and [`Metrics::finish`]
/// either writes the JSON report to PATH or (PATH = `-`) returns it as
/// the command's stdout output in place of the normal report.
#[derive(Debug)]
struct Metrics {
    registry: Option<MetricsRegistry>,
    dest: Option<String>,
}

impl Metrics {
    fn from_args(parsed: &Parsed) -> Result<Metrics, CliError> {
        let dest = match parsed.get("metrics-json") {
            None => None,
            Some("") => {
                return Err(CliError(
                    "--metrics-json expects a file path (or `-` for stdout)".to_string(),
                ))
            }
            Some(path) => Some(path.to_string()),
        };
        Ok(Metrics {
            registry: dest.as_ref().map(|_| MetricsRegistry::new()),
            dest,
        })
    }

    fn recorder(&self) -> &dyn Recorder {
        match &self.registry {
            Some(reg) => reg,
            None => lowvolt_obs::noop(),
        }
    }

    fn finish(&self, out: String) -> Result<String, CliError> {
        let (Some(reg), Some(dest)) = (&self.registry, &self.dest) else {
            return Ok(out);
        };
        let json = reg.snapshot().to_json();
        if dest == "-" {
            return Ok(json);
        }
        std::fs::write(dest, json)
            .map_err(|e| CliError(format!("cannot write metrics to {dest}: {e}")))?;
        Ok(out)
    }
}

fn profile(parsed: &Parsed) -> Result<String, CliError> {
    let source = if let Some(example) = parsed.get("example") {
        ProgramSource::Example(example.to_string())
    } else if let Some(path) = parsed.positional.first() {
        ProgramSource::Text(
            std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?,
        )
    } else {
        return Err(CliError(
            "profile needs a source file or --example NAME".to_string(),
        ));
    };
    let mut spec = jobs::ProfileSpec::new(source);
    spec.budget = parsed.get_u64("budget")?.unwrap_or(200_000_000);
    spec.hysteresis = parsed.get_u64("hysteresis")?.unwrap_or(1);
    spec.duty = parsed.get_f64("duty")?;
    spec.blocks = parsed.has("blocks");
    let metrics = Metrics::from_args(parsed)?;
    let out = jobs::run_profile_job(metrics.recorder(), &spec)?;
    metrics.finish(out)
}

/// Builds one of the named demo circuits, returning its netlist and
/// stimulus-facing input nodes.
fn build_circuit(
    circuit: &str,
) -> Result<(Netlist, Vec<lowvolt_circuit::netlist::NodeId>), CliError> {
    let mut n = Netlist::new();
    let inputs = match circuit {
        "adder8" => ripple_carry_adder(&mut n, 8)?.input_nodes(),
        "adder16" => ripple_carry_adder(&mut n, 16)?.input_nodes(),
        "shifter8" => barrel_shifter_right(&mut n, 8)
            .map_err(|e| CliError(e.to_string()))?
            .input_nodes(),
        "mult8" => array_multiplier(&mut n, 8)
            .map_err(|e| CliError(e.to_string()))?
            .input_nodes(),
        "alu8" => alu(&mut n, 8)?.input_nodes(),
        other => {
            return Err(CliError(format!(
                "unknown circuit `{other}` (adder8, adder16, shifter8, mult8, alu8)"
            )))
        }
    };
    Ok((n, inputs))
}

fn pattern_source(parsed: &Parsed, width: usize, seed: u64) -> Result<PatternSource, CliError> {
    match parsed.get("patterns").unwrap_or("random") {
        "random" => Ok(PatternSource::wide_random(width, seed)?),
        "counting" => Ok(PatternSource::counting(width.min(64), 0)?),
        other => Err(CliError(format!(
            "unknown pattern kind `{other}` (random, counting)"
        ))),
    }
}

/// Builds the job-layer circuit source from the `--netlist` /
/// `--generate` flags: [`SourceSpec::Builtin`] when neither is present
/// (the command falls back to its `--circuit` selection).
fn source_spec(parsed: &Parsed) -> Result<SourceSpec, CliError> {
    let netlist_flag = parsed.get("netlist");
    let generate_count = parsed.get_u64("generate")?;
    match (netlist_flag, generate_count) {
        (Some(_), Some(_)) => Err(CliError(
            "--netlist and --generate are mutually exclusive".to_string(),
        )),
        (Some(""), None) => Err(CliError(
            "--netlist expects a file path (.blif or .bench)".to_string(),
        )),
        (Some(path), None) => Ok(SourceSpec::Netlist {
            path: path.to_string(),
        }),
        (None, Some(gates)) => Ok(SourceSpec::Generate {
            gates,
            seed: parsed.get_u64("seed")?.unwrap_or(42),
            inputs: parsed.get_u64("gen-inputs")?,
            dff_fraction: parsed.get_f64("dff-fraction")?,
        }),
        (None, None) => Ok(SourceSpec::Builtin),
    }
}

/// Resolves the `--netlist` / `--generate` flags to an imported
/// circuit, or `None` when neither flag is present.
///
/// Parse failures surface as a single `PATH:LINE:COL: message` error —
/// the binary routes that to stderr with exit 2, with no partial
/// report on stdout.
fn imported_source(parsed: &Parsed) -> Result<Option<ImportedCircuit>, CliError> {
    Ok(source_spec(parsed)?.resolve()?)
}

/// `lowvolt circuits`: the catalog of circuit sources — built-in
/// datapaths (with their sizes), standard lint/STA families, supported
/// import formats, and the generator knobs.
fn circuits() -> Result<String, CliError> {
    let mut out = String::from("built-in datapaths (sim/activity --circuit NAME):\n");
    let mut t = Table::new(["name", "gates", "nodes", "inputs"]);
    for name in ["adder8", "adder16", "shifter8", "mult8", "alu8"] {
        let (n, inputs) = build_circuit(name)?;
        t.push_row([
            name.to_string(),
            n.gate_count().to_string(),
            n.node_count().to_string(),
            inputs.len().to_string(),
        ]);
    }
    out.push_str(&t.to_string());

    out.push_str("\nstandard families (lint/sta/optimize --circuit NAME, sized by --width):\n");
    let mut t = Table::new(["name", "gates @ width 8", "sequential"]);
    for target in standard_lint_targets(8)? {
        t.push_row([
            target.name.trim_end_matches(char::is_numeric).to_string(),
            target.netlist.gate_count().to_string(),
            if target.clock.is_some() { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&t.to_string());

    out.push_str(
        "\nimport formats (--netlist PATH, detected by extension):\n\
         \x20 .blif         structural BLIF: .model/.inputs/.outputs/.names covers,\n\
         \x20               .latch (rising-edge, one global clock) -> flip-flops\n\
         \x20 .bench, .isc  ISCAS-85/89: INPUT/OUTPUT, AND OR NAND NOR XOR XNOR NOT\n\
         \x20               BUF at any fanin, DFF with an implicit global clock\n\
         \nsynthetic circuits (--generate N, deterministic per seed):\n\
         \x20 --generate N       gate count (1..=2000000)\n\
         \x20 --seed S           PRNG seed (default 42); same seed, same netlist\n\
         \x20 --gen-inputs K     primary inputs (default 16, 1..=4096)\n\
         \x20 --dff-fraction F   flip-flop share 0.0..=0.5 (default 0.1; 0 = pure\n\
         \x20                    combinational, no clock)\n\
         \nEvery lint, campaign (either engine), sim, sta, and optimize --sta run\n\
         accepts --netlist or --generate in place of --circuit.\n",
    );
    Ok(out)
}

fn engine_flag(parsed: &Parsed) -> Result<Engine, CliError> {
    Ok(Engine::parse(parsed.get("engine").unwrap_or("event"))?)
}

/// Event-driven simulation of a demo circuit under a pattern stream,
/// reporting settle statistics and extracted switching activity. The
/// instrumentation showcase: with `--metrics-json` the simulator's
/// internal counters (`sim.events.processed`, `sim.settle.iterations`,
/// `sim.heap.pushes`, per-net transitions) and per-stage spans land in
/// the metrics report.
fn sim(parsed: &Parsed) -> Result<String, CliError> {
    let metrics = Metrics::from_args(parsed)?;
    let cycles = parsed.get_u64("cycles")?.unwrap_or(256) as usize;
    let seed = parsed.get_u64("seed")?.unwrap_or(42);
    let engine = engine_flag(parsed)?;
    let (circuit, n, inputs) = match imported_source(parsed)? {
        Some(c) => (c.name.clone(), c.netlist, c.inputs),
        None => {
            let name = parsed.get("circuit").unwrap_or("adder8");
            let (n, inputs) = build_circuit(name)?;
            (name.to_string(), n, inputs)
        }
    };
    let mut source = pattern_source(parsed, inputs.len(), seed)?;
    let warmup = (cycles / 10).max(4);
    let report = match engine {
        Engine::Event => {
            let mut sim = Simulator::new(&n);
            sim.set_recorder(metrics.recorder());
            sim.measure_activity(&mut source, &inputs, cycles + warmup, warmup)?
        }
        Engine::Compiled => {
            let comp = CompiledNetlist::compile(&n)?;
            comp.measure_activity(
                &n,
                metrics.recorder(),
                &mut source,
                &inputs,
                cycles + warmup,
                warmup,
            )?
        }
    };
    // The compiled engine reports settled activity only; the event engine
    // additionally counts glitch transitions, so alpha may differ.
    let engine_line = match engine {
        Engine::Event => "",
        Engine::Compiled => "engine: compiled (bit-parallel, settled activity)\n",
    };
    let out = format!(
        "circuit: {circuit} ({} gates, {} nodes)\n{engine_line}simulated {} cycles ({} warmup)\nmean alpha = {:.4}\nswitched capacitance = {:.1} fF/cycle\n",
        n.gate_count(),
        n.node_count(),
        cycles,
        warmup,
        report.mean_transition_probability(),
        report.switched_capacitance_per_cycle().to_femtofarads(),
    );
    metrics.finish(out)
}

fn activity(parsed: &Parsed) -> Result<String, CliError> {
    let cycles = parsed.get_u64("cycles")?.unwrap_or(520) as usize;
    let seed = parsed.get_u64("seed")?.unwrap_or(42);
    let (circuit, n, inputs) = match imported_source(parsed)? {
        Some(c) => (c.name.clone(), c.netlist, c.inputs),
        None => {
            let name = parsed.get("circuit").unwrap_or("adder8");
            let (n, inputs) = build_circuit(name)?;
            (name.to_string(), n, inputs)
        }
    };
    let mut source = pattern_source(parsed, inputs.len(), seed)?;
    let mut sim = Simulator::new(&n);
    let warmup = (cycles / 10).max(4);
    let report = sim.measure_activity(&mut source, &inputs, cycles + warmup, warmup)?;
    Ok(format!(
        "circuit: {circuit} ({} gates, {} nodes)\n{}\nmean alpha = {:.4}\ncapacitance-weighted alpha = {:.4}\nswitched capacitance = {:.1} fF/cycle\n",
        n.gate_count(),
        n.node_count(),
        report.histogram(12)?,
        report.mean_transition_probability(),
        report.weighted_transition_probability(),
        report.switched_capacitance_per_cycle().to_femtofarads(),
    ))
}

/// Static timing analysis over the standard datapaths: named critical
/// path, per-endpoint arrival/required/slack, text or JSON.
fn sta(parsed: &Parsed) -> Result<String, CliError> {
    let metrics = Metrics::from_args(parsed)?;
    let policy = exec_policy(parsed)?;
    let mut spec = jobs::StaSpec::new(source_spec(parsed)?);
    spec.circuit = parsed.get("circuit").unwrap_or("all").to_string();
    spec.width = parsed.get_u64("width")?.unwrap_or(8) as usize;
    spec.vdd = parsed.get_f64("vdd")?;
    spec.vt = parsed.get_f64("vt")?;
    spec.required_ps = parsed.get_f64("required-ps")?;
    spec.json = parsed.has("json");
    let out = jobs::run_sta_job(&policy, metrics.recorder(), &spec)?;
    metrics.finish(out)
}

fn optimize(parsed: &Parsed) -> Result<String, CliError> {
    let mut spec = jobs::OptimizeSpec::new();
    spec.delay_ps = parsed.get_f64("delay-ps")?.unwrap_or(150.0);
    spec.throughput_mhz = parsed.get_f64("throughput-mhz")?.unwrap_or(1.0);
    spec.activity = parsed.get_f64("activity")?.unwrap_or(1.0);
    if parsed.has("sta") {
        spec.sta = Some(jobs::OptimizeStaTarget {
            source: source_spec(parsed)?,
            circuit: parsed.get("circuit").unwrap_or("adder").to_string(),
            width: parsed.get_u64("width")?.unwrap_or(8) as usize,
        });
    }
    let policy = exec_policy(parsed)?;
    Ok(jobs::run_optimize_job(&policy, &spec, &mut NullSink)?)
}

fn campaign(parsed: &Parsed) -> Result<String, CliError> {
    let width = parsed.get_u64("width")?.unwrap_or(8) as usize;
    let vectors = parsed.get_u64("vectors")?.unwrap_or(32) as usize;
    let seed = parsed.get_u64("seed")?.unwrap_or(42);
    let max_retries = parsed.get_u64("max-retries")?.unwrap_or(0) as u32;
    let item_timeout_ms = parsed.get_u64("item-timeout-ms")?;
    let interrupt_after = parsed.get_u64("interrupt-after")?.map(|n| n as usize);
    let resume = parsed.has("resume");
    let checkpoint_path = match parsed.get("checkpoint") {
        Some("") => {
            return Err(CliError(
                "--checkpoint expects a journal file path".to_string(),
            ))
        }
        other => other.map(str::to_string),
    };
    if resume && checkpoint_path.is_none() {
        return Err(CliError("--resume requires --checkpoint PATH".to_string()));
    }
    if interrupt_after.is_some() && checkpoint_path.is_none() {
        return Err(CliError(
            "--interrupt-after requires --checkpoint PATH (the interrupted work \
             would otherwise be unrecoverable)"
                .to_string(),
        ));
    }
    let cache = match parsed.get("cache") {
        Some("") => return Err(CliError("--cache expects a directory path".to_string())),
        Some(dir) => Some(ByteCache::open(dir).map_err(|e| CliError(e.to_string()))?),
        None => None,
    };
    let policy = exec_policy(parsed)?;
    let metrics = Metrics::from_args(parsed)?;
    let mut spec = jobs::CampaignSpec::new(source_spec(parsed)?);
    spec.width = width;
    spec.vectors = vectors;
    spec.seed = seed;
    spec.engine = engine_flag(parsed)?;
    spec.max_retries = max_retries;
    spec.item_timeout_ms = item_timeout_ms;
    let persist = CampaignPersist {
        checkpoint: checkpoint_path.as_deref(),
        resume,
        cache: cache.as_ref(),
        mode: RunMode::Once { interrupt_after },
        announce: true,
    };
    let outcome =
        jobs::run_campaign_job(&policy, metrics.recorder(), &spec, &persist, &mut NullSink)?;
    metrics.finish(outcome.payload)
}

fn compare(parsed: &Parsed) -> Result<String, CliError> {
    let fga = parsed
        .get_f64("fga")?
        .ok_or_else(|| CliError("compare requires --fga".to_string()))?;
    let bga = parsed
        .get_f64("bga")?
        .ok_or_else(|| CliError("compare requires --bga".to_string()))?;
    let alpha = parsed.get_f64("alpha")?.unwrap_or(0.5);
    let vdd = Volts(parsed.get_f64("vdd")?.unwrap_or(1.0));
    let mhz = parsed.get_f64("mhz")?.unwrap_or(1.0);
    let block = match parsed.get("block").unwrap_or("adder") {
        "adder" => BlockParams::adder_8bit()?,
        "shifter" => BlockParams::shifter_8bit()?,
        "multiplier" => BlockParams::multiplier_8x8()?,
        other => {
            return Err(CliError(format!(
                "unknown block `{other}` (adder, shifter, multiplier)"
            )))
        }
    };
    let activity = ActivityVars::new(fga, bga, alpha).map_err(|e| CliError(e.to_string()))?;
    let model =
        BurstEnergyModel::new(vdd, Hertz(mhz * 1e6)).map_err(|e| CliError(e.to_string()))?;
    let device = SoiasDevice::paper_fig6();
    let technologies = [
        Technology::soi_fixed_vt_device(device.front_device(Volts(3.0))),
        Technology::soias(device, Volts(3.0)).map_err(|e| CliError(e.to_string()))?,
        Technology::mtcmos(Volts(0.084), Volts(0.55), vdd).map_err(|e| CliError(e.to_string()))?,
        Technology::substrate_bias(BodyEffect::with_vt0(Volts(0.084)), Volts(2.0))
            .map_err(|e| CliError(e.to_string()))?,
    ];
    let base = model.energy_per_cycle(&technologies[0], &block, activity).0;
    let mut best: (String, f64) = (technologies[0].name().to_string(), base);
    let mut t = Table::new(["technology", "E/cycle (J)", "vs fixed-V_T SOI"]);
    for tech in &technologies {
        let e = model.energy_per_cycle(tech, &block, activity).0;
        if e < best.1 {
            best = (tech.name().to_string(), e);
        }
        t.push_row([
            tech.name().to_string(),
            fmt_sig(e, 3),
            format!("{:.3}x", e / base),
        ]);
    }
    Ok(format!(
        "block: {}, activity: {activity}\n{t}\nrecommendation: {} ({} J/cycle)\n",
        block.name,
        best.0,
        fmt_sig(best.1, 3)
    ))
}

fn iv(parsed: &Parsed) -> Result<String, CliError> {
    let vds = Volts(parsed.get_f64("vds")?.unwrap_or(1.0));
    let mut out = String::new();
    if parsed.has("soias") {
        let d = SoiasDevice::paper_fig6();
        let mut t = Table::new(["V_gf (V)", "I_D @ V_gb=0 (A)", "I_D @ V_gb=3 (A)"]);
        for i in 0..=20 {
            let vgf = Volts(0.05 * f64::from(i));
            t.push_row([
                format!("{:.2}", vgf.0),
                fmt_sig(d.front_device(Volts(0.0)).drain_current(vgf, vds).0, 3),
                fmt_sig(d.front_device(Volts(3.0)).drain_current(vgf, vds).0, 3),
            ]);
        }
        out.push_str(&format!(
            "SOIAS device, V_ds = {} V; V_T = {:.3} / {:.3} V\n{t}",
            vds.0,
            d.vt(Volts(0.0)).0,
            d.vt(Volts(3.0)).0
        ));
    } else {
        let vt = Volts(parsed.get_f64("vt")?.unwrap_or(0.25));
        let m = Mosfet::nmos_with_vt(vt);
        let mut t = Table::new(["V_gs (V)", "I_D (A)"]);
        for i in 0..=20 {
            let vgs = Volts(0.05 * f64::from(i));
            t.push_row([
                format!("{:.2}", vgs.0),
                fmt_sig(m.drain_current(vgs, vds).0, 3),
            ]);
        }
        out.push_str(&format!(
            "NMOS, V_T = {} V, V_ds = {} V, S_th = {:.1} mV/dec\n{t}",
            vt.0,
            vds.0,
            m.subthreshold_slope().0 * 1e3
        ));
    }
    Ok(out)
}

impl From<UnknownRule> for CliError {
    fn from(e: UnknownRule) -> CliError {
        CliError(format!("{e} (see `lowvolt lint --rules` for the catalog)"))
    }
}

impl From<lowvolt_lint::LintError> for CliError {
    fn from(e: lowvolt_lint::LintError) -> CliError {
        CliError(e.to_string())
    }
}

fn rule_catalog() -> String {
    let mut t = Table::new(["id", "name", "pass", "severity", "summary"]);
    for r in Rule::ALL {
        t.push_row([
            r.id().to_string(),
            r.name().to_string(),
            r.pass().name().to_string(),
            r.default_severity().label().to_string(),
            r.summary().to_string(),
        ]);
    }
    format!("lint rule catalog:\n{t}")
}

fn lint(parsed: &Parsed) -> Result<String, CliFailure> {
    if parsed.has("rules") {
        return Ok(rule_catalog());
    }
    let policy = exec_policy(parsed)?;
    let mut spec = jobs::LintSpec::new(source_spec(parsed).map_err(CliFailure::Error)?);
    spec.fixture = parsed.get("fixture").map(str::to_string);
    spec.circuit = parsed.get("circuit").unwrap_or("all").to_string();
    spec.width = parsed.get_u64("width")?.unwrap_or(8) as usize;
    spec.json = parsed.has("json");
    spec.allow = parsed.get("allow").map(str::to_string);
    spec.deny = parsed.get("deny").map(str::to_string);
    spec.leakage_budget_uw = parsed.get_f64("leakage-budget-uw")?;
    let metrics = Metrics::from_args(parsed).map_err(CliFailure::Error)?;
    let outcome = jobs::run_lint_job(&policy, metrics.recorder(), &spec)
        .map_err(|e| CliFailure::Error(e.into()))?;
    let out = metrics.finish(outcome.payload).map_err(CliFailure::Error)?;
    if outcome.gate_failed {
        Err(CliFailure::Gate(out))
    } else {
        Ok(out)
    }
}

fn disasm(parsed: &Parsed) -> Result<String, CliError> {
    let source = if let Some(example) = parsed.get("example") {
        jobs::example_source(example)?
    } else if let Some(path) = parsed.positional.first() {
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?
    } else {
        return Err(CliError(
            "disasm needs a source file or --example NAME".to_string(),
        ));
    };
    let program = lowvolt_isa::assemble(&source).map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "{} instructions, entry @{}\n\n{}",
        program.insts.len(),
        program.entry,
        program.listing()
    ))
}

/// `lowvolt serve`: bind the job daemon and block until a `shutdown`
/// command arrives. The listening line is printed (and flushed) before
/// the accept loop starts, so scripts can parse the bound port from a
/// `--listen 127.0.0.1:0` ephemeral bind.
fn serve(parsed: &Parsed) -> Result<String, CliError> {
    let listen = match parsed.get("listen") {
        Some("") => {
            return Err(CliError(
                "--listen expects HOST:PORT (use 127.0.0.1:0 for an ephemeral port)".to_string(),
            ))
        }
        Some(addr) => addr,
        None => "127.0.0.1:7651",
    };
    let state_dir = match parsed.get("state") {
        Some("") => return Err(CliError("--state expects a directory path".to_string())),
        Some(dir) => dir.to_string(),
        None => ".lowvolt-serve".to_string(),
    };
    let server = Server::bind(listen, &state_dir).map_err(|e| CliError(e.to_string()))?;
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(
            stdout,
            "lowvolt-serve listening on {}\nstate: {state_dir}",
            server.local_addr()
        );
        let _ = stdout.flush();
    }
    server.run().map_err(|e| CliError(e.to_string()))?;
    Ok("lowvolt-serve: shut down".to_string())
}

/// `lowvolt submit`: send one request line to a running daemon, stream
/// progress/warning events to stderr, and print the result payload to
/// stdout — byte-identical to the equivalent direct command.
fn submit(parsed: &Parsed) -> Result<String, CliFailure> {
    let addr = match parsed.get("connect") {
        Some("") | None => {
            return Err(CliFailure::Error(CliError(
                "submit requires --connect HOST:PORT".to_string(),
            )))
        }
        Some(addr) => addr,
    };
    let request = match parsed.get("request") {
        Some("") | None => {
            return Err(CliFailure::Error(CliError(
                "submit requires --request JSON (one job or command object)".to_string(),
            )))
        }
        Some(json) => json,
    };
    let metrics_dest = match parsed.get("metrics-json") {
        Some("") => {
            return Err(CliFailure::Error(CliError(
                "--metrics-json expects a file path (or `-` for stdout)".to_string(),
            )))
        }
        other => other.map(str::to_string),
    };
    let quiet = parsed.has("quiet");
    // A control command (`{"cmd": ...}`) has a single reply line, not a
    // job event stream: relay the daemon's answer verbatim.
    if let Ok(v) = Json::parse(request) {
        if let Some(cmd) = v.get("cmd").and_then(Json::as_str) {
            let answer =
                client::control(addr, cmd).map_err(|e| CliFailure::Error(CliError(e.0)))?;
            if let Ok(event) = Json::parse(&answer) {
                if event.get("event").and_then(Json::as_str) == Some("error") {
                    let message = event
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("daemon reported an error")
                        .to_string();
                    return Err(CliFailure::Error(CliError(message)));
                }
            }
            return Ok(answer);
        }
    }
    let mut on_event = |event: &SubmitEvent| {
        if quiet {
            return;
        }
        match event {
            SubmitEvent::Accepted { id } => eprintln!("job {id} accepted"),
            SubmitEvent::Progress { done, total } => eprintln!("progress: {done}/{total}"),
            SubmitEvent::Warning { message } => eprintln!("warning: {message}"),
        }
    };
    let outcome = client::submit_line(addr, request, &mut on_event)
        .map_err(|e| CliFailure::Error(CliError(e.0)))?;
    let payload = match &metrics_dest {
        Some(dest) if dest == "-" => outcome.metrics.clone(),
        Some(dest) => {
            std::fs::write(dest, &outcome.metrics).map_err(|e| {
                CliFailure::Error(CliError(format!("cannot write metrics to {dest}: {e}")))
            })?;
            outcome.payload
        }
        None => outcome.payload,
    };
    if outcome.status == "gate_failed" {
        return Err(CliFailure::Gate(payload));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(args: &[&str]) -> Result<String, CliError> {
        // Collapse the failure kinds: these tests assert on message
        // content; stdout/stderr routing is covered by
        // `failure_kinds_route_reports_and_errors` and the binary
        // end-to-end tests.
        run_command(&parse(
            &args.iter().map(ToString::to_string).collect::<Vec<_>>(),
        ))
        .map_err(|f| match f {
            CliFailure::Error(e) => e,
            CliFailure::Gate(report) => CliError(report),
        })
    }

    #[test]
    fn failure_kinds_route_reports_and_errors() {
        let parse1 =
            |args: &[&str]| parse(&args.iter().map(ToString::to_string).collect::<Vec<_>>());
        // A completed-but-failing lint is a Gate failure carrying the
        // report; a usage error stays an Error.
        match run_command(&parse1(&["lint", "--fixture", "loop"])) {
            Err(CliFailure::Gate(report)) => assert!(report.contains("LV004"), "{report}"),
            other => panic!("expected gate failure, got {other:?}"),
        }
        match run_command(&parse1(&["lint", "--fixture", "nonsuch"])) {
            Err(CliFailure::Error(e)) => assert!(e.0.contains("nonsuch")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.0.contains("frobnicate"));
    }

    #[test]
    fn profile_example_idea() {
        let out = run(&["profile", "--example", "idea", "--budget", "100000000"]).unwrap();
        assert!(out.contains("Total Instructions"));
        assert!(out.contains("Multiplications"));
        assert!(out.contains("program output:"));
    }

    #[test]
    fn profile_with_blocks() {
        let out = run(&["profile", "--example", "fir", "--blocks"]).unwrap();
        assert!(out.contains("hot basic blocks"));
        assert!(out.contains("dynamic instrs"));
    }

    #[test]
    fn profile_with_duty() {
        let out = run(&["profile", "--example", "idea", "--duty", "0.2"]).unwrap();
        assert!(out.contains("bursty execution"));
        assert!(out.contains("Total Instructions"));
    }

    #[test]
    fn profile_needs_a_source() {
        let err = run(&["profile"]).unwrap_err();
        assert!(err.0.contains("--example"));
        let err = run(&["profile", "--example", "nonsuch"]).unwrap_err();
        assert!(err.0.contains("nonsuch"));
        let err = run(&["profile", "/definitely/not/a/file.s"]).unwrap_err();
        assert!(err.0.contains("cannot read"));
    }

    #[test]
    fn activity_circuits() {
        let out = run(&["activity", "--circuit", "adder8", "--cycles", "100"]).unwrap();
        assert!(out.contains("mean alpha"));
        assert!(out.contains("40 gates"));
        let out = run(&["activity", "--circuit", "alu8", "--cycles", "60"]).unwrap();
        assert!(out.contains("switched capacitance"));
        let err = run(&["activity", "--circuit", "gpu"]).unwrap_err();
        assert!(err.0.contains("gpu"));
    }

    #[test]
    fn optimize_reports_sub_1v_optimum() {
        let out = run(&["optimize", "--delay-ps", "150"]).unwrap();
        assert!(out.contains("optimum: V_T"));
        let vdd: f64 = out
            .split("V_DD = ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("vdd parses");
        assert!(vdd < 1.2, "vdd = {vdd}");
    }

    #[test]
    fn optimize_accepts_threads_flag() {
        let serial = run(&["optimize", "--delay-ps", "150", "--threads", "1"]).unwrap();
        let parallel = run(&["optimize", "--delay-ps", "150", "--threads", "4"]).unwrap();
        assert_eq!(serial, parallel, "thread count must not change results");
        let err = run(&["optimize", "--threads", "two"]).unwrap_err();
        assert!(err.0.contains("--threads"));
    }

    #[test]
    fn sta_names_the_critical_path() {
        let out = run(&["sta", "--circuit", "adder"]).unwrap();
        assert!(out.contains("static timing report: adder8"), "{out}");
        assert!(out.contains("critical path ("), "{out}");
        assert!(out.contains("critical delay"), "{out}");
        assert!(out.contains("endpoints ("), "{out}");
    }

    #[test]
    fn sta_critical_delay_tracks_the_operating_point() {
        let delay = |args: &[&str]| -> f64 {
            let out = run(args).unwrap();
            out.split("critical delay ")
                .nth(1)
                .and_then(|s| s.split(" ps").next())
                .and_then(|s| s.parse().ok())
                .expect("critical delay parses")
        };
        let base = delay(&["sta", "--circuit", "adder"]);
        let starved = delay(&["sta", "--circuit", "adder", "--vdd", "0.7"]);
        assert!(
            starved > base,
            "lower V_DD must be slower: {starved} vs {base}"
        );
        let fast = delay(&["sta", "--circuit", "adder", "--vt", "0.1"]);
        assert!(fast < base, "lower V_T must be faster: {fast} vs {base}");
    }

    #[test]
    fn sta_covers_all_standard_datapaths() {
        let out = run(&["sta"]).unwrap();
        for name in ["adder8", "shifter8", "multiplier8", "alu8", "registers8"] {
            assert!(
                out.contains(&format!("static timing report: {name}")),
                "{out}"
            );
        }
        let err = run(&["sta", "--circuit", "gpu"]).unwrap_err();
        assert!(err.0.contains("gpu"));
        let err = run(&["sta", "--required-ps", "-3"]).unwrap_err();
        assert!(err.0.contains("--required-ps"), "{}", err.0);
    }

    #[test]
    fn sta_json_and_threads_are_stable() {
        let json = run(&["sta", "--json"]).unwrap();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"critical_ps\""), "{json}");
        assert!(json.contains("\"node_slack\""), "{json}");
        let t1 = run(&["sta", "--threads", "1"]).unwrap();
        let t2 = run(&["sta", "--threads", "2"]).unwrap();
        let t8 = run(&["sta", "--threads", "8"]).unwrap();
        assert_eq!(t1, t2, "thread count must not change the report");
        assert_eq!(t1, t8, "thread count must not change the report");
        let j1 = run(&["sta", "--json", "--threads", "1"]).unwrap();
        let j8 = run(&["sta", "--json", "--threads", "8"]).unwrap();
        assert_eq!(j1, j8, "thread count must not change the JSON");
    }

    #[test]
    fn sta_required_time_sets_the_slack_reference() {
        let out = run(&["sta", "--circuit", "adder", "--required-ps", "100000"]).unwrap();
        assert!(out.contains("required 100000.000 ps"), "{out}");
    }

    #[test]
    fn sta_metrics_json_records_the_analysis() {
        let json = run(&["sta", "--circuit", "adder", "--metrics-json", "-"]).unwrap();
        assert!(json.contains("\"sta.nodes\""), "{json}");
        assert!(json.contains("\"sta.critical_ps\""), "{json}");
        assert!(json.contains("\"sta.analyze\""), "{json}");
    }

    #[test]
    fn optimize_sta_mode_constrains_the_real_datapath() {
        let ring = run(&["optimize", "--delay-ps", "150"]).unwrap();
        let sta = run(&[
            "optimize",
            "--delay-ps",
            "150",
            "--sta",
            "--circuit",
            "adder",
        ])
        .unwrap();
        assert!(sta.contains("sta mode: adder8"), "{sta}");
        assert!(sta.contains("whole-path"), "{sta}");
        let optimum = |s: &str| {
            s.split("optimum: ")
                .nth(1)
                .map(str::to_string)
                .expect("optimum line present")
        };
        assert_ne!(
            optimum(&ring),
            optimum(&sta),
            "the datapath-backed optimum must differ from the ring proxy"
        );
        let err = run(&["optimize", "--sta", "--circuit", "all"]).unwrap_err();
        assert!(err.0.contains("one circuit"), "{}", err.0);
    }

    #[test]
    fn sim_reports_activity_summary() {
        let out = run(&["sim", "--circuit", "adder8", "--cycles", "64"]).unwrap();
        assert!(out.contains("simulated 64 cycles"));
        assert!(out.contains("mean alpha"));
        let err = run(&["sim", "--circuit", "gpu"]).unwrap_err();
        assert!(err.0.contains("gpu"));
    }

    #[test]
    fn sim_metrics_json_on_stdout_is_complete_and_thread_invariant() {
        let run_sim = |threads: &str| {
            run(&[
                "sim",
                "--circuit",
                "adder8",
                "--cycles",
                "64",
                "--metrics-json",
                "-",
                "--threads",
                threads,
            ])
            .unwrap()
        };
        let json = run_sim("1");
        // The metrics JSON replaces the report and carries the ISSUE's
        // headline metrics plus per-stage wall-clock spans.
        assert!(json.trim_start().starts_with('{'), "{json}");
        for key in [
            "\"sim.events.processed\"",
            "\"sim.settle.iterations\"",
            "\"sim.heap.pushes\"",
            "\"sim.alpha.nodes\"",
            "\"sim.settle\"",
            "\"sim.measure_activity\"",
            "\"wall_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Byte-identical across thread counts once wall-clock fields are
        // masked (the sim pipeline is single-threaded; counters are
        // deterministic by construction).
        let masked: Vec<String> = ["1", "2", "8"]
            .iter()
            .map(|t| lowvolt_obs::normalize_timings(&run_sim(t)))
            .collect();
        assert_eq!(masked[0], masked[1]);
        assert_eq!(masked[0], masked[2]);
    }

    #[test]
    fn campaign_metrics_json_writes_to_a_file() {
        let dir = std::env::temp_dir().join("lowvolt_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign_metrics.json");
        let out = run(&[
            "campaign",
            "--width",
            "2",
            "--vectors",
            "4",
            "--metrics-json",
            path.to_str().unwrap(),
        ])
        .unwrap();
        // The normal report still goes to stdout; metrics land in the file.
        assert!(out.contains("coverage"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"campaign.injections\""));
        assert!(json.contains("\"campaign.run\""));
        assert!(json.contains("\"exec.items\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_and_profile_accept_metrics_json() {
        let json = run(&["lint", "--circuit", "adder", "--metrics-json", "-"]).unwrap();
        assert!(json.contains("\"lint.passes\": 5"), "{json}");
        assert!(json.contains("lint.pass.structural"), "{json}");
        assert!(json.contains("lint.pass.timing"), "{json}");

        let json = run(&["profile", "--example", "fir", "--metrics-json", "-"]).unwrap();
        assert!(json.contains("\"profile.instructions\""), "{json}");
        assert!(json.contains("\"profile.run\""), "{json}");

        let err = run(&["sim", "--metrics-json", "--cycles"]).unwrap_err();
        assert!(err.0.contains("--metrics-json"), "{}", err.0);
    }

    #[test]
    fn campaign_reports_coverage_table() {
        let out = run(&["campaign", "--width", "2", "--vectors", "4"]).unwrap();
        assert!(out.contains("stuck-at fault campaign"));
        assert!(out.contains("adder2"));
        assert!(out.contains("coverage"));
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let serial = run(&[
            "campaign",
            "--width",
            "2",
            "--vectors",
            "4",
            "--threads",
            "1",
        ])
        .unwrap();
        let parallel = run(&[
            "campaign",
            "--width",
            "2",
            "--vectors",
            "4",
            "--threads",
            "3",
        ])
        .unwrap();
        // The reported thread count differs; everything after the header
        // (the per-target coverage table) must not.
        let table = |s: &str| s.split("\n\n").nth(1).map(str::to_string);
        assert_eq!(table(&serial).as_deref(), table(&parallel).as_deref());
        assert!(table(&serial).is_some());
    }

    #[test]
    fn campaign_checkpoint_interrupt_and_resume_match_clean_run() {
        let dir = std::env::temp_dir().join("lowvolt_cli_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.lvjr");
        let _ = std::fs::remove_file(&journal);
        let base = ["campaign", "--width", "2", "--vectors", "4"];
        let with = |extra: &[&str]| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend_from_slice(extra);
            run(&args).unwrap()
        };
        let clean = with(&["--threads", "2"]);
        let interrupted = with(&[
            "--threads",
            "1",
            "--checkpoint",
            journal.to_str().unwrap(),
            "--interrupt-after",
            "10",
        ]);
        assert!(
            interrupted.contains("campaign interrupted"),
            "{interrupted}"
        );
        assert!(interrupted.contains("--"), "partial coverage shown");
        let resumed = with(&[
            "--threads",
            "3",
            "--checkpoint",
            journal.to_str().unwrap(),
            "--resume",
        ]);
        // The resumed run finishes the journal and its coverage table is
        // byte-identical to the uninterrupted run's.
        let table = |s: &str| s.split("\n\n").nth(1).map(str::to_string);
        assert_eq!(table(&clean), table(&resumed));
        assert!(!resumed.contains("campaign interrupted"), "{resumed}");
        assert!(resumed.contains("completed injection(s) on file"));
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn campaign_golden_cache_hits_across_invocations() {
        let dir = std::env::temp_dir().join("lowvolt_cli_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = [
            "campaign",
            "--width",
            "2",
            "--vectors",
            "4",
            "--cache",
            dir.to_str().unwrap(),
            "--metrics-json",
            "-",
        ];
        let first = run(&args).unwrap();
        assert!(first.contains("\"cache.misses\": 5"), "{first}");
        let second = run(&args).unwrap();
        assert!(second.contains("\"cache.hits\": 5"), "{second}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_flag_validation() {
        let err = run(&["campaign", "--resume"]).unwrap_err();
        assert!(err.0.contains("--checkpoint"), "{}", err.0);
        let err = run(&["campaign", "--interrupt-after", "5"]).unwrap_err();
        assert!(err.0.contains("--checkpoint"), "{}", err.0);
        let err = run(&["campaign", "--checkpoint"]).unwrap_err();
        assert!(err.0.contains("journal file path"), "{}", err.0);
    }

    #[test]
    fn sim_compiled_engine_reports_and_flushes_counters() {
        let out = run(&[
            "sim",
            "--circuit",
            "adder8",
            "--cycles",
            "64",
            "--engine",
            "compiled",
        ])
        .unwrap();
        assert!(out.contains("engine: compiled"), "{out}");
        assert!(out.contains("simulated 64 cycles"), "{out}");
        assert!(out.contains("mean alpha"), "{out}");
        let json = run(&[
            "sim",
            "--circuit",
            "adder8",
            "--cycles",
            "64",
            "--engine",
            "compiled",
            "--metrics-json",
            "-",
        ])
        .unwrap();
        assert!(json.contains("\"compiled.words\""), "{json}");
        assert!(json.contains("\"compiled.gate_evals\""), "{json}");
        let err = run(&["sim", "--engine", "vliw"]).unwrap_err();
        assert!(err.0.contains("unknown engine `vliw`"), "{}", err.0);
    }

    #[test]
    fn campaign_compiled_coverage_table_matches_event() {
        let event = run(&["campaign", "--width", "2", "--vectors", "4"]).unwrap();
        let compiled = run(&[
            "campaign",
            "--width",
            "2",
            "--vectors",
            "4",
            "--engine",
            "compiled",
        ])
        .unwrap();
        assert!(compiled.contains("engine: compiled"), "{compiled}");
        let table = |s: &str| s.split("\n\n").nth(1).map(str::to_string);
        assert_eq!(table(&event), table(&compiled));
        assert!(table(&event).is_some());
    }

    #[test]
    fn campaign_compiled_is_thread_count_invariant() {
        let base = [
            "campaign",
            "--width",
            "2",
            "--vectors",
            "70",
            "--engine",
            "compiled",
        ];
        let table = |s: &str| s.split("\n\n").nth(1).map(str::to_string);
        let runs: Vec<String> = ["1", "2", "8"]
            .iter()
            .map(|t| {
                let mut args = base.to_vec();
                args.extend_from_slice(&["--threads", t]);
                run(&args).unwrap()
            })
            .collect();
        assert_eq!(table(&runs[0]), table(&runs[1]));
        assert_eq!(table(&runs[0]), table(&runs[2]));
        assert!(table(&runs[0]).is_some());
    }

    #[test]
    fn campaign_compiled_checkpoint_interrupt_and_resume_match_clean_run() {
        let dir = std::env::temp_dir().join("lowvolt_cli_compiled_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.lvjr");
        let _ = std::fs::remove_file(&journal);
        // 70 vectors = 2 packed words per target; interrupting after 3
        // words leaves later targets unresolved.
        let base = [
            "campaign",
            "--width",
            "2",
            "--vectors",
            "70",
            "--engine",
            "compiled",
        ];
        let with = |extra: &[&str]| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend_from_slice(extra);
            run(&args).unwrap()
        };
        let clean = with(&["--threads", "2"]);
        let interrupted = with(&[
            "--threads",
            "1",
            "--checkpoint",
            journal.to_str().unwrap(),
            "--interrupt-after",
            "3",
        ]);
        assert!(
            interrupted.contains("campaign interrupted"),
            "{interrupted}"
        );
        assert!(
            interrupted.contains("stimulus word(s) pending"),
            "{interrupted}"
        );
        assert!(interrupted.contains("--"), "partial coverage shown");
        let resumed = with(&[
            "--threads",
            "3",
            "--checkpoint",
            journal.to_str().unwrap(),
            "--resume",
        ]);
        let table = |s: &str| s.split("\n\n").nth(1).map(str::to_string);
        assert_eq!(table(&clean), table(&resumed));
        assert!(!resumed.contains("campaign interrupted"), "{resumed}");
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn campaign_compiled_golden_cache_interop_with_event() {
        let dir = std::env::temp_dir().join("lowvolt_cli_compiled_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let with_engine = |engine: &str| {
            run(&[
                "campaign",
                "--width",
                "2",
                "--vectors",
                "4",
                "--engine",
                engine,
                "--cache",
                dir.to_str().unwrap(),
                "--metrics-json",
                "-",
            ])
            .unwrap()
        };
        // The compiled engine populates the same golden-trace cache the
        // event engine reads (and vice versa): identical key and payload.
        let first = with_engine("compiled");
        assert!(first.contains("\"cache.misses\": 5"), "{first}");
        let event = with_engine("event");
        assert!(event.contains("\"cache.hits\": 5"), "{event}");
        let again = with_engine("compiled");
        assert!(again.contains("\"cache.hits\": 5"), "{again}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_recommends_a_standby_technology_when_idle() {
        let out = run(&["compare", "--fga", "0.01", "--bga", "0.001"]).unwrap();
        assert!(out.contains("recommendation:"));
        assert!(!out.contains("recommendation: soi-fixed-vt"), "{out}");
        let err = run(&["compare", "--bga", "0.1"]).unwrap_err();
        assert!(err.0.contains("--fga"));
    }

    #[test]
    fn iv_tables() {
        let out = run(&["iv", "--vt", "0.4"]).unwrap();
        assert!(out.contains("V_T = 0.4"));
        assert!(out.contains("mV/dec"));
        let out = run(&["iv", "--soias"]).unwrap();
        assert!(out.contains("V_gb=3"));
    }

    #[test]
    fn lint_standard_datapaths_are_clean() {
        let out = run(&["lint", "--deny", "warnings"]).unwrap();
        assert!(out.contains("adder8: clean"), "{out}");
        assert!(out.contains("registers8: clean"), "{out}");
        assert!(out.contains("5 target(s) linted, 0 failing"), "{out}");
    }

    #[test]
    fn lint_single_circuit_by_family_name() {
        let out = run(&["lint", "--circuit", "alu", "--width", "4"]).unwrap();
        assert!(out.contains("alu4: clean"), "{out}");
        assert!(out.contains("1 target(s) linted"), "{out}");
        let err = run(&["lint", "--circuit", "gpu"]).unwrap_err();
        assert!(err.0.contains("gpu"));
    }

    #[test]
    fn lint_fixtures_fail_the_gate() {
        for fixture in ["floating", "loop", "sleep", "leakage", "slack"] {
            let err = run(&["lint", "--fixture", fixture]).unwrap_err();
            assert!(err.0.contains("error"), "fixture {fixture}: {}", err.0);
            assert!(err.0.contains("failing the gate"), "{}", err.0);
        }
        let err = run(&["lint", "--fixture", "slack"]).unwrap_err();
        assert!(err.0.contains("LV040"), "{}", err.0);
        let err = run(&["lint", "--fixture", "nonsuch"]).unwrap_err();
        assert!(err.0.contains("nonsuch"));
    }

    #[test]
    fn lint_json_output_is_machine_readable() {
        let err = run(&["lint", "--fixture", "sleep", "--json"]).unwrap_err();
        assert!(err.0.starts_with('['), "{}", err.0);
        assert!(err.0.contains("\"rule\":\"LV020\""), "{}", err.0);
        let ok = run(&["lint", "--circuit", "adder", "--json"]).unwrap();
        assert!(ok.contains("\"diagnostics\":[]"), "{ok}");
    }

    #[test]
    fn lint_allow_filter_can_waive_a_fixture() {
        // Allowing both rules the floating fixture trips turns the
        // failure into a clean pass — the filter plumbing reaches the
        // engine.
        let out = run(&[
            "lint",
            "--fixture",
            "floating",
            "--allow",
            "LV001,x-contamination",
        ])
        .unwrap();
        assert!(out.contains("0 failing"), "{out}");
        let err = run(&["lint", "--allow", "LV999"]).unwrap_err();
        assert!(err.0.contains("LV999"));
        assert!(err.0.contains("--rules"));
    }

    #[test]
    fn lint_budget_flag_rescues_leakage_fixture() {
        let err = run(&["lint", "--fixture", "leakage"]).unwrap_err();
        assert!(err.0.contains("LV030"), "{}", err.0);
        let out = run(&[
            "lint",
            "--fixture",
            "leakage",
            "--leakage-budget-uw",
            "1000",
        ])
        .unwrap();
        assert!(out.contains("0 failing"), "{out}");
        let err = run(&["lint", "--leakage-budget-uw", "-1"]).unwrap_err();
        assert!(err.0.contains("positive"));
    }

    #[test]
    fn lint_rules_catalog_lists_every_rule() {
        let out = run(&["lint", "--rules"]).unwrap();
        for rule in Rule::ALL {
            assert!(out.contains(rule.id()), "missing {}", rule.id());
        }
        assert!(out.contains("power-intent"));
    }

    #[test]
    fn lint_is_thread_count_invariant() {
        let serial = run(&["lint", "--threads", "1"]).unwrap();
        let parallel = run(&["lint", "--threads", "4"]).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn disasm_lists_instructions() {
        let out = run(&["disasm", "--example", "fir"]).unwrap();
        assert!(out.contains("entry @"));
        assert!(out.contains("mult"));
        assert!(out.contains("main:"));
        let err = run(&["disasm"]).unwrap_err();
        assert!(err.0.contains("--example"));
    }

    #[test]
    fn profile_reads_a_real_file() {
        let dir = std::env::temp_dir().join("lowvolt_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.s");
        std::fs::write(
            &path,
            ".text\nli $a0, 7\nli $v0, 1\nsyscall\nli $v0, 10\nsyscall\n",
        )
        .unwrap();
        let out = run(&["profile", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("program output: 7"));
    }
}
