//! Minimal dependency-free argument parsing: `--key value` flags and
//! positional arguments, collected into a lookup structure the command
//! implementations consume.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` options (`--flag` with no value stores an empty string).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parsed {
    /// The subcommand name (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` and bare `--flag` options.
    pub options: HashMap<String, String>,
}

impl Parsed {
    /// Looks an option up.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare flag (or any value) was supplied.
    #[must_use]
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Parses an option as `f64`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag if the value is missing or not a
    /// number.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    /// Parses an option as `u64`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag if the value is missing or not an
    /// integer.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// The worker-thread count from `--threads N`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag if the value is not an integer.
    pub fn threads(&self) -> Result<Option<usize>, String> {
        Ok(self.get_u64("threads")?.map(|n| n as usize))
    }
}

/// Parses raw arguments (without the program name).
///
/// A `--key` consumes the next argument as its value unless that argument
/// is itself a flag, in which case `--key` is a bare flag.
#[must_use]
pub fn parse(args: &[String]) -> Parsed {
    let mut parsed = Parsed::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            let value = match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    i += 1;
                    next.clone()
                }
                _ => String::new(),
            };
            parsed.options.insert(key.to_string(), value);
        } else if parsed.command.is_empty() {
            parsed.command = arg.clone();
        } else {
            parsed.positional.push(arg.clone());
        }
        i += 1;
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Parsed {
        parse(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn subcommand_and_options() {
        let p = parse_strs(&["profile", "--example", "idea", "--budget", "100"]);
        assert_eq!(p.command, "profile");
        assert_eq!(p.get("example"), Some("idea"));
        assert_eq!(p.get_u64("budget").unwrap(), Some(100));
        assert!(p.positional.is_empty());
    }

    #[test]
    fn bare_flags_and_positionals() {
        let p = parse_strs(&["profile", "prog.s", "--blocks", "--hysteresis", "12"]);
        assert_eq!(p.positional, vec!["prog.s"]);
        assert!(p.has("blocks"));
        assert_eq!(p.get("blocks"), Some(""));
        assert_eq!(p.get_u64("hysteresis").unwrap(), Some(12));
    }

    #[test]
    fn adjacent_flags_do_not_consume_each_other() {
        let p = parse_strs(&["x", "--a", "--b", "v"]);
        assert_eq!(p.get("a"), Some(""));
        assert_eq!(p.get("b"), Some("v"));
    }

    #[test]
    fn numeric_errors_name_the_flag() {
        let p = parse_strs(&["x", "--vt", "abc"]);
        let err = p.get_f64("vt").unwrap_err();
        assert!(err.contains("--vt"));
        assert!(err.contains("abc"));
    }

    #[test]
    fn missing_options_are_none() {
        let p = parse_strs(&["x"]);
        assert_eq!(p.get_f64("vt").unwrap(), None);
        assert!(!p.has("anything"));
    }
}
