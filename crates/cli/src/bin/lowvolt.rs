//! The `lowvolt` command-line tool. All logic lives in `lowvolt_cli`;
//! this binary parses, dispatches, prints, and sets the exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = lowvolt_cli::parse(&args);
    match lowvolt_cli::run_command(&parsed) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
