//! The `lowvolt` command-line tool. All logic lives in `lowvolt_cli`;
//! this binary parses, dispatches, prints, and sets the exit code.

use std::process::ExitCode;

use lowvolt_cli::CliFailure;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = lowvolt_cli::parse(&args);
    match lowvolt_cli::run_command(&parsed) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        // A completed report whose gate failed is still the command's
        // output (text or --json): stdout, with the exit code carrying
        // the verdict — so `lint --json` stays machine-readable in CI.
        Err(CliFailure::Gate(report)) => {
            println!("{report}");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
