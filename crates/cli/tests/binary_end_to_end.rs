//! End-to-end tests of the `lowvolt` binary itself: exit codes, stderr
//! routing, and a full profile run through the real executable.

use std::process::Command;

fn lowvolt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lowvolt"))
}

#[test]
fn help_exits_zero() {
    let out = lowvolt().arg("help").output().expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn errors_go_to_stderr_with_nonzero_exit() {
    let out = lowvolt().arg("explode").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("explode"));
    assert!(out.stdout.is_empty());
}

#[test]
fn lint_gate_failure_prints_report_to_stdout_with_exit_1() {
    let out = lowvolt()
        .args(["lint", "--fixture", "sleep", "--json"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    // The JSON report is the command's output, not an error message:
    // stdout must carry it unprefixed so tools can parse it.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"rule\":\"LV020\""), "{stdout}");
    assert!(out.stderr.is_empty());
}

#[test]
fn lint_clean_through_the_binary() {
    let out = lowvolt()
        .args(["lint", "--circuit", "adder", "--deny", "warnings"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("adder8: clean"));
}

#[test]
fn profile_example_through_the_binary() {
    let out = lowvolt()
        .args(["profile", "--example", "fir", "--budget", "100000000"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Total Instructions"));
    assert!(text.contains("Multiplications"));
}

#[test]
fn iv_through_the_binary() {
    let out = lowvolt()
        .args(["iv", "--vt", "0.3"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mV/dec"));
}

#[test]
fn sim_metrics_json_through_the_binary() {
    let out = lowvolt()
        .args([
            "sim",
            "--circuit",
            "alu8",
            "--cycles",
            "32",
            "--metrics-json",
            "-",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"sim.events.processed\""), "{stdout}");
    assert!(stdout.contains("\"sim.settle.iterations\""), "{stdout}");
    assert!(stdout.contains("\"wall_ms\""), "{stdout}");
}
