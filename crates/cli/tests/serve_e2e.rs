//! End-to-end conformance suite for `lowvolt serve`: the real binary
//! runs as a daemon, jobs are submitted over the socket, and every
//! result payload is asserted byte-identical to the equivalent direct
//! CLI invocation — including after a SIGKILL of the daemon mid-job,
//! at 1/2/8 workers.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Output, Stdio};

use lowvolt_serve::client;

fn lowvolt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lowvolt"))
}

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lowvolt_serve_e2e_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The daemon as a child process. Killed on drop so a failing test
/// never leaves an orphan listening.
struct Daemon {
    child: Child,
    addr: String,
    // Held open: dropping the pipe would make the daemon's final
    // shutdown message fail to print.
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn start(state: &PathBuf) -> Daemon {
        let mut child = lowvolt()
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--state",
                state.to_str().expect("utf-8 path"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("banner line");
        let addr = banner
            .trim()
            .strip_prefix("lowvolt-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful stop: shutdown command, then wait for a clean exit.
    fn shutdown(mut self) {
        let bye = client::control(&self.addr, "shutdown").expect("shutdown answers");
        assert!(bye.contains("\"event\":\"bye\""), "{bye}");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exit status: {status}");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).ok();
        assert!(rest.contains("shut down"), "{rest}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn run_cli(args: &[&str]) -> Output {
    lowvolt().args(args).output().expect("cli runs")
}

fn submit(addr: &str, request: &str) -> Output {
    lowvolt()
        .args(["submit", "--connect", addr, "--request", request, "--quiet"])
        .output()
        .expect("submit runs")
}

/// Reads one integer counter out of a single-line metrics JSON report.
fn counter(metrics: &str, name: &str) -> u64 {
    let key = format!("\"{name}\"");
    let at = metrics
        .find(&key)
        .unwrap_or_else(|| panic!("counter {name} missing from {metrics}"));
    let tail = &metrics[at + key.len()..];
    let digits: String = tail
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("counter {name} not an integer in {metrics}"))
}

#[test]
fn daemon_smoke_ping_stats_shutdown() {
    let state = state_dir("smoke");
    let daemon = Daemon::start(&state);

    let pong = client::control(&daemon.addr, "ping").expect("ping answers");
    assert!(pong.contains("\"event\":\"pong\""), "{pong}");
    let stats = client::control(&daemon.addr, "stats").expect("stats answers");
    assert!(stats.contains("\"serve.connections\":"), "{stats}");

    // `submit` relays command objects too: the daemon's single reply
    // line goes to stdout, unknown commands exit 2.
    let out = submit(&daemon.addr, "{\"cmd\":\"ping\"}");
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"event\":\"pong\""),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let bad = submit(&daemon.addr, "{\"cmd\":\"reboot\"}");
    assert_eq!(bad.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("unknown command"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn every_job_kind_is_byte_identical_to_the_cli() {
    let state = state_dir("conformance");
    let daemon = Daemon::start(&state);

    // (CLI invocation, equivalent serve request). The builtin campaign
    // covers all five standard datapaths in one table; the sta job
    // covers the seeded 10000-gate generated netlist source.
    let cases: &[(&[&str], &str)] = &[
        (
            &["campaign", "--width", "4", "--vectors", "16", "--threads", "2"],
            "{\"job\":\"campaign\",\"width\":4,\"vectors\":16,\"threads\":2}",
        ),
        (
            &[
                "campaign", "--width", "4", "--vectors", "16", "--threads", "2", "--engine",
                "compiled",
            ],
            "{\"job\":\"campaign\",\"width\":4,\"vectors\":16,\"threads\":2,\"engine\":\"compiled\"}",
        ),
        (
            &["sta", "--generate", "10000", "--seed", "42"],
            "{\"job\":\"sta\",\"source\":{\"kind\":\"generate\",\"gates\":10000,\"seed\":42}}",
        ),
        (
            &["lint", "--circuit", "adder"],
            "{\"job\":\"lint\",\"circuit\":\"adder\"}",
        ),
        (&["optimize"], "{\"job\":\"optimize\"}"),
        (
            &["profile", "--example", "fir", "--budget", "100000000"],
            "{\"job\":\"profile\",\"example\":\"fir\",\"budget\":100000000}",
        ),
    ];
    for (args, request) in cases {
        let direct = run_cli(args);
        assert!(
            direct.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&direct.stderr)
        );
        let served = submit(&daemon.addr, request);
        assert!(
            served.status.success(),
            "{request}: {}",
            String::from_utf8_lossy(&served.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&served.stdout),
            String::from_utf8_lossy(&direct.stdout),
            "payload must be byte-identical for {request}"
        );
    }

    // The builtin campaign table really does contain every datapath.
    let table = String::from_utf8_lossy(&run_cli(cases[0].0).stdout).to_string();
    for target in ["adder4", "shifter4", "multiplier4", "alu4", "registers4"] {
        assert!(table.contains(target), "missing {target} in {table}");
    }

    daemon.shutdown();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn campaign_conformance_holds_at_1_2_8_workers() {
    let state = state_dir("workers");
    let daemon = Daemon::start(&state);
    for workers in ["1", "2", "8"] {
        let direct = run_cli(&[
            "campaign",
            "--width",
            "2",
            "--vectors",
            "8",
            "--threads",
            workers,
        ]);
        assert!(direct.status.success());
        let request =
            format!("{{\"job\":\"campaign\",\"width\":2,\"vectors\":8,\"threads\":{workers}}}");
        let served = submit(&daemon.addr, &request);
        assert!(
            served.status.success(),
            "{}",
            String::from_utf8_lossy(&served.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&served.stdout),
            String::from_utf8_lossy(&direct.stdout),
            "workers={workers}"
        );
    }
    daemon.shutdown();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn kill_mid_job_then_restart_resumes_byte_identically() {
    // Sweep the kill point K (completed shard rounds before SIGKILL)
    // together with the resubmission's worker count.
    for (kill_after, workers) in [(1u64, 1usize), (2, 2), (3, 8)] {
        let state = state_dir(&format!("kill_{kill_after}_{workers}"));
        let request = format!(
            "{{\"job\":\"campaign\",\"width\":4,\"vectors\":16,\"threads\":{workers},\"shard_items\":8}}"
        );
        let direct = run_cli(&[
            "campaign",
            "--width",
            "4",
            "--vectors",
            "16",
            "--threads",
            &workers.to_string(),
        ]);
        assert!(direct.status.success());
        let expected = String::from_utf8_lossy(&direct.stdout).to_string();

        // Submit from a helper thread; SIGKILL the daemon once K shard
        // rounds have been journaled.
        let daemon = Daemon::start(&state);
        let addr = daemon.addr.clone();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let submitter = std::thread::spawn({
            let request = request.clone();
            move || {
                client::submit_line(&addr, &request, &mut |event| {
                    if matches!(event, client::Event::Progress { .. }) {
                        let _ = tx.send(());
                    }
                })
            }
        });
        for _ in 0..kill_after {
            rx.recv().expect("progress event before daemon death");
        }
        daemon.kill();
        let interrupted = submitter.join().expect("submit thread");
        assert!(
            interrupted.is_err(),
            "the killed daemon cannot have delivered a result"
        );

        // Restart on the same state directory and resubmit the very
        // same request: the journal replays, only the remaining shards
        // execute, and the payload matches the uninterrupted CLI run.
        let daemon = Daemon::start(&state);
        let resumed =
            client::submit_line(&daemon.addr, &request, &mut |_| {}).expect("resumed run finishes");
        assert_eq!(
            format!("{}\n", resumed.payload),
            expected,
            "K={kill_after} workers={workers}"
        );
        assert_eq!(resumed.status, "ok");
        assert!(
            resumed.replayed >= kill_after,
            "each completed round journaled at least one item: {resumed:?}"
        );
        assert_eq!(
            resumed.replayed + resumed.computed,
            resumed.journal_records,
            "only the remaining shards re-execute: {resumed:?}"
        );
        assert!(
            counter(&resumed.metrics, "cache.hits") >= 1,
            "resumed golden traces must come from the cache: {}",
            resumed.metrics
        );

        daemon.shutdown();
        std::fs::remove_dir_all(&state).ok();
    }
}

#[test]
fn submit_streams_metrics_and_routes_gate_failures() {
    let state = state_dir("metrics_gate");
    let daemon = Daemon::start(&state);

    // `--metrics-json -` replaces the payload with the job's single-line
    // metrics report, counters included.
    let out = lowvolt()
        .args([
            "submit",
            "--connect",
            &daemon.addr,
            "--request",
            "{\"job\":\"campaign\",\"width\":2,\"vectors\":8,\"threads\":2,\"shard_items\":4}",
            "--metrics-json",
            "-",
            "--quiet",
        ])
        .output()
        .expect("submit runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(metrics.trim_start().starts_with('{'), "{metrics}");
    assert_eq!(metrics.trim_end().lines().count(), 1, "single line");
    assert!(counter(&metrics, "serve.shard_rounds") >= 1, "{metrics}");
    assert!(counter(&metrics, "cache.misses") >= 1, "{metrics}");

    // A failing lint gate exits 1 with the report on stdout — exactly
    // like the direct CLI invocation.
    let direct = run_cli(&["lint", "--fixture", "sleep", "--json"]);
    assert_eq!(direct.status.code(), Some(1));
    let served = submit(
        &daemon.addr,
        "{\"job\":\"lint\",\"fixture\":\"sleep\",\"json\":true}",
    );
    assert_eq!(served.status.code(), Some(1));
    assert_eq!(
        String::from_utf8_lossy(&served.stdout),
        String::from_utf8_lossy(&direct.stdout)
    );

    // A rejected job is a plain error: exit 2, message on stderr.
    let bad = submit(&daemon.addr, "{\"job\":\"mine-bitcoin\"}");
    assert_eq!(bad.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("unknown job kind"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
    assert!(bad.stdout.is_empty());

    daemon.shutdown();
    std::fs::remove_dir_all(&state).ok();
}
