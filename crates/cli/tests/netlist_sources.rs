//! End-to-end tests of the `--netlist` / `--generate` circuit sources
//! through the real binary: happy paths for both import formats and the
//! generator, the `circuits` catalog, and the parse-error contract —
//! malformed input must exit 2 with a single line/column-anchored
//! message on stderr and no partial output on stdout.

use std::path::PathBuf;
use std::process::Command;

fn lowvolt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lowvolt"))
}

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../io/fixtures")
        .join(name)
        .display()
        .to_string()
}

/// Writes a malformed netlist to a temp file; returns its path.
fn temp_file(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("lowvolt-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writes");
    path.display().to_string()
}

#[test]
fn sim_imports_the_c17_bench_fixture() {
    let out = lowvolt()
        .args(["sim", "--netlist", &fixture("c17.bench"), "--cycles", "32"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("circuit: c17 (6 gates"), "{stdout}");
}

#[test]
fn lint_and_sta_import_the_blif_fixture() {
    let out = lowvolt()
        .args(["lint", "--netlist", &fixture("latch2.blif")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("latch2: clean"));

    let out = lowvolt()
        .args(["sta", "--netlist", &fixture("c17.bench")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("static timing report: c17"));
}

#[test]
fn generated_campaign_runs_on_both_engines() {
    for engine in ["event", "compiled"] {
        let out = lowvolt()
            .args([
                "campaign",
                "--generate",
                "300",
                "--seed",
                "7",
                "--vectors",
                "64",
                "--engine",
                engine,
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "engine {engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("gen300_s7"), "engine {engine}: {stdout}");
    }
}

#[test]
fn circuits_catalog_lists_sources() {
    let out = lowvolt().arg("circuits").output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "adder8",
        "registers",
        ".blif",
        ".bench",
        "--generate N",
        "--dff-fraction",
    ] {
        assert!(stdout.contains(needle), "missing {needle}: {stdout}");
    }
}

#[test]
fn malformed_blif_exits_2_with_anchored_message() {
    let path = temp_file(
        "bad.blif",
        ".model bad\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
    );
    let out = lowvolt()
        .args(["sim", "--netlist", &path])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "no partial output on stdout");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.lines().count(), 1, "single-line message: {stderr}");
    assert!(
        stderr.contains(&format!("{path}:5:1:")),
        "line/column anchor missing: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn malformed_bench_exits_2_with_anchored_message() {
    let path = temp_file("bad.bench", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    let out = lowvolt()
        .args(["campaign", "--netlist", &path])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "no partial output on stdout");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.lines().count(), 1, "single-line message: {stderr}");
    assert!(stderr.contains(&format!("{path}:3:1:")), "{stderr}");
    assert!(stderr.contains("FROB"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn netlist_and_generate_are_mutually_exclusive() {
    let out = lowvolt()
        .args(["sim", "--netlist", "x.blif", "--generate", "100"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}
