//! Differential testing: the event-driven fault-campaign engine against
//! the compiled bit-parallel levelized engine.
//!
//! The compiled engine packs 64 stimulus vectors per machine word and
//! re-evaluates only each fault's difference frontier, so it must be
//! checked against the event engine it replaces, not against intuition:
//! every stuck-at fault on every standard datapath must classify
//! identically, the rendered campaign reports must match byte for byte
//! at every thread count, and the settled per-node activity must equal
//! an event-side harness that samples settled values (the event
//! engine's own counters also tally glitches, which the compiled
//! engine's settled semantics deliberately exclude).

use std::collections::HashMap;

use lowvolt_circuit::compiled::{run_campaign_packed, CompiledNetlist};
use lowvolt_circuit::faults::{
    run_campaign_resilient, standard_targets, stuck_at_universe, CampaignOptions, FaultTarget,
};
use lowvolt_circuit::logic::Bit;
use lowvolt_circuit::sim::Simulator;
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_circuit::NodeId;
use lowvolt_exec::ExecPolicy;

const VECTORS: usize = 96; // two packed words, the second half-full
const SEED: u64 = 0xD1FF;

fn event_reference(target: &FaultTarget, seed: u64) -> lowvolt_circuit::faults::ResilientCampaign {
    let faults = stuck_at_universe(&target.netlist);
    let mut stimulus =
        PatternSource::random(target.inputs.len(), seed).expect("stimulus width is nonzero");
    run_campaign_resilient(
        &ExecPolicy::serial(),
        lowvolt_obs::noop(),
        target,
        &faults,
        &mut stimulus,
        VECTORS,
        CampaignOptions::default(),
    )
    .expect("event campaign runs")
}

/// Every fault on every standard datapath classifies identically under
/// both engines, at 1, 2, and 8 worker threads, and the rendered
/// campaign reports are byte-identical.
#[test]
fn packed_campaign_matches_event_on_all_standard_targets() {
    let targets = standard_targets(4).expect("standard targets build");
    for (i, target) in targets.iter().enumerate() {
        let seed = SEED.wrapping_add(i as u64);
        let event = event_reference(target, seed);
        let event_report = event.report().expect("event campaign completed");
        let faults = stuck_at_universe(&target.netlist);
        for threads in [1usize, 2, 8] {
            let policy = ExecPolicy::with_threads(threads);
            let mut stimulus = PatternSource::random(target.inputs.len(), seed)
                .expect("stimulus width is nonzero");
            let packed = run_campaign_packed(
                &policy,
                lowvolt_obs::noop(),
                target,
                &faults,
                &mut stimulus,
                VECTORS,
                CampaignOptions::default(),
            )
            .expect("packed campaign runs");
            assert_eq!(event.reports.len(), packed.reports.len());
            for (f, (e, p)) in faults.iter().zip(event.reports.iter().zip(&packed.reports)) {
                let e = e.as_ref().expect("event outcome resolved");
                let p = p.as_ref().expect("packed outcome resolved");
                assert_eq!(
                    e.outcome, p.outcome,
                    "target {} threads {threads} fault {f:?}",
                    target.name
                );
            }
            let packed_report = packed.report().expect("packed campaign completed");
            assert_eq!(
                event_report.to_string(),
                packed_report.to_string(),
                "rendered report diverged on {} at {threads} thread(s)",
                target.name
            );
        }
    }
}

/// Samples settled node values from the event simulator, cycle by
/// cycle, and counts known-0→known-1 / known-1→known-0 transitions in
/// the measured window — the same settled semantics the compiled
/// engine's activity counters use.
fn settled_counts(
    target: &FaultTarget,
    seed: u64,
    cycles: usize,
    warmup: usize,
) -> HashMap<NodeId, (u64, u64)> {
    let mut source =
        PatternSource::random(target.inputs.len(), seed).expect("stimulus width is nonzero");
    let mut sim = Simulator::new(&target.netlist);
    let nodes: Vec<NodeId> = target.netlist.node_ids().collect();
    let mut prev: HashMap<NodeId, Bit> = nodes.iter().map(|&n| (n, Bit::X)).collect();
    let mut counts: HashMap<NodeId, (u64, u64)> = nodes.iter().map(|&n| (n, (0, 0))).collect();
    for cycle in 0..cycles {
        let bits = source.next_pattern();
        sim.apply_vector(&target.inputs, &bits)
            .expect("vector settles");
        for &n in &nodes {
            let cur = sim.value(n);
            if cycle >= warmup {
                let c = counts.get_mut(&n).expect("node seeded");
                match (prev[&n], cur) {
                    (Bit::Zero, Bit::One) => c.0 += 1,
                    (Bit::One, Bit::Zero) => c.1 += 1,
                    _ => {}
                }
            }
            prev.insert(n, cur);
        }
    }
    counts
}

/// The compiled engine's per-node settled activity equals the
/// event-side settled harness exactly, on every standard datapath —
/// including the clocked register file, whose undriven clock leaves the
/// flip-flops inert (X) in both engines.
#[test]
fn packed_settled_activity_matches_event_settled_sampling() {
    let (cycles, warmup) = (70usize, 6usize); // crosses a 64-lane word boundary
    let targets = standard_targets(4).expect("standard targets build");
    for (i, target) in targets.iter().enumerate() {
        let seed = SEED.wrapping_add(0x51A0 + i as u64);
        let expected = settled_counts(target, seed, cycles, warmup);
        let comp = CompiledNetlist::compile(&target.netlist).expect("standard targets levelize");
        let mut source =
            PatternSource::random(target.inputs.len(), seed).expect("stimulus width is nonzero");
        let report = comp
            .measure_activity(
                &target.netlist,
                lowvolt_obs::noop(),
                &mut source,
                &target.inputs,
                cycles,
                warmup,
            )
            .expect("packed activity runs");
        assert_eq!(report.cycles(), (cycles - warmup) as u64);
        for e in report.entries() {
            let &(rising, falling) = expected.get(&e.node).expect("entry for every node");
            assert_eq!(
                (e.rising, e.falling),
                (rising, falling),
                "settled activity diverged on {} node {}",
                target.name,
                e.name
            );
        }
        assert_eq!(report.entries().len(), expected.len());
    }
}
