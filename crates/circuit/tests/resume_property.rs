//! The fault-tolerance layer's headline guarantee, exhaustively: a
//! campaign killed after K completed injections and resumed produces a
//! report **byte-identical** to an uninterrupted run — for every K in
//! the fault universe and across thread counts on both sides of the
//! interruption. Plus the corruption contract: a damaged journal tail
//! is discarded with a warning and recomputed, never trusted and never
//! a panic.

use std::collections::HashMap;
use std::path::PathBuf;

use lowvolt_circuit::faults::{
    run_campaign_resilient, standard_targets, stuck_at_universe, CampaignOptions, FaultOutcome,
    FaultTarget, GateFault,
};
use lowvolt_circuit::stimulus::PatternSource;
use lowvolt_exec::{CheckpointJournal, CheckpointSpec, ExecPolicy, FaultPolicy};

const SEED: u64 = 0xC0FFEE;
const VECTORS: usize = 4;

fn adder_target() -> FaultTarget {
    standard_targets(2)
        .expect("standard targets")
        .into_iter()
        .next()
        .expect("adder target")
}

fn stimulus(target: &FaultTarget) -> PatternSource {
    PatternSource::random(target.inputs.len(), SEED).expect("stimulus")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lowvolt-resume-{name}-{}", std::process::id()));
    p
}

/// Runs the campaign against `journal` with at most `cap` new items.
fn run_with_journal(
    target: &FaultTarget,
    faults: &[GateFault],
    journal: &mut CheckpointJournal,
    completed: &HashMap<u64, Vec<u8>>,
    cap: Option<usize>,
    threads: usize,
) -> lowvolt_circuit::faults::ResilientCampaign {
    run_campaign_resilient(
        &ExecPolicy::with_threads(threads),
        lowvolt_obs::noop(),
        target,
        faults,
        &mut stimulus(target),
        VECTORS,
        CampaignOptions {
            checkpoint: Some(CheckpointSpec {
                journal,
                completed,
                index_base: 0,
                max_new_items: cap,
            }),
            ..CampaignOptions::default()
        },
    )
    .expect("campaign runs")
}

#[test]
fn kill_after_k_and_resume_is_byte_identical_for_every_k() {
    let target = adder_target();
    let faults = stuck_at_universe(&target.netlist);
    let reference = run_campaign_resilient(
        &ExecPolicy::serial(),
        lowvolt_obs::noop(),
        &target,
        &faults,
        &mut stimulus(&target),
        VECTORS,
        CampaignOptions::default(),
    )
    .expect("reference campaign")
    .report()
    .expect("reference is complete");

    // K sweeps the full range: kill before anything completed, after
    // every prefix, and after everything completed (a no-op resume).
    for k in 0..=faults.len() {
        for &threads in &[1usize, 2, 8] {
            let path = tmp(&format!("k{k}-t{threads}"));
            let _ = std::fs::remove_file(&path);
            let mut journal = CheckpointJournal::create(&path).expect("create journal");
            let partial = run_with_journal(
                &target,
                &faults,
                &mut journal,
                &HashMap::new(),
                Some(k),
                threads,
            );
            assert_eq!(partial.computed, k.min(faults.len()), "K = {k}");
            assert_eq!(partial.skipped, faults.len() - k, "K = {k}");
            drop(journal);

            let (mut journal, replay) = CheckpointJournal::resume(&path).expect("resume journal");
            assert!(replay.warning.is_none(), "clean journal, K = {k}");
            let completed = replay.completed();
            assert_eq!(completed.len(), k, "one record per completed injection");
            let resumed =
                run_with_journal(&target, &faults, &mut journal, &completed, None, threads);
            assert!(!resumed.interrupted());
            assert_eq!(resumed.replayed, k, "K = {k}, threads = {threads}");
            assert_eq!(resumed.computed, faults.len() - k);

            let report = resumed.report().expect("resumed run is complete");
            assert_eq!(report, reference, "K = {k}, threads = {threads}");
            // Byte-identical includes the rendered table text.
            assert_eq!(report.to_string(), reference.to_string());
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn seeded_journal_corruption_degrades_to_recompute_with_warning() {
    let target = adder_target();
    let faults = stuck_at_universe(&target.netlist);
    let reference = run_campaign_resilient(
        &ExecPolicy::serial(),
        lowvolt_obs::noop(),
        &target,
        &faults,
        &mut stimulus(&target),
        VECTORS,
        CampaignOptions::default(),
    )
    .expect("reference campaign")
    .report()
    .expect("reference is complete");

    // Write a 10-record prefix, then corrupt it three ways: truncate
    // mid-record, truncate mid-header, and flip a payload bit. Resume
    // must retain only the valid prefix, warn, and still converge to
    // the reference.
    let pristine = {
        let path = tmp("corrupt-src");
        let _ = std::fs::remove_file(&path);
        let mut journal = CheckpointJournal::create(&path).expect("create");
        let partial =
            run_with_journal(&target, &faults, &mut journal, &HashMap::new(), Some(10), 2);
        assert_eq!(partial.computed, 10);
        drop(journal);
        let bytes = std::fs::read(&path).expect("read journal");
        let _ = std::fs::remove_file(&path);
        bytes
    };

    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("truncate-tail", pristine[..pristine.len() - 5].to_vec()),
        ("truncate-deep", pristine[..pristine.len() / 2].to_vec()),
        ("bitflip", {
            let mut b = pristine.clone();
            let mid = b.len() - 10;
            b[mid] ^= 0x40;
            b
        }),
    ];
    for (name, bytes) in corruptions {
        let path = tmp(&format!("corrupt-{name}"));
        std::fs::write(&path, &bytes).expect("write corrupted journal");
        let (mut journal, replay) = CheckpointJournal::resume(&path).expect("resume never panics");
        assert!(
            replay.warning.is_some(),
            "{name}: corruption must be diagnosed"
        );
        assert!(
            replay.entries.len() < 10,
            "{name}: some records must have been discarded"
        );
        let completed = replay.completed();
        let resumed = run_with_journal(&target, &faults, &mut journal, &completed, None, 2);
        assert_eq!(
            resumed.report().expect("complete"),
            reference,
            "{name}: corrupted journal still converges to the reference"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn timed_out_injections_are_retried_on_resume_not_journaled() {
    let target = adder_target();
    let faults: Vec<GateFault> = stuck_at_universe(&target.netlist)
        .into_iter()
        .take(6)
        .collect();
    let path = tmp("timeout");
    let _ = std::fs::remove_file(&path);
    let mut journal = CheckpointJournal::create(&path).expect("create");
    let doomed = run_campaign_resilient(
        &ExecPolicy::with_threads(2),
        lowvolt_obs::noop(),
        &target,
        &faults,
        &mut stimulus(&target),
        VECTORS,
        CampaignOptions {
            fault: FaultPolicy {
                item_timeout_ms: Some(0),
                backoff_base_ms: 0,
                ..FaultPolicy::default()
            },
            checkpoint: Some(CheckpointSpec {
                journal: &mut journal,
                completed: &HashMap::new(),
                index_base: 0,
                max_new_items: None,
            }),
            ..CampaignOptions::default()
        },
    )
    .expect("campaign survives universal timeouts");
    // Every injection degraded to a typed error; none aborted the run
    // and none were checkpointed as if they had succeeded.
    for slot in &doomed.reports {
        assert!(matches!(
            slot.as_ref().expect("slot resolved").outcome,
            FaultOutcome::Errored(_)
        ));
    }
    assert_eq!(journal.records(), 0, "failures must not be journaled");
    drop(journal);

    // Resuming without the deadline recomputes everything cleanly.
    let (mut journal, replay) = CheckpointJournal::resume(&path).expect("resume");
    let completed = replay.completed();
    let resumed = run_with_journal(&target, &faults, &mut journal, &completed, None, 2);
    assert_eq!(resumed.replayed, 0);
    assert_eq!(resumed.computed, faults.len());
    assert!(resumed
        .reports
        .iter()
        .flatten()
        .all(|r| !matches!(r.outcome, FaultOutcome::Errored(_))));
    let _ = std::fs::remove_file(&path);
}
